//! Trading DRAM refresh power against asymmetric-code protection
//! (paper Sections III-C and IV, the MUSE(80,67) C8A use case).
//!
//! Retention errors are one-directional (1→0): a code that only needs to
//! cover asymmetric errors gets away with fewer remainders, and a system
//! that can *correct* retention losses can refresh less often.
//!
//! ```sh
//! cargo run --release --example refresh_savings
//! ```

use muse::core::presets;
use muse::faultsim::{sweep_refresh_intervals, RetentionModel};

fn main() {
    let code = presets::muse_80_67();
    println!(
        "{} ({}): corrects any 1→0 pattern confined to one x8 device\n",
        code.name(),
        code.class_name()
    );

    let model = RetentionModel {
        weak_fraction: 5e-4, // accelerated weak-cell population for the demo
        nominal_ms: 64.0,
        tau_ms: 512.0,
    };
    let intervals = [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0];
    let points = sweep_refresh_intervals(&code, &model, &intervals, 4_000, 0xD1A);

    println!(
        "{:>9} {:>12} {:>9} {:>10} {:>14} {:>14}",
        "tREF ms", "cell p", "clean", "corrected", "uncorrectable", "refresh power"
    );
    for p in &points {
        println!(
            "{:>9.0} {:>12.2e} {:>9} {:>10} {:>14} {:>13.0}%",
            p.t_ms,
            p.cell_p,
            p.stats.clean,
            p.stats.corrected,
            p.stats.uncorrectable,
            p.refresh_power * 100.0
        );
    }

    // The payoff: pick the longest interval whose uncorrectable rate stays
    // below a target, and report the refresh-power saving.
    let target = 1e-3;
    let best = points
        .iter()
        .rfind(|p| p.stats.uber() <= target)
        .expect("nominal interval always qualifies");
    println!(
        "\nlongest interval with UBER ≤ {target:.0e}: {} ms — refresh power cut to {:.0}% of nominal",
        best.t_ms,
        best.refresh_power * 100.0
    );
    println!("(the paper's argument for asymmetric codes: correcting retention errors");
    println!(" lets refresh relax without giving up reliability)");
}
