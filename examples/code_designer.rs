//! Designing a custom MUSE code with the builder API — the Section VII-E
//! flexibility argument as a workflow.
//!
//! Scenario: a custom accelerator has a 96-bit memory channel built from
//! x4 devices and wants (a) ChipKill, (b) at least 3 spare bits for
//! software tags, and (c) maximal multi-device detection within that
//! budget. Reed-Solomon offers no such code (its redundancy only moves in
//! two-symbol steps); MUSE lets us dial the redundancy bit by bit.
//!
//! ```sh
//! cargo run --release --example code_designer
//! ```

use muse::core::analysis::{analytic_msed_estimate, remainder_profile};
use muse::core::{CodeBuilder, SearchOptions};

fn main() {
    let n_bits = 96u32;
    println!("designing for a {n_bits}-bit channel of x4 devices (24 chips)\n");

    // Sweep the redundancy budget one bit at a time and see what exists.
    println!(
        "{:>11} {:>12} {:>10} {:>12} {:>16}",
        "redundancy", "ELC entries", "data bits", "spare bits", "est. MSED %"
    );
    let mut chosen = None;
    for r in 8..=16 {
        let builder = CodeBuilder::new(n_bits)
            .symbol_bits(4)
            .redundancy_bits(r)
            .search_options(SearchOptions::default());
        match builder.build() {
            Err(_) => println!("{r:>11} {:>12} {:>10} {:>12} {:>16}", 0, "-", "-", "-"),
            Ok(code) => {
                let spare = code.k_bits() as i64 - 64;
                println!(
                    "{r:>11} {:>12} {:>10} {:>12} {:>15.1}",
                    remainder_profile(&code).used, // entries are constant; show occupancy
                    code.k_bits(),
                    spare,
                    analytic_msed_estimate(&code),
                );
                // Requirement: >= 3 spare bits, maximize detection.
                if spare >= 3 && chosen.is_none() {
                    // keep searching upward: larger r = better detection but
                    // fewer spares; take the largest r that still leaves 3.
                }
                if spare >= 3 {
                    chosen = Some(code);
                }
            }
        }
    }

    let code = chosen.expect("a qualifying code exists");
    println!(
        "\nchosen: {} — m = {}, {} spare bits, class {}",
        code.name(),
        code.multiplier(),
        code.spare_bits(),
        code.class_name()
    );

    // Prove the ChipKill property for this fresh, never-published code.
    let payload = code.pack_metadata(0xFEED_BEEF_CAFE, 0b101);
    let cw = code.encode(&payload);
    for dev in 0..code.symbol_map().num_symbols() {
        let corrupted = cw ^ *code.symbol_map().mask(dev);
        assert_eq!(
            code.decode(&corrupted).payload(),
            Some(payload),
            "device {dev} failure must correct"
        );
    }
    println!(
        "verified: all {} device failures correct ✓",
        code.symbol_map().num_symbols()
    );

    // The Reed-Solomon comparison: 4-bit symbols can't even reach 24
    // devices (GF(16) caps RS at 15 symbols), and 8-bit symbols cost 16
    // parity bits with zero flexibility.
    match muse::rs::RsMemoryCode::new(4, n_bits, 1) {
        Err(e) => println!("RS with x4 symbols: {e}"),
        Ok(_) => unreachable!("GF(16) cannot span 24 symbols"),
    }
    let rs = muse::rs::RsMemoryCode::new(8, n_bits, 1).expect("geometry");
    println!(
        "RS fallback: {} — {} parity bits (vs MUSE's {}), no spare-bit dial",
        rs.name(),
        rs.parity_bits(),
        code.r_bits()
    );
}
