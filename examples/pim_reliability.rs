//! Reliable Processing-In-Memory with one code for storage *and* compute
//! (paper Section VI-B).
//!
//! Residue codes commute with arithmetic — `e(f(x,y)) = f(e(x), e(y))` —
//! so a PIM device can check its multiply-accumulate units with the same
//! code that protects the stored data, instead of converting between a
//! storage ECC and a compute ECC.
//!
//! ```sh
//! cargo run --release --example pim_reliability
//! ```

use muse::core::{presets, Word};

/// AN-code arithmetic: values are carried as `m · x`.
struct AnCode {
    m: u64,
}

impl AnCode {
    fn encode(&self, x: u64) -> Word {
        Word::from(x).wrapping_mul(&Word::from(self.m))
    }

    /// Checked addition: sums of multiples of m are multiples of m.
    fn add(&self, a: &Word, b: &Word) -> Word {
        a.wrapping_add(b)
    }

    /// Residue check: a zero remainder certifies the arithmetic.
    fn verify(&self, value: &Word) -> Result<Word, u64> {
        let (q, r) = value.div_rem_u64(self.m);
        if r == 0 {
            Ok(q)
        } else {
            Err(r)
        }
    }
}

fn main() {
    // Storage side: the MUSE(268,256) code protects each 256-bit HBM2 word
    // with 12 check bits (the standard provisions 32 — 2.6x more).
    let storage = presets::muse_268_256();
    println!(
        "storage: {} with m = {} ({} check bits; HBM2 reserves 32)",
        storage.name(),
        storage.multiplier(),
        storage.r_bits()
    );
    let weights = Word::from(0x7777_0123_4567u64) | (Word::from(0x1357u64) << 200);
    let stored = storage.encode(&weights);
    // An HBM die fails mid-inference:
    let corrupted = stored ^ *storage.symbol_map().mask(55);
    assert_eq!(storage.decode(&corrupted).payload(), Some(weights));
    println!("  device failure on a 256-bit weight word: corrected ✓");

    // Compute side: the MAC pipeline runs on AN-coded operands with the
    // same multiplier family.
    let an = AnCode {
        m: storage.multiplier(),
    };
    let inputs = [(3u64, 40u64), (5, 40), (7, 41), (11, 1)];
    // acc = Σ xi · wi computed as Σ (m·xi)·wi — still a multiple of m.
    let mut acc = Word::ZERO;
    for &(x, w) in &inputs {
        let coded = an.encode(x); // m·x straight from (conceptual) memory
        let product = coded.wrapping_mul(&Word::from(w));
        acc = an.add(&acc, &product);
    }
    let expect: u64 = inputs.iter().map(|&(x, w)| x * w).sum();
    match an.verify(&acc) {
        Ok(q) => {
            assert_eq!(q.to_u64(), Some(expect));
            println!(
                "compute: MAC over {} coded operands verified, Σ = {expect} ✓",
                inputs.len()
            );
        }
        Err(r) => panic!("false alarm, remainder {r}"),
    }

    // A stuck-at fault inside the (simulated) MAC array:
    let mut faulty = acc;
    faulty.toggle_bit(19);
    match an.verify(&faulty) {
        Err(r) => println!("fault: corrupted accumulator caught with remainder {r} ✓"),
        Ok(_) => panic!("fault evaded the residue check"),
    }

    println!("\nOne code family covers both the stored weights and the arithmetic —");
    println!("the PIM co-design opportunity of Section VI-B.");
}
