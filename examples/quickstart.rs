//! Quickstart: encode data with a MUSE code, survive a DRAM chip failure,
//! and use the spare bits for metadata.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use muse::core::{presets, Decoded};
use muse::wideint::U320;

fn main() {
    // The paper's DDR5 ChipKill code: 80-bit codewords, 69 payload bits,
    // multiplier m = 2005, twenty 4-bit devices.
    let code = presets::muse_80_69();
    println!(
        "{} — m = {}, {} check bits, {} spare bits above a 64-bit word",
        code.name(),
        code.multiplier(),
        code.r_bits(),
        code.spare_bits()
    );

    // Pack a 64-bit data word plus a 4-bit memory tag into the payload.
    let data = 0x0123_4567_89AB_CDEFu64;
    let tag = 0b1010u64;
    let payload = code.pack_metadata(data, tag);

    // Encode: the codeword is a multiple of m (remainder 0 = no error).
    let codeword = code.encode(&payload);
    assert_eq!(codeword.rem_u64(code.multiplier()), 0);
    println!("stored codeword: {codeword:#x}");

    // Disaster: DRAM chip #11 fails and all four of its bits corrupt.
    let corrupted = codeword ^ *code.symbol_map().mask(11);
    println!("after chip failure: {corrupted:#x}");

    // Decode: the nonzero remainder indexes the Error Lookup Circuit, which
    // recovers the exact error value; correction is a single subtraction.
    match code.decode(&corrupted) {
        Decoded::Corrected {
            payload,
            symbol,
            error,
        } => {
            let (d, t) = code.unpack_metadata(&payload);
            println!("corrected device {symbol}, error value {error}");
            assert_eq!((d, t), (data, tag));
            println!("recovered data {d:#018x} and tag {t:#06b} — intact!");
        }
        other => panic!("expected a correction, got {other:?}"),
    }

    // Errors beyond the model (two chips at once) are detected, not
    // silently mis-accepted.
    let double = codeword ^ *code.symbol_map().mask(3) ^ *code.symbol_map().mask(17);
    if let Decoded::Clean { .. } = code.decode(&double) {
        panic!("double-device error must never look clean");
    }
    println!("double-chip failure flagged as uncorrectable — no silent corruption.");

    // The same API drives every published code, e.g. the 268-bit PIM code.
    let pim = presets::muse_268_256();
    let wide_payload = U320::mask(256);
    let cw = pim.encode(&wide_payload);
    assert_eq!(pim.decode(&cw).payload(), Some(wide_payload));
    println!(
        "{} round-trips 256-bit HBM2 words with {} check bits.",
        pim.name(),
        pim.r_bits()
    );
}
