//! Rowhammer defense with spare-bit hashes (paper Section VI-A).
//!
//! The five spare bits of MUSE(80,69) per 64-bit word give 40 bits per
//! cache line — enough for a keyed hash that a blind Rowhammer attacker
//! must also forge (success probability 2⁻⁴⁰).
//!
//! ```sh
//! cargo run --release --example rowhammer_defense
//! ```

use muse::core::presets;
use muse::faultsim::{simulate_attacks, HashedLine, LineError, LineHasher};

fn main() {
    let code = presets::muse_80_69();
    let hasher = LineHasher::new(0x0011_2233_4455_6677, 0x8899_AABB_CCDD_EEFF);

    // A protected cache line: 8 words, each carrying a 5-bit hash slice.
    let secret = [0xDEAD_BEEF_0000_0001u64; 8];
    let line = HashedLine::store(&code, &hasher, secret);
    assert_eq!(line.verify(&code, &hasher), Ok(secret));
    println!("stored 64B line with a 40-bit SipHash in the ECC spare bits ✓");

    // Attack 1: hammer one bit. ECC corrects it; the hash stays valid.
    let mut attacked = line.clone();
    attacked.flip_storage_bit(2, 33);
    assert_eq!(attacked.verify(&code, &hasher), Ok(secret));
    println!("single hammered bit: healed by ECC, data intact ✓");

    // Attack 2: replace a whole word with a *valid* codeword (the Cojocar-
    // style ECC bypass). Plain ECC sees remainder 0 — but the hash catches
    // the forgery.
    let mut forged = line.clone();
    let fake = code.encode(&code.pack_metadata(0x4141_4141, 0));
    forged.xor_word(
        5,
        fake ^ code.encode(&code.pack_metadata(secret[5], {
            // original hash slice of word 5
            let h = hasher.hash(&secret);
            (h >> 25) & 0x1F
        })),
    );
    match forged.verify(&code, &hasher) {
        Err(LineError::HashMismatch) => println!("valid-codeword forgery: caught by the hash ✓"),
        other => panic!("forgery slipped through: {other:?}"),
    }

    // Attack 3: campaigns of blind multi-bit flips at increasing intensity.
    println!("\nblind flip campaigns (3000 lines each):");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12}",
        "flips", "ECC blocked", "hash blocked", "harmless", "SUCCESSFUL"
    );
    for flips in [2usize, 6, 12, 24, 48] {
        let stats = simulate_attacks(&code, &hasher, flips, 3_000, 0x40_4040);
        println!(
            "{flips:>6} {:>12} {:>12} {:>10} {:>12}",
            stats.blocked_by_ecc, stats.blocked_by_hash, stats.harmless, stats.successful
        );
        assert_eq!(
            stats.successful, 0,
            "2^-40 says a success should never appear here"
        );
    }
    println!("\nNo campaign succeeded — matching the paper's 1 − 2⁻⁴⁰ detection bound.");
}
