//! Memory tagging (ARM-MTE-like) co-designed with MUSE ECC — the paper's
//! Section VII-D case study, end to end.
//!
//! Compares three systems on the same workload:
//! 1. tags inline in MUSE spare bits (no extra traffic),
//! 2. tags in a disjoint region (extra DRAM read per LLC miss),
//! 3. disjoint tags with a 32-entry metadata cache.
//!
//! ```sh
//! cargo run --release --example memory_tagging
//! ```

use muse::core::presets;
use muse::memsim::{
    spec2017_profiles, DramPowerModel, EccLatency, System, SystemConfig, TagStorage, Workload,
};

fn main() {
    // Functional view: a tagged load checks the pointer's tag against the
    // memory tag stored in the ECC spare bits.
    let code = presets::muse_80_69();
    let payload = code.pack_metadata(0xCAFE_F00D, 0b0111);
    let stored = code.encode(&payload);
    let (_, tag) = code.unpack_metadata(&code.decode(&stored).payload().expect("clean"));
    assert_eq!(tag, 0b0111);
    println!("tag check through the ECC payload: pointer tag 0b0111 matches memory tag ✓\n");

    // Performance view: run one memory-heavy benchmark under all three
    // metadata placements.
    let profile = spec2017_profiles()[4]; // 507.cactuBSSN_r
    let ecc = EccLatency {
        encode: 4,
        correct: 0,
    };
    let run = |tagging| {
        let config = SystemConfig {
            ecc,
            tagging,
            l2_bytes: 128 * 1024,
            l3_bytes: 1024 * 1024,
            ..SystemConfig::default()
        };
        let mut system = System::new(config);
        let mut workload = Workload::new(profile, 7);
        let warm = system.run(&mut workload, 60_000);
        system.run(&mut workload, 120_000).since(&warm)
    };

    let inline = run(TagStorage::InlineEcc);
    let cached = run(TagStorage::Disjoint {
        cache_entries: Some(32),
    });
    let uncached = run(TagStorage::Disjoint {
        cache_entries: None,
    });

    let power = DramPowerModel::default();
    println!(
        "benchmark: {} (LLC MPKI {:.1})",
        profile.name,
        inline.llc_mpki()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "system", "cycles", "DRAM rd+wr", "meta reads", "DRAM mW"
    );
    for (name, stats) in [
        ("tags in MUSE spare bits", &inline),
        ("disjoint + 32e cache", &cached),
        ("disjoint, uncached", &uncached),
    ] {
        let mw = power.report(&stats.dram, stats.cycles, 3.4, 0.0).dram_mw();
        println!(
            "{name:<22} {:>10} {:>12} {:>12} {:>10.0}",
            stats.cycles,
            stats.dram.operations(),
            stats.metadata_dram_reads,
            mw
        );
    }
    assert_eq!(inline.metadata_dram_reads, 0);
    assert!(cached.metadata_dram_reads < uncached.metadata_dram_reads);
    assert!(inline.dram.operations() < cached.dram.operations());
    println!("\nInline tags keep ChipKill protection with zero metadata traffic —");
    println!("the co-design benefit the paper quantifies in Figure 7 and Table VI.");
}
