//! MUSE vs Reed-Solomon comparison invariants — the paper's qualitative
//! claims as executable checks.

use muse::core::{presets, Word};
use muse::faultsim::{muse_msed, rs_msed, MsedConfig, RsDetectMode};
use muse::rs::{RsMemoryCode, RsMemoryDecoded};

#[test]
fn muse_saves_check_bits_vs_rs_at_chipkill() {
    // Headline: ChipKill with ~30% fewer check bits.
    let muse = presets::muse_144_132();
    let rs = RsMemoryCode::new(8, 144, 1).unwrap();
    assert_eq!(muse.r_bits(), 12);
    assert_eq!(rs.parity_bits(), 16);
    assert!(
        muse.r_bits() + 4 <= rs.parity_bits(),
        "at least four fewer bits"
    );
    // And on DDR5: 11 vs 16.
    let muse5 = presets::muse_80_69();
    let rs5 = RsMemoryCode::new(8, 80, 1).unwrap();
    assert_eq!(muse5.r_bits(), 11);
    assert_eq!(rs5.parity_bits(), 16);
}

#[test]
fn rs_with_spare_bits_loses_chipkill_muse_does_not() {
    // Section VII-A: an RS code shrunk to save bits (5-bit symbols) can no
    // longer correct an arbitrary x4 device failure, because a device can
    // span two symbols. MUSE at the same spare-bit budget still corrects
    // every device failure.
    let rs = RsMemoryCode::new(5, 144, 1).unwrap();
    assert_eq!(rs.data_bits(), 134); // 6 bits saved vs RS(144,128)
    let payload = Word::from(0x1234_5678_9ABC_DEF0u64);
    let cw = rs.encode(&payload);
    let mut rs_failures = 0;
    for dev in 0..36u32 {
        let corrupted = cw ^ (Word::from(0xFu64) << (4 * dev));
        if rs.decode(&corrupted).payload() != Some(payload) {
            rs_failures += 1;
        }
    }
    assert!(
        rs_failures > 0,
        "some device failure must defeat the misaligned RS code"
    );

    let muse = presets::muse_144_132(); // 4 bits saved, still ChipKill
    let mcw = muse.encode(&payload);
    for dev in 0..36 {
        let corrupted = mcw ^ *muse.symbol_map().mask(dev);
        assert_eq!(
            muse.decode(&corrupted).payload(),
            Some(payload),
            "device {dev}"
        );
    }
}

#[test]
fn detection_degrades_gracefully_for_muse_sharply_for_rs() {
    // The Table IV trend, asserted as orderings rather than exact rates.
    let config = MsedConfig {
        trials: 3_000,
        ..MsedConfig::default()
    };
    let muse_16 = muse_msed(&presets::muse_144_128(), config);
    let muse_12 = muse_msed(&presets::muse_144_132(), config);
    assert!(muse_16.detection_rate() > muse_12.detection_rate());
    assert!(muse_12.detection_rate() > 80.0);

    let rs8 = rs_msed(
        &RsMemoryCode::new(8, 144, 1).unwrap(),
        4,
        RsDetectMode::DeviceConfined,
        config,
    );
    let rs5 = rs_msed(
        &RsMemoryCode::new(5, 144, 1).unwrap(),
        4,
        RsDetectMode::DeviceConfined,
        config,
    );
    assert!(
        rs8.detection_rate() > rs5.detection_rate() + 20.0,
        "RS collapses with small symbols"
    );
    // MUSE at 12 bits of redundancy beats RS at 10 bits (extra 4 vs 6).
    assert!(muse_12.detection_rate() > rs5.detection_rate());
}

#[test]
fn both_families_never_accept_double_device_errors_as_clean() {
    // For a bidirectional MUSE code, a *two-symbol* error can never alias to
    // remainder zero: the value set is closed under negation, so
    // e1 ≡ −e2 (mod m) would violate the injectivity the multiplier was
    // searched for. RS likewise never reads two corrupted symbols as clean.
    let muse = presets::muse_80_69();
    let payload = Word::from(0xABCD_EF01_2345u64);
    let mcw = muse.encode(&payload);
    for a in 0..20usize {
        for b in (a + 1)..20 {
            // Two x4 devices fail (MUSE symbols are the devices).
            let pattern = *muse.symbol_map().mask(a) ^ *muse.symbol_map().mask(b);
            if let muse::core::Decoded::Clean { .. } = muse.decode(&(mcw ^ pattern)) {
                panic!("muse clean on double error ({a},{b})");
            }
        }
    }
    let rs = RsMemoryCode::new(8, 80, 1).unwrap();
    let rcw = rs.encode(&payload);
    for a in 0..10u32 {
        for b in (a + 1)..10 {
            // Two x8 devices (= RS symbols) fail.
            let pattern = (Word::from(0x5Au64) << (8 * a)) ^ (Word::from(0xC3u64) << (8 * b));
            if let RsMemoryDecoded::Clean { .. } = rs.decode(&(rcw ^ pattern)) {
                panic!("rs clean on double error ({a},{b})");
            }
        }
    }
}

#[test]
fn spare_bit_accounting_matches_table_iv_columns() {
    // extra bits = 16 − redundancy for the 144-bit codeword family.
    assert_eq!(16 - presets::muse_144_128().r_bits(), 0);
    assert_eq!(16 - presets::muse_144_132().r_bits(), 4);
    for (s, extra) in [(8u32, 0u32), (7, 2), (6, 4), (5, 6)] {
        let rs = RsMemoryCode::new(s, 144, 1).unwrap();
        assert_eq!(16 - rs.parity_bits(), extra, "s={s}");
        assert_eq!(rs.data_bits() - 128, extra, "s={s}");
    }
}

#[test]
fn muse_flexibility_single_bit_granularity() {
    // Section VII-E: MUSE's data/redundancy split moves in 1-bit steps with
    // the multiplier width; RS only moves in 2-symbol steps.
    use muse::core::{find_multipliers, Direction, ErrorModel, SearchOptions, SymbolMap};
    let map = SymbolMap::sequential(144, 4).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let mut widths = Vec::new();
    for p in 12..=16 {
        let found = find_multipliers(
            &map,
            &model,
            p,
            SearchOptions {
                threads: 0,
                limit: 1,
            },
        );
        if !found.is_empty() {
            widths.push(p);
        }
    }
    assert_eq!(
        widths,
        vec![12, 13, 14, 15, 16],
        "every 1-bit step has a code"
    );
}
