//! Cross-crate simulation invariants: the memory-system study and the
//! hardware model must tell the same story the paper tells.

use muse::hw::{muse_hardware, rs_hardware, TechParams};
use muse::memsim::{spec2017_profiles, EccLatency, System, SystemConfig, TagStorage, Workload};
use muse::rs::RsMemoryCode;

fn run(config: SystemConfig, bench: usize, ops: u64) -> muse::memsim::RunStats {
    let mut system = System::new(config);
    let mut workload = Workload::new(spec2017_profiles()[bench], 0x51);
    let warm = system.run(&mut workload, ops / 2);
    system.run(&mut workload, ops).since(&warm)
}

fn study_config() -> SystemConfig {
    SystemConfig {
        l2_bytes: 128 * 1024,
        l3_bytes: 1024 * 1024,
        ..SystemConfig::default()
    }
}

#[test]
fn hardware_latencies_feed_the_simulator_consistently() {
    let tech = TechParams::default();
    let muse_hw = muse_hardware(&muse::core::presets::muse_144_132(), &tech);
    let rs_hw = rs_hardware(&RsMemoryCode::new(8, 144, 1).unwrap(), &tech);
    // The gem5-latency columns of Table V: MUSE 3 cycles / RS 1 at 2.4 GHz.
    assert_eq!(muse_hw.encode_cycles, 3);
    assert_eq!(rs_hw.encode_cycles, 1);
    assert_eq!(muse_hw.decode_cycles, 0);
    assert_eq!(rs_hw.decode_cycles, 0);
}

#[test]
fn figure6_claim_ecc_is_nearly_free() {
    // On a bandwidth-heavy benchmark, write-path encoding latency costs
    // well under 1%.
    let base = run(study_config(), 8, 60_000);
    let muse = run(
        SystemConfig {
            ecc: EccLatency {
                encode: 4,
                correct: 0,
            },
            ..study_config()
        },
        8,
        60_000,
    );
    let slowdown = (muse.cycles as f64 / muse.instructions as f64)
        / (base.cycles as f64 / base.instructions as f64);
    assert!(slowdown < 1.01, "slowdown {slowdown}");
}

#[test]
fn figure7_claim_inline_tags_beat_disjoint_tags() {
    // Traffic, latency, and metadata counters all order the three systems
    // the way Figure 7 does.
    for bench in [3usize, 8, 20] {
        let inline = run(
            SystemConfig {
                tagging: TagStorage::InlineEcc,
                ..study_config()
            },
            bench,
            60_000,
        );
        let cached = run(
            SystemConfig {
                tagging: TagStorage::Disjoint {
                    cache_entries: Some(32),
                },
                ..study_config()
            },
            bench,
            60_000,
        );
        let uncached = run(
            SystemConfig {
                tagging: TagStorage::Disjoint {
                    cache_entries: None,
                },
                ..study_config()
            },
            bench,
            60_000,
        );
        let per_inst =
            |s: &muse::memsim::RunStats| s.dram.operations() as f64 / s.instructions as f64;
        assert!(per_inst(&inline) <= per_inst(&cached), "bench {bench}");
        assert!(per_inst(&cached) <= per_inst(&uncached), "bench {bench}");
        assert_eq!(inline.metadata_dram_reads, 0);
        assert_eq!(uncached.metadata_dram_reads, uncached.llc_misses);
        assert!(cached.metadata_dram_reads <= uncached.metadata_dram_reads);
    }
}

#[test]
fn booth_claim_from_section_v() {
    // 73 partial products, 23 zero, for the MUSE(144,132) inverse — and the
    // elimination saves one Wallace level.
    use muse::hw::{wallace_levels, BoothEncoding};
    let fm = muse::core::FastMod::minimal(4065, 144).unwrap();
    let booth = BoothEncoding::of(fm.inverse());
    assert_eq!(booth.partial_products(), 73);
    assert_eq!(booth.zero_partial_products(), 23);
    assert_eq!(
        wallace_levels(booth.partial_products()) - 1,
        wallace_levels(booth.nonzero_partial_products())
    );
}

#[test]
fn all_benchmarks_complete_under_every_config() {
    // Smoke: every profile runs under every tagging/ECC combination.
    let (muse_ecc, rs_ecc) = (
        EccLatency {
            encode: 4,
            correct: 4,
        },
        EccLatency {
            encode: 1,
            correct: 2,
        },
    );
    for (i, profile) in spec2017_profiles().into_iter().enumerate().take(6) {
        for (ecc, tagging) in [
            (EccLatency::NONE, TagStorage::None),
            (muse_ecc, TagStorage::InlineEcc),
            (
                rs_ecc,
                TagStorage::Disjoint {
                    cache_entries: Some(32),
                },
            ),
        ] {
            let stats = run(
                SystemConfig {
                    ecc,
                    tagging,
                    ..study_config()
                },
                i,
                8_000,
            );
            assert!(
                stats.cycles > 0 && stats.instructions > 0,
                "{}",
                profile.name
            );
            assert!(stats.ipc() > 0.01 && stats.ipc() <= 1.0, "{}", profile.name);
        }
    }
}
