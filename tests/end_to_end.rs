//! End-to-end storage pipeline tests: encode → route to devices (shuffle) →
//! physical device corruption → route back → decode, across code families.

use muse::core::{presets, Decoded, Word};
use muse::faultsim::Rng;

/// Corrupts device `dev` in the *storage* (wire) domain, where each device's
/// bits are contiguous.
fn fail_device_in_storage(
    stored: &Word,
    code: &muse::core::MuseCode,
    dev: usize,
    pattern: u64,
) -> Word {
    let s = code.symbol_map().bits_of(dev).len() as u32;
    *stored ^ (Word::from(pattern) << (dev as u32 * s))
}

#[test]
fn full_storage_roundtrip_with_shuffled_code() {
    // MUSE(80,67) uses the Eq.5 shuffle: the wire format differs from the
    // logical codeword. A physical device holds contiguous storage bits.
    let code = presets::muse_80_67();
    let map = code.symbol_map();
    let payload = Word::from(0xFEDC_BA98_7654_3210u64) & Word::mask(code.k_bits());
    let logical = code.encode(&payload);
    let stored = map.shuffle_to_storage(&logical);
    assert_ne!(stored, logical, "the shuffle routes bits");

    // A retention failure clears some stored 1-bits of device 6.
    let dev = 6;
    let device_bits = (stored >> (dev as u32 * 8)).to_u64().unwrap() & 0xFF;
    let drop_mask = device_bits & 0b1010_1010; // clear these ones
    if drop_mask != 0 {
        let failed = stored ^ (Word::from(drop_mask) << (dev as u32 * 8));
        let received = map.unshuffle_from_storage(&failed);
        match code.decode(&received) {
            Decoded::Corrected {
                payload: p, symbol, ..
            } => {
                assert_eq!(p, payload);
                assert_eq!(symbol, dev);
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn every_device_every_pattern_sequential_code() {
    // MUSE(80,69): exhaustive single-device coverage through the full
    // storage pipeline (identity shuffle).
    let code = presets::muse_80_69();
    let payload = code.pack_metadata(0x0F0F_F0F0_55AA_A55A, 0b11111);
    let logical = code.encode(&payload);
    let stored = code.symbol_map().shuffle_to_storage(&logical);
    for dev in 0..20 {
        for pattern in 1u64..16 {
            let failed = fail_device_in_storage(&stored, &code, dev, pattern);
            let received = code.symbol_map().unshuffle_from_storage(&failed);
            let decoded = code.decode(&received);
            assert_eq!(
                decoded.payload(),
                Some(payload),
                "dev {dev} pattern {pattern}"
            );
        }
    }
}

#[test]
fn random_payloads_random_single_device_errors() {
    let mut rng = Rng::seeded(0xE2E);
    for code in [
        presets::muse_144_132(),
        presets::muse_80_69(),
        presets::muse_268_256(),
    ] {
        for _ in 0..50 {
            let payload = muse::faultsim::random_payload(&mut rng, code.k_bits());
            let cw = code.encode(&payload);
            let dev = rng.below(code.symbol_map().num_symbols() as u64) as usize;
            let bits = code.symbol_map().bits_of(dev);
            let pattern = rng.nonzero_below(1 << bits.len());
            let mut corrupted = cw;
            for (i, &bit) in bits.iter().enumerate() {
                if pattern >> i & 1 == 1 {
                    corrupted.toggle_bit(bit);
                }
            }
            assert_eq!(
                code.decode(&corrupted).payload(),
                Some(payload),
                "{}",
                code.name()
            );
        }
    }
}

#[test]
fn muse_and_rs_agree_on_the_clean_path() {
    // Both families are systematic: the payload is recoverable without any
    // decode arithmetic in the error-free case.
    let mut rng = Rng::seeded(7);
    let muse = presets::muse_144_132();
    let rs = muse::rs::RsMemoryCode::new(8, 144, 1).unwrap();
    for _ in 0..50 {
        let payload = muse::faultsim::random_payload(&mut rng, 128);
        assert_eq!(
            muse.payload_of(&muse.encode(&payload)) & Word::mask(128),
            payload
        );
        assert_eq!(rs.payload_of(&rs.encode(&payload)), payload);
    }
}

#[test]
fn hybrid_code_covers_both_declared_classes() {
    // C4A_U1B: (a) any 1→0 device pattern, (b) any single-bit flip.
    let code = presets::muse_80_70();
    let payload = Word::mask(70) ^ (Word::from(0xF0Fu64) << 30);
    let cw = code.encode(&payload);
    // (a) asymmetric device failures
    for dev in 0..code.symbol_map().num_symbols() {
        let mut corrupted = cw;
        let mut any = false;
        for &bit in code.symbol_map().bits_of(dev) {
            if corrupted.bit(bit) {
                corrupted.set_bit(bit, false);
                any = true;
            }
        }
        if any {
            assert_eq!(
                code.decode(&corrupted).payload(),
                Some(payload),
                "device {dev}"
            );
        }
    }
    // (b) bidirectional single-bit errors
    for bit in 0..80 {
        let mut corrupted = cw;
        corrupted.toggle_bit(bit);
        assert_eq!(
            code.decode(&corrupted).payload(),
            Some(payload),
            "bit {bit}"
        );
    }
}

#[test]
fn chipkill_metadata_survives_alongside_tag_check() {
    // The full Section VI-A + VII-D story in one flow: tag + data + hash
    // bits all live in one codeword and all survive a chip kill.
    let code = presets::muse_80_69();
    let mut rng = Rng::seeded(99);
    for _ in 0..20 {
        let data = rng.next_u64();
        let meta = rng.below(32);
        let payload = code.pack_metadata(data, meta);
        let cw = code.encode(&payload);
        let dev = rng.below(20) as usize;
        let corrupted = cw ^ *code.symbol_map().mask(dev);
        let recovered = code.decode(&corrupted).payload().expect("chipkill");
        assert_eq!(code.unpack_metadata(&recovered), (data, meta));
    }
}
