//! Integration tests for the extension layers: cache-line codec, spec
//! round-trips, trace replay, Verilog emission, and the on-die stack.

use muse::core::{presets, LineCodec, MuseCode};
use muse::faultsim::{simulate_stack, LineHasher, Stack};
use muse::memsim::{System, SystemConfig, Trace};
use muse::secded::SecDed;

#[test]
fn line_codec_carries_mte_tags_through_chip_failure() {
    // The full Section VII-D data path at line granularity: 8 words, 16
    // tag bits, one chip dies, everything comes back.
    let codec = LineCodec::new(presets::muse_80_69()).unwrap();
    let data = [0x1111_2222_3333_4444u64; 8];
    let tags = 0x5A5Au64; // 4-bit tag per 16 bytes
    let mut stored = codec.encode_line(&data, tags);
    for (i, word) in stored.iter_mut().enumerate() {
        let dev = (i * 3) % 20;
        *word = *word ^ *codec.code().symbol_map().mask(dev);
    }
    let line = codec.decode_line(&stored).unwrap();
    assert_eq!(line.data, data);
    assert_eq!(line.metadata, tags);
    assert_eq!(
        line.corrections.len(),
        8,
        "every word needed one correction"
    );
}

#[test]
fn spec_roundtrip_preserves_decode_behaviour() {
    let original = presets::muse_80_70();
    let loaded = MuseCode::from_spec_string(&original.to_spec_string()).unwrap();
    let payload = muse::core::Word::mask(70);
    let cw = original.encode(&payload);
    // The reloaded code corrects errors identically.
    for bit in (0..80).step_by(11) {
        let mut bad = cw;
        bad.toggle_bit(bit);
        assert_eq!(
            original.decode(&bad).payload(),
            loaded.decode(&bad).payload(),
            "bit {bit}"
        );
    }
}

#[test]
fn trace_replay_is_equivalent_to_generated_stream() {
    // Record a synthetic stream as a trace, replay it, and compare stats.
    use muse::memsim::{spec2017_profiles, Workload};
    let profile = spec2017_profiles()[2];
    let mut workload = Workload::new(profile, 77);
    let ops: Vec<_> = (0..5_000).map(|_| workload.next_op()).collect();
    let trace = Trace::from_ops(ops.clone());

    let mut direct = System::new(SystemConfig::default());
    for &op in &ops {
        direct.step(op);
    }
    let mut replayed = System::new(SystemConfig::default());
    let stats = trace.replay(&mut replayed);
    assert_eq!(stats.cycles, direct.stats().cycles);
    assert_eq!(stats.dram.reads, direct.stats().dram.reads);

    // And the text form survives a round-trip.
    let reparsed = Trace::parse(&trace.to_text()).unwrap();
    assert_eq!(reparsed, trace);
}

#[test]
fn verilog_emission_reflects_the_spec_constants() {
    for code in presets::table1() {
        let v = muse::hw::emit_encoder_module(&code, "dut");
        assert!(
            v.contains(&format!("'d{} - rem", code.multiplier())),
            "{}",
            code.name()
        );
        assert!(
            v.contains(&format!("[{}:0] codeword", code.n_bits() - 1)),
            "{}",
            code.name()
        );
    }
}

#[test]
fn hsiao_and_muse_compose_in_the_ondie_stack() {
    // Cross-crate sanity: the SEC substrate and the rank code interoperate
    // and the stack dominates each alone at a moderate fault rate.
    let code = presets::muse_144_132();
    let p = 1.5e-3;
    let none = simulate_stack(Stack::None, None, p, 600, 42);
    let ondie = simulate_stack(Stack::OnDieOnly, None, p, 600, 42);
    let stacked = simulate_stack(Stack::Stacked, Some(&code), p, 600, 42);
    assert!(ondie.sdc < none.sdc);
    assert!(stacked.sdc <= ondie.sdc);
    assert!(stacked.intact >= ondie.intact.min(none.intact));
}

#[test]
fn secded_standalone_matches_its_spec() {
    // The (72,64) Hsiao code: 8 check bits, exhaustive single-correction
    // already covered by unit tests; here check the DIMM-geometry fit:
    // 72 bits = 18 x4 devices, matching half a 144-bit MUSE channel.
    let code = SecDed::hsiao(72, 64).unwrap();
    assert_eq!(code.n_bits() / 4, 18);
    assert_eq!(code.r_bits(), 8);
    // MUSE(144,132) protects two 64-bit words with 12 bits — four fewer
    // than two Hsiao words (16), without losing ChipKill.
    assert!(presets::muse_144_132().r_bits() + 4 == 2 * code.r_bits());
}

#[test]
fn rowhammer_hash_uses_line_codec_capacity() {
    // The HashedLine of Section VI-A and the generic LineCodec agree on
    // capacity: 8 × 5 spare bits = 40 = HASH_BITS.
    let codec = LineCodec::new(presets::muse_80_69()).unwrap();
    assert_eq!(codec.metadata_bits(), muse::faultsim::HASH_BITS);
    let hasher = LineHasher::new(1, 2);
    let data = [99u64; 8];
    let hash = hasher.hash(&data);
    let stored = codec.encode_line(&data, hash);
    let line = codec.decode_line(&stored).unwrap();
    assert_eq!(line.metadata, hash, "hash survives the line round-trip");
}
