//! Reproduction of the paper's published multiplier-search results
//! (Table I and Appendix F) as regression tests.

use muse::core::{
    find_multipliers, validate_multiplier, Direction, ErrorModel, SearchOptions, SymbolMap,
};

#[test]
fn appendix_f_full_144b_12bit_list() {
    // The artifact's complete list of 25 multipliers, ending at 4065.
    let map = SymbolMap::sequential(144, 4).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let found = find_multipliers(&map, &model, 12, SearchOptions::default());
    assert_eq!(
        found,
        vec![
            2397, 2883, 2967, 3009, 3259, 3295, 3371, 3417, 3431, 3459, 3469, 3505, 3523, 3531,
            3551, 3555, 3621, 3679, 3739, 3857, 3909, 3995, 4017, 4043, 4065,
        ]
    );
}

#[test]
fn pim_multiplier_3621_also_works_at_268_bits() {
    // Section VI-B's MUSE(268,256): note 3621 already appears in the 144-bit
    // list; it remains collision-free out to 67 symbols.
    let map = SymbolMap::sequential(268, 4).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    assert_eq!(validate_multiplier(&map, &model, 3621), Ok(()));
    // But not every 144-bit multiplier survives the extension.
    let survivors: Vec<u64> = [2397u64, 2883, 2967, 4043, 4065]
        .into_iter()
        .filter(|&m| validate_multiplier(&map, &model, m).is_ok())
        .collect();
    assert!(survivors.contains(&3621) || validate_multiplier(&map, &model, 3621).is_ok());
}

#[test]
fn double_device_recovery_via_erasures() {
    // Section IV: "we can recover two consecutive device-failures" with
    // MUSE(80,69). For *permanent* chip failures the locations are known,
    // so this is erasure decoding — and uniqueness is guaranteed because a
    // contiguous device pair's error values are Δ·2^(4i) with |Δ| ≤ 255,
    // never divisible by the odd m = 2005.
    let code = muse::core::presets::muse_80_69();
    let payload = muse::core::Word::from(0x1122_3344_5566_7788u64);
    let cw = code.encode(&payload);
    for first in 0..19usize {
        // Both devices of the adjacent pair return garbage.
        let corrupted = cw ^ *code.symbol_map().mask(first) ^ *code.symbol_map().mask(first + 1);
        let recovered = code.recover_erasures(&corrupted, &[first, first + 1]);
        assert_eq!(recovered, Some(payload), "pair ({first},{})", first + 1);
    }
    // A bidirectional 8-bit-symbol code over 80 bits does NOT exist within
    // 16 redundancy bits — which is why the double-failure capability comes
    // from erasure decoding rather than a dedicated C8B code.
    let map = SymbolMap::sequential(80, 8).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    for p in [15u32, 16] {
        assert!(
            find_multipliers(
                &map,
                &model,
                p,
                SearchOptions {
                    threads: 0,
                    limit: 1
                }
            )
            .is_empty(),
            "p={p}"
        );
    }
}

#[test]
fn no_10bit_multiplier_for_144b() {
    // The Ø cell of Table IV at extra = 6.
    let map = SymbolMap::sequential(144, 4).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    assert!(find_multipliers(&map, &model, 10, SearchOptions::default()).is_empty());
}

#[test]
fn largest_16bit_multiplier_is_65519() {
    // Section VII-A mentions m = 65519 for MUSE(144,128); confirm it is the
    // *largest* valid 16-bit multiplier without searching the whole space
    // serially (validate the top of the range).
    let map = SymbolMap::sequential(144, 4).unwrap();
    let model = ErrorModel::symbol(Direction::Bidirectional);
    assert_eq!(validate_multiplier(&map, &model, 65519), Ok(()));
    for m in (65521..=65535u64).step_by(2) {
        assert!(validate_multiplier(&map, &model, m).is_err(), "m={m}");
    }
}
