//! SPEC-CPU2017-shaped synthetic workloads (DESIGN.md §3.1).
//!
//! The paper drives gem5 with the 22 SPEC CPU2017 rate benchmarks. SPEC is
//! proprietary, so each benchmark is replaced by a synthetic access
//! generator with the benchmark's memory *character*: intensity of memory
//! operations, read/write mix, footprint, and the balance between a
//! cache-resident hot set, streaming sweeps, and scattered (pointer-chasing
//! -like) accesses. Parameters are chosen to reproduce the published
//! qualitative behaviour (e.g. `519.lbm` bandwidth-bound, `505.mcf`
//! latency-bound, `548.exchange2` cache-resident) — absolute figures are
//! not calibrated, per-benchmark *sensitivity to ECC latency and metadata
//! traffic* is what the experiments consume.

/// A synthetic stand-in for one SPEC CPU2017 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Benchmark name, e.g. `519.lbm_r`.
    pub name: &'static str,
    /// Fraction of instructions that access memory.
    pub mem_ratio: f64,
    /// Fraction of memory accesses that are stores.
    pub write_fraction: f64,
    /// Total footprint in 64-byte lines.
    pub footprint_lines: u64,
    /// Fraction of accesses hitting the (cache-resident) hot set.
    pub hot_fraction: f64,
    /// Hot-set size in lines.
    pub hot_lines: u64,
    /// Fraction of the remaining accesses that stream sequentially
    /// (the rest scatter uniformly over the footprint).
    pub stream_fraction: f64,
}

/// One memory operation produced by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address.
    pub addr: u64,
    /// Store (vs load).
    pub is_write: bool,
    /// Non-memory instructions executed since the previous memory op.
    pub gap_insts: u64,
}

/// Deterministic access-stream generator for a profile.
#[derive(Debug, Clone)]
pub struct Workload {
    profile: WorkloadProfile,
    rng: crate::SplitMix,
    stream_pos: u64,
    base: u64,
}

impl Workload {
    /// Creates the generator with a per-run seed.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: crate::SplitMix::new(seed ^ fxhash(profile.name)),
            stream_pos: 0,
            base: 0x1_0000_0000, // keep clear of the metadata region
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Produces the next memory operation.
    pub fn next_op(&mut self) -> MemOp {
        let p = &self.profile;
        // Geometric-ish gap with mean 1/mem_ratio − 1 non-memory instructions.
        let mean_gap = (1.0 / p.mem_ratio - 1.0).max(0.0);
        let gap_insts = ((mean_gap * 2.0 + 1.0) * self.rng.f64()) as u64;

        let r = self.rng.f64();
        let line = if r < p.hot_fraction {
            self.rng.below(p.hot_lines)
        } else if r < p.hot_fraction + (1.0 - p.hot_fraction) * p.stream_fraction {
            self.stream_pos = (self.stream_pos + 1) % p.footprint_lines;
            self.stream_pos
        } else {
            self.rng.below(p.footprint_lines)
        };
        let is_write = self.rng.f64() < p.write_fraction;
        MemOp {
            addr: self.base + line * 64,
            is_write,
            gap_insts,
        }
    }
}

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// The 22 SPEC CPU2017 rate benchmarks of Figures 6 and 7, with
/// memory characters shaped after their published behaviour.
pub fn spec2017_profiles() -> Vec<WorkloadProfile> {
    const KB: u64 = 16; // lines per KiB
    const MB: u64 = 16 * 1024;
    vec![
        // name, mem_ratio, writes, footprint, hot_frac, hot_lines, stream
        profile("500.perlbench_r", 0.35, 0.35, 40 * MB, 0.96, 160 * KB, 0.60),
        profile("502.gcc_r", 0.38, 0.30, 60 * MB, 0.90, 200 * KB, 0.60),
        profile("503.bwaves_r", 0.42, 0.20, 180 * MB, 0.55, 100 * KB, 0.85),
        profile("505.mcf_r", 0.40, 0.25, 300 * MB, 0.55, 64 * KB, 0.10),
        profile(
            "507.cactuBSSN_r",
            0.40,
            0.25,
            160 * MB,
            0.70,
            120 * KB,
            0.70,
        ),
        profile("508.namd_r", 0.36, 0.20, 48 * MB, 0.97, 150 * KB, 0.70),
        profile("510.parest_r", 0.38, 0.22, 120 * MB, 0.82, 140 * KB, 0.70),
        profile("511.povray_r", 0.34, 0.30, 8 * MB, 0.995, 100 * KB, 0.50),
        profile("519.lbm_r", 0.45, 0.45, 400 * MB, 0.30, 32 * KB, 0.90),
        profile("520.omnetpp_r", 0.40, 0.30, 180 * MB, 0.72, 96 * KB, 0.15),
        profile("521.wrf_r", 0.38, 0.25, 140 * MB, 0.80, 130 * KB, 0.80),
        profile("523.xalancbmk_r", 0.39, 0.28, 90 * MB, 0.85, 110 * KB, 0.50),
        profile("525.x264_r", 0.37, 0.30, 30 * MB, 0.95, 170 * KB, 0.70),
        profile("526.blender_r", 0.36, 0.28, 70 * MB, 0.92, 150 * KB, 0.60),
        profile("531.deepsjeng_r", 0.36, 0.30, 50 * MB, 0.93, 140 * KB, 0.40),
        profile("538.imagick_r", 0.40, 0.35, 40 * MB, 0.96, 160 * KB, 0.80),
        profile("541.leela_r", 0.35, 0.25, 20 * MB, 0.97, 120 * KB, 0.40),
        profile("544.nab_r", 0.37, 0.22, 36 * MB, 0.94, 140 * KB, 0.70),
        profile("548.exchange2_r", 0.33, 0.35, 2 * MB, 0.999, 80 * KB, 0.40),
        profile("549.fotonik3d_r", 0.42, 0.22, 220 * MB, 0.55, 90 * KB, 0.85),
        profile("554.roms_r", 0.41, 0.24, 190 * MB, 0.62, 100 * KB, 0.80),
        profile("557.xz_r", 0.37, 0.32, 110 * MB, 0.80, 120 * KB, 0.55),
    ]
}

fn profile(
    name: &'static str,
    mem_ratio: f64,
    write_fraction: f64,
    footprint_lines: u64,
    hot_fraction: f64,
    hot_lines: u64,
    stream_fraction: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        mem_ratio,
        write_fraction,
        footprint_lines,
        hot_fraction,
        hot_lines,
        stream_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_benchmarks() {
        let profiles = spec2017_profiles();
        assert_eq!(profiles.len(), 22);
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        names.dedup();
        assert_eq!(names.len(), 22, "names are unique");
        assert!(names.contains(&"519.lbm_r"));
    }

    #[test]
    fn parameters_are_sane() {
        for p in spec2017_profiles() {
            assert!((0.0..=1.0).contains(&p.mem_ratio), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.write_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.hot_fraction), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.stream_fraction), "{}", p.name);
            assert!(p.hot_lines < p.footprint_lines, "{}", p.name);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let p = spec2017_profiles()[0];
        let mut a = Workload::new(p, 1);
        let mut b = Workload::new(p, 1);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = spec2017_profiles()[3]; // mcf
        let mut w = Workload::new(p, 7);
        for _ in 0..10_000 {
            let op = w.next_op();
            assert!(op.addr >= 0x1_0000_0000);
            assert!(op.addr < 0x1_0000_0000 + p.footprint_lines * 64);
        }
    }

    #[test]
    fn write_fraction_roughly_respected() {
        let p = spec2017_profiles()[8]; // lbm, 45% writes
        let mut w = Workload::new(p, 3);
        let writes = (0..20_000).filter(|_| w.next_op().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!(
            (frac - p.write_fraction).abs() < 0.02,
            "write fraction {frac}"
        );
    }

    #[test]
    fn hot_set_dominates_when_configured() {
        let p = profile("hot", 0.5, 0.2, 1 << 22, 0.99, 1 << 10, 0.0);
        let mut w = Workload::new(p, 5);
        let hot_hits = (0..10_000)
            .filter(|_| {
                let op = w.next_op();
                (op.addr - 0x1_0000_0000) / 64 < 1 << 10
            })
            .count();
        assert!(hot_hits > 9_700, "hot hits {hot_hits}");
    }
}
