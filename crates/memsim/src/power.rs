//! DRAM and ECC-engine power model (Figure 7b, Table VI).
//!
//! IDD-style decomposition: static background + refresh power, plus
//! per-operation activate/read/write energies divided by wall-clock time.
//! Constants are shaped after DDR4 datasheet currents scaled to the paper's
//! 32 GB configuration, landing total power in the ~6.5 W regime of
//! Table VI (DESIGN.md §3.3).

use crate::DramStats;

/// Energy/power constants for the memory subsystem.
#[derive(Debug, Clone, Copy)]
pub struct DramPowerModel {
    /// Always-on background power (activation of peripheral logic, DLL,
    /// leakage) for the full capacity, mW.
    pub background_mw: f64,
    /// Self/auto-refresh average power, mW.
    pub refresh_mw: f64,
    /// Energy per row activation (ACT+PRE pair), nJ.
    pub act_nj: f64,
    /// Energy per 64-byte read burst (core + I/O), nJ.
    pub read_nj: f64,
    /// Energy per 64-byte write burst, nJ.
    pub write_nj: f64,
}

impl Default for DramPowerModel {
    fn default() -> Self {
        Self {
            background_mw: 5_750.0,
            refresh_mw: 450.0,
            act_nj: 22.0,
            read_nj: 14.0,
            write_nj: 15.0,
        }
    }
}

/// Power breakdown of one simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerReport {
    /// DRAM background + refresh, mW.
    pub dram_static_mw: f64,
    /// DRAM dynamic (ACT/RD/WR), mW.
    pub dram_dynamic_mw: f64,
    /// ECC engine power (both channels), mW.
    pub ecc_mw: f64,
}

impl PowerReport {
    /// DRAM total, mW.
    pub fn dram_mw(&self) -> f64 {
        self.dram_static_mw + self.dram_dynamic_mw
    }

    /// System total (DRAM + ECC engines), mW.
    pub fn total_mw(&self) -> f64 {
        self.dram_mw() + self.ecc_mw
    }
}

impl DramPowerModel {
    /// Computes the report for a run of `cycles` CPU cycles at `cpu_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn report(&self, stats: &DramStats, cycles: u64, cpu_ghz: f64, ecc_mw: f64) -> PowerReport {
        assert!(cycles > 0, "cannot compute power over zero time");
        let seconds = cycles as f64 / (cpu_ghz * 1e9);
        let dynamic_nj = stats.activates as f64 * self.act_nj
            + stats.reads as f64 * self.read_nj
            + stats.writes as f64 * self.write_nj;
        PowerReport {
            dram_static_mw: self.background_mw + self.refresh_mw,
            dram_dynamic_mw: dynamic_nj * 1e-9 / seconds * 1e3,
            ecc_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_without_traffic() {
        let model = DramPowerModel::default();
        let report = model.report(&DramStats::default(), 1_000_000, 3.4, 0.0);
        assert_eq!(report.dram_dynamic_mw, 0.0);
        assert!((report.dram_mw() - 6_200.0).abs() < 1e-9);
    }

    #[test]
    fn more_traffic_more_power() {
        let model = DramPowerModel::default();
        let light = DramStats {
            reads: 1_000,
            activates: 500,
            ..Default::default()
        };
        let heavy = DramStats {
            reads: 100_000,
            activates: 50_000,
            ..Default::default()
        };
        let p_light = model.report(&light, 10_000_000, 3.4, 0.0);
        let p_heavy = model.report(&heavy, 10_000_000, 3.4, 0.0);
        assert!(p_heavy.dram_mw() > p_light.dram_mw());
        assert_eq!(p_heavy.dram_static_mw, p_light.dram_static_mw);
    }

    #[test]
    fn table6_regime() {
        // A busy workload: ~20 DRAM ops per 1k cycles keeps total power in
        // the 5.5–7 W band the paper reports for its 32 GB system.
        let model = DramPowerModel::default();
        let cycles = 100_000_000u64;
        let stats = DramStats {
            reads: 1_300_000,
            writes: 650_000,
            activates: 1_000_000,
            ..Default::default()
        };
        let report = model.report(&stats, cycles, 3.4, 28.0);
        let total = report.total_mw();
        assert!((6_000.0..8_500.0).contains(&total), "total {total} mW");
        assert_eq!(report.ecc_mw, 28.0);
    }

    #[test]
    fn ecc_power_adds_to_total() {
        let model = DramPowerModel::default();
        let stats = DramStats {
            reads: 10,
            ..Default::default()
        };
        let a = model.report(&stats, 1000, 3.4, 0.0);
        let b = model.report(&stats, 1000, 3.4, 28.0);
        assert!((b.total_mw() - a.total_mw() - 28.0).abs() < 1e-9);
    }
}
