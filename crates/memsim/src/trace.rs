//! Trace-driven simulation: replay recorded memory-access traces through
//! the system model, complementing the synthetic generators.
//!
//! The text format is one access per line — `R <hex-addr> [gap]` or
//! `W <hex-addr> [gap]` where `gap` is the number of non-memory
//! instructions since the previous access (default 2). `#` starts a
//! comment. This is the least common denominator of the formats tools
//! like gem5, DynamoRIO, or valgrind's lackey can be massaged into.

use std::fmt;

use crate::{MemOp, RunStats, System};

/// Error parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A parsed, replayable memory trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<MemOp>,
}

impl Trace {
    /// Parses the text format described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_memsim::Trace;
    ///
    /// # fn main() -> Result<(), muse_memsim::ParseTraceError> {
    /// let trace = Trace::parse("# demo\nR 0x1000\nW 0x1040 5\n")?;
    /// assert_eq!(trace.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(text: &str) -> Result<Self, ParseTraceError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let op = parts.next().expect("nonempty line has a token");
            let is_write = match op {
                "R" | "r" => false,
                "W" | "w" => true,
                other => {
                    return Err(ParseTraceError {
                        line,
                        message: format!("expected R or W, got {other:?}"),
                    })
                }
            };
            let addr_str = parts.next().ok_or_else(|| ParseTraceError {
                line,
                message: "missing address".into(),
            })?;
            let digits = addr_str
                .strip_prefix("0x")
                .or_else(|| addr_str.strip_prefix("0X"))
                .unwrap_or(addr_str);
            let addr = u64::from_str_radix(digits, 16).map_err(|e| ParseTraceError {
                line,
                message: format!("bad address {addr_str:?}: {e}"),
            })?;
            let gap_insts = match parts.next() {
                None => 2,
                Some(g) => g.parse().map_err(|e| ParseTraceError {
                    line,
                    message: format!("bad gap {g:?}: {e}"),
                })?,
            };
            if let Some(extra) = parts.next() {
                return Err(ParseTraceError {
                    line,
                    message: format!("unexpected trailing token {extra:?}"),
                });
            }
            ops.push(MemOp {
                addr,
                is_write,
                gap_insts,
            });
        }
        Ok(Self { ops })
    }

    /// Builds a trace directly from operations.
    pub fn from_ops(ops: Vec<MemOp>) -> Self {
        Self { ops }
    }

    /// Number of memory operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Serializes back to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let kind = if op.is_write { 'W' } else { 'R' };
            out.push_str(&format!("{kind} {:#x} {}\n", op.addr, op.gap_insts));
        }
        out
    }

    /// Replays the whole trace through a system, returning the final stats.
    pub fn replay(&self, system: &mut System) -> RunStats {
        for &op in &self.ops {
            system.step(op);
        }
        system.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    #[test]
    fn parse_roundtrip() {
        let text = "R 0x1000 2\nW 0x1040 5\nR 0x2000 0\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.to_text(), text);
        assert_eq!(Trace::parse(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn comments_defaults_and_case() {
        let trace = Trace::parse("# header\n\nr 0xABC # inline comment\nw 0xDEF\n").unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.ops()[0],
            MemOp {
                addr: 0xABC,
                is_write: false,
                gap_insts: 2
            }
        );
        assert!(trace.ops()[1].is_write);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = Trace::parse("R 0x10\nX 0x20\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected R or W"));
        assert_eq!(Trace::parse("R\n").unwrap_err().line, 1);
        assert!(Trace::parse("R zz")
            .unwrap_err()
            .message
            .contains("bad address"));
        assert!(Trace::parse("R 0x1 2 3")
            .unwrap_err()
            .message
            .contains("trailing"));
        assert!(Trace::parse("W 0x1 x")
            .unwrap_err()
            .message
            .contains("bad gap"));
    }

    #[test]
    fn replay_matches_manual_stepping() {
        let text = "R 0x1000\nR 0x1000\nW 0x1000\nR 0x80000\n";
        let trace = Trace::parse(text).unwrap();
        let mut a = System::new(SystemConfig::default());
        let stats_a = trace.replay(&mut a);
        let mut b = System::new(SystemConfig::default());
        for &op in trace.ops() {
            b.step(op);
        }
        assert_eq!(stats_a.cycles, b.stats().cycles);
        assert_eq!(stats_a.instructions, b.stats().instructions);
        assert!(stats_a.cycles > 0);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::parse("# nothing\n").unwrap();
        assert!(trace.is_empty());
        let mut system = System::new(SystemConfig::default());
        let stats = trace.replay(&mut system);
        assert_eq!(stats.instructions, 0);
    }
}
