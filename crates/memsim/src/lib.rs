//! Memory-hierarchy timing and power simulator with ECC and memory-tagging
//! hooks — the substitute for the paper's gem5 + SPEC 2017 evaluation
//! (Figures 6 & 7, Table VI; see DESIGN.md §3.1).
//!
//! Components:
//!
//! * [`Cache`] / [`MetadataCache`] — LRU write-back caches.
//! * [`Dram`] — DDR4-like banks, row buffers, shared bus, refresh, and
//!   [`EccLatency`] injection on the memory interface.
//! * [`System`] — in-order 1-IPC CPU (gem5 `TimingSimpleCPU`-like) wiring
//!   the levels together, with [`TagStorage`] controlling where memory-
//!   tagging metadata lives.
//! * [`Workload`] — deterministic SPEC-2017-shaped access generators.
//! * [`DramPowerModel`] — IDD-style power reporting.
//!
//! # Examples
//!
//! ```
//! use muse_memsim::{spec2017_profiles, System, SystemConfig, Workload};
//!
//! let mut system = System::new(SystemConfig::default());
//! let mut workload = Workload::new(spec2017_profiles()[0], 1);
//! let stats = system.run(&mut workload, 10_000);
//! assert!(stats.ipc() > 0.0);
//! ```

mod cache;
mod dram;
mod power;
mod system;
mod trace;
mod workload;

pub use cache::{Cache, CacheAccess, CacheStats, MetadataCache};
pub use dram::{Dram, DramConfig, DramStats, EccLatency, PagePolicy};
pub use power::{DramPowerModel, PowerReport};
pub use system::{RunStats, System, SystemConfig, TagStorage};
pub use trace::{ParseTraceError, Trace};
pub use workload::{spec2017_profiles, MemOp, Workload, WorkloadProfile};

/// SplitMix64: the small deterministic generator used by the workload
/// streams.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix::new(9);
        let mut b = SplitMix::new(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_below_in_range() {
        let mut rng = SplitMix::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
