//! Set-associative write-back, write-allocate cache with LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was filled; a dirty victim (line-aligned address) may need
    /// writing back.
    Miss {
        /// Dirty victim evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl CacheAccess {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, Self::Hit)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A single cache level.
///
/// # Examples
///
/// ```
/// use muse_memsim::{Cache, CacheAccess};
///
/// let mut l1 = Cache::new("L1D", 32 * 1024, 8, 64, 4);
/// assert!(matches!(l1.access(0x1000, false), CacheAccess::Miss { .. }));
/// assert!(l1.access(0x1000, false).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    sets: Vec<Vec<Line>>,
    set_bits: u32,
    line_bits: u32,
    latency: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines; `latency` is the hit latency in CPU cycles.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(
        name: &'static str,
        size_bytes: u64,
        ways: usize,
        line_bytes: u64,
        latency: u64,
    ) -> Self {
        assert!(size_bytes.is_power_of_two() && line_bytes.is_power_of_two());
        let n_lines = size_bytes / line_bytes;
        assert!(
            (n_lines as usize).is_multiple_of(ways),
            "lines not divisible by ways"
        );
        let n_sets = n_lines as usize / ways;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            name,
            sets: vec![vec![Line::default(); ways]; n_sets],
            set_bits: n_sets.trailing_zeros(),
            line_bits: line_bytes.trailing_zeros(),
            latency,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Hit latency in CPU cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate) and a
    /// dirty victim may be returned for write-back.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        let line_addr = addr >> self.line_bits;
        let set_idx = (line_addr & ((1 << self.set_bits) - 1)) as usize;
        let tag = line_addr >> self.set_bits;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheAccess::Hit;
        }
        self.stats.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim_idx = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("nonzero ways")
        });
        let victim = set[victim_idx];
        let writeback = (victim.valid && victim.dirty).then(|| {
            self.stats.writebacks += 1;
            ((victim.tag << self.set_bits) | set_idx as u64) << self.line_bits
        });
        set[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        CacheAccess::Miss { writeback }
    }

    /// Whether `addr` is currently resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_bits;
        let set_idx = (line_addr & ((1 << self.set_bits) - 1)) as usize;
        let tag = line_addr >> self.set_bits;
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }
}

/// A tiny fully-associative metadata cache (the 32-entry, 16 kB tag cache of
/// Section VII-D).
#[derive(Debug, Clone)]
pub struct MetadataCache {
    entries: Vec<(u64, u64)>, // (line address, last use)
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl MetadataCache {
    /// A fully-associative cache of `capacity` metadata lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "metadata cache needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up (and on miss, fills) the metadata line `line_addr`.
    /// Returns `true` on hit.
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line_addr) {
            e.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("nonempty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((line_addr, self.tick));
        false
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new("t", 4096, 4, 64, 1);
        assert!(!c.access(0x40, false).is_hit());
        assert!(c.access(0x40, false).is_hit());
        assert!(c.access(0x7F, false).is_hit()); // same line
        assert!(!c.access(0x80, false).is_hit()); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, line 64, size 256 -> 2 sets. Same set: addresses with the
        // same line-index bit.
        let mut c = Cache::new("t", 256, 2, 64, 1);
        let set0 = |i: u64| i * 128; // stride over sets: bit 6 is the set bit
        assert!(!c.access(set0(0), false).is_hit());
        assert!(!c.access(set0(1), false).is_hit());
        // Touch line 0 so line 1 is LRU.
        assert!(c.access(set0(0), false).is_hit());
        // Fill a third line: evicts line 1.
        assert!(!c.access(set0(2), false).is_hit());
        assert!(c.access(set0(0), false).is_hit());
        assert!(!c.access(set0(1), false).is_hit());
    }

    #[test]
    fn dirty_writeback_address() {
        let mut c = Cache::new("t", 128, 1, 64, 1); // direct-mapped, 2 sets
        assert!(!c.access(0x000, true).is_hit());
        // Same set (set 0): 0x000 and 0x080 collide.
        match c.access(0x080, false) {
            CacheAccess::Miss {
                writeback: Some(victim),
            } => assert_eq!(victim, 0x000),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction produces no writeback.
        match c.access(0x100, false) {
            CacheAccess::Miss { writeback } => assert_eq!(writeback, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = Cache::new("t", 128, 1, 64, 1);
        c.access(0x000, false);
        c.access(0x000, true); // dirty via hit
        match c.access(0x080, false) {
            CacheAccess::Miss { writeback: Some(_) } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = Cache::new("t", 4096, 4, 64, 1);
        c.access(0x40, false);
        assert!(c.probe(0x40));
        assert!(!c.probe(0x4000));
        assert_eq!(c.stats().hits + c.stats().misses, 1);
    }

    #[test]
    fn metadata_cache_lru() {
        let mut m = MetadataCache::new(2);
        assert!(!m.access(1));
        assert!(!m.access(2));
        assert!(m.access(1)); // 2 is now LRU
        assert!(!m.access(3)); // evicts 2
        assert!(m.access(1));
        assert!(!m.access(2));
        assert!((m.stats().miss_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        let c = Cache::new("t", 4096, 4, 64, 1);
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }
}
