//! A DDR4-like main-memory model: banks with open-row state, a shared data
//! bus, periodic refresh, and per-operation ECC latency hooks.
//!
//! The model is service-time based rather than event-queued: the CPU is
//! in-order and blocking (gem5 `TimingSimpleCPU`-like), so at most one
//! demand request is outstanding; background traffic (write-backs, metadata
//! fetches) still occupies banks and the bus and delays later demands.

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave rows open after access (exploits row-buffer locality).
    #[default]
    Open,
    /// Auto-precharge after every access (uniform latency, no conflicts).
    Closed,
}

/// DRAM timing/geometry parameters, in CPU cycles (3.4 GHz by default).
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Row-activate latency tRCD.
    pub t_rcd: u64,
    /// Column access latency tCAS.
    pub t_cas: u64,
    /// Precharge latency tRP.
    pub t_rp: u64,
    /// Data-burst occupancy of the shared bus per 64-byte transfer.
    pub t_burst: u64,
    /// Write recovery (bank busy after a write burst).
    pub t_wr: u64,
    /// Refresh interval tREFI.
    pub t_refi: u64,
    /// Refresh duration tRFC (all banks blocked).
    pub t_rfc: u64,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
}

impl Default for DramConfig {
    /// DDR4-2400-ish timings expressed in 3.4 GHz CPU cycles
    /// (tRCD = tCAS = tRP ≈ 14.2 ns ≈ 48 cycles; burst ≈ 3.3 ns ≈ 11;
    /// tREFI = 7.8 µs; tRFC = 350 ns).
    fn default() -> Self {
        Self {
            banks: 16,
            row_bytes: 8192,
            t_rcd: 48,
            t_cas: 48,
            t_rp: 48,
            t_burst: 11,
            t_wr: 51,
            t_refi: 26_520,
            t_rfc: 1_190,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Additional latency injected by the ECC engine on the memory interface
/// (paper Section VII-C: encoder cycles delay writes; under
/// always-correction the corrector delays reads).
#[derive(Debug, Clone, Copy, Default)]
pub struct EccLatency {
    /// Cycles added to every write (encoding).
    pub encode: u64,
    /// Cycles added to every read (correction).
    pub correct: u64,
}

impl EccLatency {
    /// No ECC on the interface.
    pub const NONE: Self = Self {
        encode: 0,
        correct: 0,
    };
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Read bursts serviced.
    pub reads: u64,
    /// Write bursts serviced.
    pub writes: u64,
    /// Row activations.
    pub activates: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
}

impl DramStats {
    /// All data operations.
    pub fn operations(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit ratio over data operations.
    pub fn row_hit_ratio(&self) -> f64 {
        if self.operations() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.operations() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The memory device + controller state.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    ecc: EccLatency,
    banks: Vec<Bank>,
    bus_free_at: u64,
    refresh_done: u64,
    stats: DramStats,
}

impl Dram {
    /// Builds a DRAM with the given timing and ECC interface latency.
    pub fn new(config: DramConfig, ecc: EccLatency) -> Self {
        Self {
            banks: vec![Bank::default(); config.banks],
            config,
            ecc,
            bus_free_at: 0,
            refresh_done: 0,
            stats: DramStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The timing configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row_addr = addr / self.config.row_bytes;
        (
            (row_addr % self.config.banks as u64) as usize,
            row_addr / self.config.banks as u64,
        )
    }

    /// Applies pending refreshes up to `now`, returning the time the channel
    /// becomes usable.
    fn refresh_barrier(&mut self, now: u64) -> u64 {
        // Refresh fires every tREFI; while refreshing, all banks stall.
        let due = now / self.config.t_refi;
        if due > self.stats.refreshes {
            let fired = due - self.stats.refreshes;
            self.stats.refreshes = due;
            self.refresh_done = due * self.config.t_refi + self.config.t_rfc;
            let _ = fired;
        }
        now.max(self.refresh_done)
    }

    /// Services a read burst issued at `now`; returns the cycle the data is
    /// available to the requester (including ECC correction latency).
    pub fn read(&mut self, addr: u64, now: u64) -> u64 {
        let done = self.operate(addr, now, false);
        self.stats.reads += 1;
        done + self.ecc.correct
    }

    /// Services a write burst issued at `now`; returns the cycle the write
    /// completes (the encoder delay applies before the burst starts).
    pub fn write(&mut self, addr: u64, now: u64) -> u64 {
        let done = self.operate(addr, now + self.ecc.encode, true);
        self.stats.writes += 1;
        done + self.config.t_wr
    }

    fn operate(&mut self, addr: u64, now: u64, _is_write: bool) -> u64 {
        let start = self.refresh_barrier(now);
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        let mut t = start.max(bank.busy_until);
        match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
            }
            Some(_) => {
                // Conflict: precharge + activate.
                t += self.config.t_rp + self.config.t_rcd;
                self.stats.activates += 1;
            }
            None => {
                t += self.config.t_rcd;
                self.stats.activates += 1;
            }
        }
        bank.open_row = match self.config.page_policy {
            PagePolicy::Open => Some(row),
            PagePolicy::Closed => None, // auto-precharge folded into t_rcd next time
        };
        // Column access, then the burst occupies the shared bus.
        t += self.config.t_cas;
        let burst_start = t.max(self.bus_free_at);
        let done = burst_start + self.config.t_burst;
        self.bus_free_at = done;
        bank.busy_until = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default(), EccLatency::NONE)
    }

    #[test]
    fn closed_page_never_hits_or_conflicts() {
        let config = DramConfig {
            page_policy: PagePolicy::Closed,
            ..DramConfig::default()
        };
        let mut d = Dram::new(config, EccLatency::NONE);
        let c = d.config;
        let first = d.read(0, 0);
        // Same row again: still pays activate under closed-page.
        let second = d.read(64, first);
        assert_eq!(second - first, c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().activates, 2);
    }

    #[test]
    fn first_read_pays_activate() {
        let mut d = dram();
        let c = d.config;
        let done = d.read(0, 0);
        assert_eq!(done, c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.stats().activates, 1);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let c = d.config;
        let first = d.read(0, 0);
        let second = d.read(64, first);
        assert_eq!(second - first, c.t_cas + c.t_burst);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let c = d.config;
        let first = d.read(0, 0);
        // Same bank, different row: banks interleave by row address, so the
        // conflicting address is banks*row_bytes away.
        let conflict_addr = c.banks as u64 * c.row_bytes;
        let second = d.read(conflict_addr, first);
        assert_eq!(second - first, c.t_rp + c.t_rcd + c.t_cas + c.t_burst);
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        let mut d = dram();
        let c = d.config;
        // Two different banks at the same instant: second burst queues on
        // the bus behind the first.
        let a = d.read(0, 0);
        let b = d.read(c.row_bytes, 0); // bank 1
        assert_eq!(b - a, c.t_burst);
    }

    #[test]
    fn ecc_latency_applies() {
        let mut plain = dram();
        let mut ecc = Dram::new(
            DramConfig::default(),
            EccLatency {
                encode: 4,
                correct: 3,
            },
        );
        let r0 = plain.read(0, 0);
        let r1 = ecc.read(0, 0);
        assert_eq!(r1 - r0, 3);
        let w0 = plain.write(4096, 1000);
        let w1 = ecc.write(4096, 1000);
        assert_eq!(w1 - w0, 4);
    }

    #[test]
    fn refresh_blocks_the_channel() {
        let mut d = dram();
        let c = d.config;
        // Issue a read just after the first tREFI boundary: it waits out tRFC.
        let done = d.read(0, c.t_refi + 1);
        assert!(done >= c.t_refi + c.t_rfc + c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.stats().refreshes, 1);
    }

    #[test]
    fn counters_add_up() {
        let mut d = dram();
        let mut t = 0;
        for i in 0..10u64 {
            t = d.read(i * 64, t);
        }
        for i in 0..5u64 {
            t = d.write((i * 64 + 1) << 20, t);
        }
        assert_eq!(d.stats().reads, 10);
        assert_eq!(d.stats().writes, 5);
        assert_eq!(d.stats().operations(), 15);
        assert!(d.stats().row_hit_ratio() > 0.0);
    }
}
