//! The full-system timing model: in-order 1-IPC CPU, three-level cache
//! hierarchy, DRAM, ECC interface latency, and memory-tagging metadata
//! traffic (the gem5 substitute — DESIGN.md §3.1).

use crate::{
    Cache, CacheAccess, CacheStats, Dram, DramConfig, DramStats, EccLatency, MetadataCache,
    Workload,
};

/// Where memory-tagging metadata lives (Section VII-D's three systems).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagStorage {
    /// No memory tagging.
    None,
    /// Tags ride in the ECC spare bits (MT with MUSE): zero extra traffic.
    InlineEcc,
    /// Tags in a disjoint memory region; every LLC data miss fetches a
    /// metadata line, optionally through a small metadata cache.
    Disjoint {
        /// Metadata cache entries (`None` = uncached, the paper's "Base MT").
        cache_entries: Option<usize>,
    },
}

/// System configuration (defaults follow the paper's Haswell-like gem5
/// setup: 3.4 GHz, 64 kB split L1, 256 kB L2, 8 MB L3, DDR4).
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// CPU clock, GHz.
    pub cpu_ghz: f64,
    /// L1 data cache size, bytes.
    pub l1_bytes: u64,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// L2 size, bytes.
    pub l2_bytes: u64,
    /// L2 hit latency, cycles.
    pub l2_latency: u64,
    /// L3 size, bytes.
    pub l3_bytes: u64,
    /// L3 hit latency, cycles.
    pub l3_latency: u64,
    /// Cache line size, bytes.
    pub line_bytes: u64,
    /// DRAM timing.
    pub dram: DramConfig,
    /// ECC latency on the memory interface.
    pub ecc: EccLatency,
    /// Memory-tagging metadata placement.
    pub tagging: TagStorage,
    /// Next-line prefetch into the LLC on demand misses.
    pub prefetch_next_line: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cpu_ghz: 3.4,
            l1_bytes: 32 * 1024, // data half of the 64 kB split L1
            l1_latency: 4,
            l2_bytes: 256 * 1024,
            l2_latency: 12,
            l3_bytes: 8 * 1024 * 1024,
            l3_latency: 38,
            line_bytes: 64,
            dram: DramConfig::default(),
            ecc: EccLatency::NONE,
            tagging: TagStorage::None,
            prefetch_next_line: false,
        }
    }
}

/// Aggregate results of one run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Instructions executed (memory + non-memory).
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// DRAM counters (includes metadata traffic).
    pub dram: DramStats,
    /// Metadata reads that reached DRAM.
    pub metadata_dram_reads: u64,
    /// Metadata lookups that hit the metadata cache.
    pub metadata_cache_hits: u64,
    /// LLC demand misses.
    pub llc_misses: u64,
    /// Next-line prefetches issued to DRAM.
    pub prefetches: u64,
}

impl RunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        self.llc_misses as f64 * 1000.0 / self.instructions as f64
    }

    /// The difference of two cumulative snapshots (measurement window after
    /// a warm-up run).
    pub fn since(&self, earlier: &RunStats) -> RunStats {
        RunStats {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            dram: DramStats {
                reads: self.dram.reads - earlier.dram.reads,
                writes: self.dram.writes - earlier.dram.writes,
                activates: self.dram.activates - earlier.dram.activates,
                row_hits: self.dram.row_hits - earlier.dram.row_hits,
                refreshes: self.dram.refreshes - earlier.dram.refreshes,
            },
            metadata_dram_reads: self.metadata_dram_reads - earlier.metadata_dram_reads,
            metadata_cache_hits: self.metadata_cache_hits - earlier.metadata_cache_hits,
            llc_misses: self.llc_misses - earlier.llc_misses,
            prefetches: self.prefetches - earlier.prefetches,
        }
    }
}

/// Base byte address of the disjoint metadata region.
const META_BASE: u64 = 0x8_0000_0000;

/// Data lines covered by one 64-byte metadata line (4-bit tag per 16 bytes
/// ⇒ 2 bytes of tags per 64-byte line ⇒ 32 lines per metadata line).
const LINES_PER_META: u64 = 32;

/// Metadata-cache entry granularity: the paper's cache is "32-entry 16 kB",
/// i.e. 512-byte entries, each covering 256 data lines (16 kB of data).
const META_LINES_PER_ENTRY: u64 = 8;

/// The simulated system.
#[derive(Debug, Clone)]
pub struct System {
    config: SystemConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    dram: Dram,
    meta_cache: Option<MetadataCache>,
    cycle: u64,
    instructions: u64,
    metadata_dram_reads: u64,
    llc_misses: u64,
    prefetches: u64,
}

impl System {
    /// Builds a fresh system.
    pub fn new(config: SystemConfig) -> Self {
        let line = config.line_bytes;
        let meta_cache = match config.tagging {
            TagStorage::Disjoint {
                cache_entries: Some(n),
            } => Some(MetadataCache::new(n)),
            _ => None,
        };
        Self {
            l1: Cache::new("L1D", config.l1_bytes, 8, line, config.l1_latency),
            l2: Cache::new("L2", config.l2_bytes, 8, line, config.l2_latency),
            l3: Cache::new("L3", config.l3_bytes, 16, line, config.l3_latency),
            dram: Dram::new(config.dram, config.ecc),
            meta_cache,
            config,
            cycle: 0,
            instructions: 0,
            metadata_dram_reads: 0,
            llc_misses: 0,
            prefetches: 0,
        }
    }

    /// Runs `mem_ops` memory operations from the workload (plus their
    /// surrounding non-memory instructions) and reports the stats.
    pub fn run(&mut self, workload: &mut Workload, mem_ops: u64) -> RunStats {
        for _ in 0..mem_ops {
            self.step(workload.next_op());
        }
        self.stats()
    }

    /// Executes a single externally supplied memory operation (the
    /// trace-replay entry point): advances time by the op's instruction
    /// gap, then performs the access.
    pub fn step(&mut self, op: crate::MemOp) {
        self.cycle += op.gap_insts + 1;
        self.instructions += op.gap_insts + 1;
        self.access(op.addr, op.is_write);
    }

    /// Stats snapshot.
    pub fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.instructions,
            cycles: self.cycle,
            dram: self.dram.stats(),
            metadata_dram_reads: self.metadata_dram_reads,
            metadata_cache_hits: self.meta_cache.as_ref().map_or(0, |m| m.stats().hits),
            llc_misses: self.llc_misses,
            prefetches: self.prefetches,
        }
    }

    /// Per-level cache statistics `(L1, L2, L3)`.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.l3.stats())
    }

    /// One blocking memory access through the hierarchy.
    fn access(&mut self, addr: u64, is_write: bool) {
        self.cycle += self.config.l1_latency;
        match self.l1.access(addr, is_write) {
            CacheAccess::Hit => return,
            CacheAccess::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.writeback_to_l2(victim);
                }
            }
        }
        self.cycle += self.config.l2_latency;
        match self.l2.access(addr, false) {
            CacheAccess::Hit => return,
            CacheAccess::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.writeback_to_l3(victim);
                }
            }
        }
        self.cycle += self.config.l3_latency;
        match self.l3.access(addr, false) {
            CacheAccess::Hit => return,
            CacheAccess::Miss { writeback } => {
                if let Some(victim) = writeback {
                    self.dram_writeback(victim);
                }
            }
        }
        // LLC demand miss: the blocking demand fetch goes first (the
        // controller prioritizes demands); the metadata fetch then occupies
        // banks/bus behind it, delaying *later* misses — that contention is
        // the cost of disjoint tags.
        self.llc_misses += 1;
        self.cycle = self.dram.read(addr, self.cycle);
        self.fetch_tags_for(addr);
        if self.config.prefetch_next_line {
            self.prefetch(addr + self.config.line_bytes);
        }
    }

    /// Next-line prefetch: fills the LLC in the background (bank/bus
    /// occupancy is modelled; the CPU does not wait).
    fn prefetch(&mut self, addr: u64) {
        if self.l3.probe(addr) {
            return;
        }
        self.prefetches += 1;
        if let CacheAccess::Miss { writeback: Some(v) } = self.l3.access(addr, false) {
            self.dram_writeback(v);
        }
        let _ = self.dram.read(addr, self.cycle);
    }

    /// Write-back path L1 → L2 (allocating).
    fn writeback_to_l2(&mut self, victim: u64) {
        if let CacheAccess::Miss { writeback: Some(v) } = self.l2.access(victim, true) {
            self.writeback_to_l3(v);
        }
    }

    /// Write-back path L2 → L3 (allocating).
    fn writeback_to_l3(&mut self, victim: u64) {
        if let CacheAccess::Miss { writeback: Some(v) } = self.l3.access(victim, true) {
            self.dram_writeback(v);
        }
    }

    /// Asynchronous DRAM write: occupies bank/bus but does not block the CPU.
    fn dram_writeback(&mut self, addr: u64) {
        let _ = self.dram.write(addr, self.cycle);
    }

    /// Disjoint-metadata fetch on an LLC data miss.
    fn fetch_tags_for(&mut self, addr: u64) {
        if !matches!(self.config.tagging, TagStorage::Disjoint { .. }) {
            return;
        }
        let meta_line = addr / self.config.line_bytes / LINES_PER_META;
        if let Some(cache) = &mut self.meta_cache {
            // The cache holds 512-byte entries (8 metadata lines each).
            if cache.access(meta_line / META_LINES_PER_ENTRY) {
                return; // tag present on-chip
            }
        }
        self.metadata_dram_reads += 1;
        let meta_addr = META_BASE + meta_line * self.config.line_bytes;
        let _ = self.dram.read(meta_addr, self.cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2017_profiles;

    fn small_run(config: SystemConfig, bench: usize, ops: u64) -> RunStats {
        let mut system = System::new(config);
        let mut workload = Workload::new(spec2017_profiles()[bench], 42);
        system.run(&mut workload, ops)
    }

    #[test]
    fn cache_resident_workload_rarely_misses() {
        // 548.exchange2_r: tiny footprint, ~everything hits on-chip after
        // warm-up.
        let mut system = System::new(SystemConfig::default());
        let mut workload = Workload::new(spec2017_profiles()[18], 42);
        let warm = system.run(&mut workload, 30_000);
        let steady = system.run(&mut workload, 30_000).since(&warm);
        assert!(steady.llc_mpki() < 1.0, "mpki {}", steady.llc_mpki());
        assert!(steady.ipc() > 0.2);
    }

    #[test]
    fn streaming_workload_hits_dram_hard() {
        // 519.lbm_r: large streaming footprint (small L3 so the run fills
        // it and produces dirty evictions).
        let config = SystemConfig {
            l3_bytes: 1024 * 1024,
            ..SystemConfig::default()
        };
        let mut system = System::new(config);
        let mut workload = Workload::new(spec2017_profiles()[8], 42);
        let warm = system.run(&mut workload, 40_000);
        let steady = system.run(&mut workload, 40_000).since(&warm);
        assert!(steady.llc_mpki() > 5.0, "mpki {}", steady.llc_mpki());
        assert!(steady.dram.reads > 1_000);
        assert!(steady.dram.writes > 0, "dirty evictions reach DRAM");
    }

    #[test]
    fn ecc_write_latency_barely_affects_runtime() {
        // Figure 6's core claim: encoder latency on (asynchronous) writes is
        // almost free.
        let base = small_run(SystemConfig::default(), 8, 30_000);
        let ecc = small_run(
            SystemConfig {
                ecc: EccLatency {
                    encode: 4,
                    correct: 0,
                },
                ..SystemConfig::default()
            },
            8,
            30_000,
        );
        let slowdown = ecc.cycles as f64 / base.cycles as f64;
        assert!((0.999..1.01).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn always_correction_costs_a_little_more() {
        let base = small_run(SystemConfig::default(), 8, 30_000);
        let corr = small_run(
            SystemConfig {
                ecc: EccLatency {
                    encode: 4,
                    correct: 4,
                },
                ..SystemConfig::default()
            },
            8,
            30_000,
        );
        let slowdown = corr.cycles as f64 / base.cycles as f64;
        assert!((1.0..1.05).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn disjoint_tags_add_metadata_traffic() {
        let inline = small_run(
            SystemConfig {
                tagging: TagStorage::InlineEcc,
                ..SystemConfig::default()
            },
            8,
            30_000,
        );
        let disjoint = small_run(
            SystemConfig {
                tagging: TagStorage::Disjoint {
                    cache_entries: None,
                },
                ..SystemConfig::default()
            },
            8,
            30_000,
        );
        assert_eq!(inline.metadata_dram_reads, 0);
        assert_eq!(disjoint.metadata_dram_reads, disjoint.llc_misses);
        assert!(disjoint.dram.reads > inline.dram.reads);
        assert!(
            disjoint.cycles > inline.cycles,
            "contention slows the demand path"
        );
    }

    #[test]
    fn metadata_cache_filters_most_fetches() {
        // Streaming workloads hit the same metadata line for 32 consecutive
        // data lines: a 32-entry cache absorbs most fetches (the paper's
        // 67% -> 12% reduction).
        let cached = small_run(
            SystemConfig {
                tagging: TagStorage::Disjoint {
                    cache_entries: Some(32),
                },
                ..SystemConfig::default()
            },
            8,
            30_000,
        );
        assert!(cached.metadata_dram_reads < cached.llc_misses / 2);
        assert!(cached.metadata_cache_hits > 0);
    }

    #[test]
    fn metadata_orderings_match_figure7() {
        // rd+wr traffic: MUSE (inline) < cached MT < uncached MT.
        let mk = |tagging| {
            small_run(
                SystemConfig {
                    tagging,
                    ..SystemConfig::default()
                },
                4,
                25_000,
            )
        };
        let inline = mk(TagStorage::InlineEcc);
        let cached = mk(TagStorage::Disjoint {
            cache_entries: Some(32),
        });
        let uncached = mk(TagStorage::Disjoint {
            cache_entries: None,
        });
        let ops = |s: &RunStats| s.dram.operations();
        assert!(ops(&inline) < ops(&cached));
        assert!(ops(&cached) < ops(&uncached));
    }

    #[test]
    fn prefetch_helps_streaming() {
        // 519.lbm_r streams: the next-line prefetcher converts most demand
        // misses into LLC hits.
        let base_cfg = SystemConfig {
            l3_bytes: 1024 * 1024,
            ..SystemConfig::default()
        };
        let run = |prefetch| {
            let mut system = System::new(SystemConfig {
                prefetch_next_line: prefetch,
                ..base_cfg
            });
            let mut w = Workload::new(spec2017_profiles()[8], 42);
            let warm = system.run(&mut w, 30_000);
            system.run(&mut w, 30_000).since(&warm)
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.prefetches, 0);
        assert!(on.prefetches > 0);
        assert!(on.llc_misses < off.llc_misses, "prefetch absorbs misses");
        assert!(
            on.cycles < off.cycles,
            "and saves time on a streaming workload"
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = small_run(SystemConfig::default(), 2, 5_000);
        let b = small_run(SystemConfig::default(), 2, 5_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram.reads, b.dram.reads);
    }
}
