//! Property tests for the memory-system model: cache bookkeeping, DRAM
//! timing monotonicity, and system-level conservation laws.

use muse_memsim::{
    spec2017_profiles, Cache, CacheAccess, Dram, DramConfig, EccLatency, PagePolicy, System,
    SystemConfig, TagStorage, Workload,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cache_accounting_conserves(addrs in prop::collection::vec(0u64..1 << 20, 1..300)) {
        let mut cache = Cache::new("t", 16 * 1024, 4, 64, 1);
        let mut writebacks = 0u64;
        for (i, &addr) in addrs.iter().enumerate() {
            if let CacheAccess::Miss { writeback: Some(_) } = cache.access(addr, i % 3 == 0) {
                writebacks += 1;
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, addrs.len() as u64);
        prop_assert_eq!(stats.writebacks, writebacks);
        prop_assert!(stats.miss_ratio() <= 1.0);
    }

    #[test]
    fn cache_hit_after_fill_always(addr: u64) {
        let mut cache = Cache::new("t", 16 * 1024, 4, 64, 1);
        let _ = cache.access(addr, false);
        prop_assert!(cache.access(addr, false).is_hit());
        prop_assert!(cache.probe(addr));
    }

    #[test]
    fn dram_time_flows_forward(addrs in prop::collection::vec(0u64..1 << 24, 1..100)) {
        let mut dram = Dram::new(DramConfig::default(), EccLatency::NONE);
        let mut now = 0u64;
        for (i, &addr) in addrs.iter().enumerate() {
            let done = if i % 4 == 0 {
                dram.write(addr, now)
            } else {
                dram.read(addr, now)
            };
            prop_assert!(done > now, "completion after issue");
            now = done;
        }
        let stats = dram.stats();
        prop_assert_eq!(stats.operations(), addrs.len() as u64);
        prop_assert!(stats.row_hits <= stats.operations());
        prop_assert!(stats.activates <= stats.operations());
    }

    #[test]
    fn ecc_latency_is_monotone(extra in 0u64..16) {
        // More interface latency can never make a run faster.
        let profile = spec2017_profiles()[4];
        let run = |ecc: EccLatency| {
            let mut system = System::new(SystemConfig { ecc, ..SystemConfig::default() });
            let mut w = Workload::new(profile, 3);
            system.run(&mut w, 4_000).cycles
        };
        let base = run(EccLatency::NONE);
        let slower = run(EccLatency { encode: extra, correct: extra });
        prop_assert!(slower >= base);
    }

    #[test]
    fn closed_page_never_counts_row_hits(seed: u64) {
        let config = DramConfig { page_policy: PagePolicy::Closed, ..DramConfig::default() };
        let mut dram = Dram::new(config, EccLatency::NONE);
        let mut now = 0;
        for i in 0..50u64 {
            now = dram.read(seed.wrapping_add(i * 64) % (1 << 30), now);
        }
        prop_assert_eq!(dram.stats().row_hits, 0);
    }

    #[test]
    fn metadata_traffic_only_with_disjoint_tags(bench in 0usize..22) {
        let run = |tagging| {
            let mut system = System::new(SystemConfig { tagging, ..SystemConfig::default() });
            let mut w = Workload::new(spec2017_profiles()[bench], 9);
            system.run(&mut w, 3_000)
        };
        prop_assert_eq!(run(TagStorage::None).metadata_dram_reads, 0);
        prop_assert_eq!(run(TagStorage::InlineEcc).metadata_dram_reads, 0);
        let disjoint = run(TagStorage::Disjoint { cache_entries: None });
        prop_assert_eq!(disjoint.metadata_dram_reads, disjoint.llc_misses);
    }

    #[test]
    fn instructions_count_includes_gaps(bench in 0usize..22, ops in 100u64..2_000) {
        let mut system = System::new(SystemConfig::default());
        let mut w = Workload::new(spec2017_profiles()[bench], 5);
        let stats = system.run(&mut w, ops);
        // At least one instruction per memory op; cycles at least 1 per inst.
        prop_assert!(stats.instructions >= ops);
        prop_assert!(stats.cycles >= stats.instructions);
    }
}
