//! Internal residue-space trial machinery shared by the kernel-accelerated
//! simulators (`msed`, `retention`, `fit`).
//!
//! A trial never materializes a codeword: the payload lives as a few raw
//! limbs, symbol contents are gathered lazily (usually one shift-and-mask;
//! the check value `X` is folded — division-free — only when a touched
//! symbol owns check bits), and the injected corruption is a short list of
//! `(symbol, xor-pattern)` pairs whose syndrome is accumulated with table
//! lookups. See [`SyndromeKernel`](muse_core::SyndromeKernel) for the
//! tables.

use muse_core::{FastDecode, MuseCode, SyndromeKernel};

use crate::Rng;

/// Per-worker scratch for residue-space trials: one payload draw plus a
/// lazily-filled content cache.
pub(crate) struct CodewordScratch {
    payload: [u64; 5],
    /// Per-limb masks of the `k`-bit payload region.
    limb_masks: [u64; 5],
    /// Limbs the payload actually occupies (the rest stay zero).
    limbs: usize,
    contents: Vec<u16>,
    stamps: Vec<u64>,
    generation: u64,
    check_value: Option<u64>,
    /// The injected corruption of the current trial. Invariant: at most
    /// one entry per symbol (merge multiple fault mechanisms into one XOR
    /// pattern before pushing) — [`Self::syndrome`] and [`classify`] treat
    /// each entry's pattern as the symbol's *total* flip.
    pub injected: Vec<(usize, u16)>,
}

impl CodewordScratch {
    pub fn new(code: &MuseCode, kernel: &SyndromeKernel) -> Self {
        let k = code.k_bits();
        let limb_masks = std::array::from_fn(|i| {
            let lo = i as u32 * 64;
            if k >= lo + 64 {
                u64::MAX
            } else if k <= lo {
                0
            } else {
                (1u64 << (k - lo)) - 1
            }
        });
        let n_sym = code.symbol_map().num_symbols();
        Self {
            payload: [0; 5],
            limb_masks,
            limbs: kernel.payload_limbs(),
            contents: vec![0; n_sym],
            stamps: vec![u64::MAX; n_sym],
            generation: 0,
            check_value: None,
            injected: Vec::with_capacity(8),
        }
    }

    /// Starts a trial: draws a fresh uniform `k`-bit payload and invalidates
    /// the content cache.
    #[inline]
    pub fn begin_trial(&mut self, rng: &mut Rng) {
        for i in 0..self.limbs {
            self.payload[i] = rng.next_u64() & self.limb_masks[i];
        }
        self.generation = self.generation.wrapping_add(1);
        self.check_value = None;
        self.injected.clear();
    }

    /// The payload limbs of the current trial.
    #[cfg(test)]
    pub fn payload(&self) -> &[u64; 5] {
        &self.payload
    }

    /// The original (pre-corruption) content of `sym` in the encoded word,
    /// computed on first use per trial.
    #[inline]
    pub fn content(&mut self, kernel: &SyndromeKernel, sym: usize) -> u16 {
        if self.stamps[sym] != self.generation {
            let x = if kernel.needs_check_value(sym) {
                *self
                    .check_value
                    .get_or_insert_with(|| kernel.check_value(&self.payload))
            } else {
                0
            };
            self.contents[sym] = kernel.encoded_content(sym, &self.payload, x);
            self.stamps[sym] = self.generation;
        }
        self.contents[sym]
    }

    /// Syndrome of the current trial's injected corruption.
    #[inline]
    pub fn syndrome(&mut self, kernel: &SyndromeKernel) -> u64 {
        debug_assert!(
            self.injected
                .iter()
                .enumerate()
                .all(|(i, &(s, _))| self.injected[..i].iter().all(|&(t, _)| t != s)),
            "injected symbols must be unique; XOR-merge patterns per symbol"
        );
        let mut rem = 0;
        for idx in 0..self.injected.len() {
            let (sym, pattern) = self.injected[idx];
            let content = self.content(kernel, sym);
            rem = kernel.add_mod(rem, kernel.flip_delta(sym, content, pattern));
        }
        rem
    }
}

/// Exact decode outcome of one corrupted word, in residue space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrialOutcome {
    /// Zero syndrome and the corruption never left the check bits: the word
    /// reads back correct.
    CleanIntact,
    /// Zero syndrome but payload bits flipped — a truly silent corruption.
    CleanCorrupted,
    /// Flagged detected-but-uncorrectable.
    Detected,
    /// Corrected back to the original payload.
    CorrectedRight,
    /// "Corrected" into wrong data.
    Miscorrected,
}

/// Classifies the current trial, reproducing the wide decoder bit-for-bit
/// (cross-validated by `tests/syndrome_equivalence.rs` in `muse-core` and
/// the in-module test below).
#[inline]
pub(crate) fn classify(kernel: &SyndromeKernel, scratch: &mut CodewordScratch) -> TrialOutcome {
    let rem = scratch.syndrome(kernel);
    if rem == 0 {
        let intact = scratch
            .injected
            .iter()
            .all(|&(s, p)| p & kernel.payload_mask(s) == 0);
        return if intact {
            TrialOutcome::CleanIntact
        } else {
            TrialOutcome::CleanCorrupted
        };
    }
    match kernel.classify(rem) {
        FastDecode::Clean => unreachable!("nonzero remainder"),
        FastDecode::Detected => TrialOutcome::Detected,
        FastDecode::Correct { symbol } => {
            let original = scratch.content(kernel, symbol);
            let injected_pattern = scratch
                .injected
                .iter()
                .find(|&&(s, _)| s == symbol)
                .map_or(0, |&(_, p)| p);
            match kernel.correct(rem, original ^ injected_pattern) {
                None => TrialOutcome::Detected,
                Some(corrected) => {
                    let payload_restored = (corrected ^ original) & kernel.payload_mask(symbol)
                        == 0
                        && scratch
                            .injected
                            .iter()
                            .all(|&(s, p)| s == symbol || p & kernel.payload_mask(s) == 0);
                    if payload_restored {
                        TrialOutcome::CorrectedRight
                    } else {
                        TrialOutcome::Miscorrected
                    }
                }
            }
        }
    }
}

/// Draws `k` distinct symbols with a fresh nonzero corruption pattern each,
/// appending them to the scratch's injection list.
#[inline]
pub(crate) fn inject_random_symbols(
    kernel: &SyndromeKernel,
    scratch: &mut CodewordScratch,
    rng: &mut Rng,
    k: usize,
) {
    let n = kernel.num_symbols();
    assert!(k <= n, "cannot corrupt {k} of {n} devices");
    while scratch.injected.len() < k {
        let sym = rng.below(n as u64) as usize;
        if scratch.injected.iter().any(|&(s, _)| s == sym) {
            continue;
        }
        let pattern = rng.nonzero_below(1 << kernel.symbol_bits(sym)) as u16;
        scratch.injected.push((sym, pattern));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::{presets, Decoded, Word};

    /// Reference reconstruction: applies the injected patterns to the wide
    /// codeword and compares the fast classification with the wide decode.
    #[test]
    fn classification_matches_wide_decoder() {
        for code in [
            presets::muse_144_132(),
            presets::muse_80_69(),
            presets::muse_80_67(),
        ] {
            let kernel = code.kernel().expect("presets support the kernel");
            let mut scratch = CodewordScratch::new(&code, kernel);
            let mut rng = Rng::seeded(0xC0DE);
            for trial in 0..400 {
                scratch.begin_trial(&mut rng);
                let k = 1 + (trial % 3) as usize;
                inject_random_symbols(kernel, &mut scratch, &mut rng, k);

                let payload = Word::from_limbs(*scratch.payload());
                let cw = code.encode(&payload);
                let mut corrupted = cw;
                for &(sym, pattern) in &scratch.injected {
                    code.symbol_map()
                        .apply_xor_pattern(&mut corrupted, sym, pattern as u64);
                }
                let fast = classify(kernel, &mut scratch);
                let wide = code.decode(&corrupted);
                match (fast, wide) {
                    (TrialOutcome::CleanIntact, Decoded::Clean { payload: p }) => {
                        assert_eq!(p, payload)
                    }
                    (TrialOutcome::CleanCorrupted, Decoded::Clean { payload: p }) => {
                        assert_ne!(p, payload)
                    }
                    (TrialOutcome::Detected, Decoded::Detected) => {}
                    (TrialOutcome::CorrectedRight, Decoded::Corrected { payload: p, .. }) => {
                        assert_eq!(p, payload)
                    }
                    (TrialOutcome::Miscorrected, Decoded::Corrected { payload: p, .. }) => {
                        assert_ne!(p, payload)
                    }
                    (fast, wide) => {
                        panic!(
                            "{}: trial {trial}: fast {fast:?} vs wide {wide:?}",
                            code.name()
                        )
                    }
                }
            }
        }
    }

    #[test]
    fn payload_draw_respects_k_bits() {
        let code = presets::muse_80_69(); // k = 69: one full limb + 5 bits
        let kernel = code.kernel().expect("presets support the kernel");
        let mut scratch = CodewordScratch::new(&code, kernel);
        let mut rng = Rng::seeded(3);
        for _ in 0..50 {
            scratch.begin_trial(&mut rng);
            let p = Word::from_limbs(*scratch.payload());
            assert!(p.bit_len() <= 69);
        }
    }
}
