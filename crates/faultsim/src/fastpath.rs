//! Internal content-space trial machinery shared by the kernel-accelerated
//! simulators (`msed`, `retention`, `fit`, `ondie`).
//!
//! A trial lives entirely in the *content/error-value domain*: instead of
//! sampling a wide codeword and corrupting it, a trial samples only what it
//! observes —
//!
//! * the **content** of each touched symbol, drawn lazily and uniformly
//!   over the symbol's width (for a uniform payload, symbol payload bits
//!   are independent uniform bits);
//! * the **check value** `X`, drawn lazily and uniformly over `[0, m)` the
//!   first time a touched symbol owns check-region bits (for a uniform
//!   `k`-bit payload the true `X = m − payload·2^r mod m` deviates from
//!   uniform by less than `m/2^k ≤ 2⁻³⁵` in total variation — far below
//!   Monte-Carlo resolution);
//! * the injected corruption, a short list of `(symbol, xor-pattern)`
//!   pairs whose syndrome is accumulated with
//!   [`SyndromeKernel`](muse_core::SyndromeKernel) table lookups.
//!
//! No wide word — and no payload limb — is ever materialized on this path.
//! [`TrialPlan`] holds the per-configuration sampling constants and
//! supports columnar replay: whole blocks of symbol/pattern/content draws
//! are bulk-filled ([`Bounded32::fill`], [`Rng::fill_u64s`]) and consumed
//! per trial, which removes the serial RNG dependency between consecutive
//! trials. The in-module property tests reconstruct wide codewords
//! consistent with each sampled trial and prove the classification matches
//! the wide decoder, preset by preset.

use muse_core::{FastDecode, SyndromeKernel};

use crate::rng::Bounded32;
use crate::Rng;

/// Maximum simultaneous device failures the fixed-capacity content-space
/// trial paths support; experiments beyond this route through the
/// Vec-based distinct samplers in `msed` (still syndrome-domain — the
/// wide-word fallbacks are retired; any `k ≤ n_devices` is accepted).
pub(crate) const MAX_STRIKES: usize = 8;

/// Splits raw `u64` draws into 32-bit halves so two bounded samples usually
/// cost one generator step.
#[derive(Default)]
pub(crate) struct HalfDraws {
    pending: Option<u32>,
}

impl HalfDraws {
    #[inline]
    pub fn next(&mut self, rng: &mut Rng) -> u32 {
        match self.pending.take() {
            Some(half) => half,
            None => {
                let raw = rng.next_u64();
                self.pending = Some((raw >> 32) as u32);
                raw as u32
            }
        }
    }
}

/// Precomputed sampling distribution for kernel-path trials: which symbol
/// to strike, with what nonzero pattern, and what the symbol held — with
/// every Lemire rejection constant derived once per configuration instead
/// of per draw.
pub(crate) struct TrialPlan {
    /// `picks[i]` samples over `n_sym − i` (distinct-symbol draw `i`).
    picks: Vec<Bounded32>,
    /// Per-symbol nonzero-pattern samplers over `2^width − 1`.
    patterns: Vec<Bounded32>,
    /// Per-symbol bit-position samplers over `width`.
    bits: Vec<Bounded32>,
    /// Check-value sampler over `[0, m)`.
    x_pick: Bounded32,
}

impl TrialPlan {
    /// A plan for trials striking up to `max_k` distinct symbols.
    pub fn new(kernel: &SyndromeKernel, max_k: usize) -> Self {
        let n = kernel.num_symbols();
        assert!(max_k <= n, "cannot corrupt {max_k} of {n} devices");
        Self {
            picks: (0..max_k).map(|i| Bounded32::new((n - i) as u32)).collect(),
            patterns: (0..n)
                .map(|s| Bounded32::new((1u32 << kernel.symbol_bits(s)) - 1))
                .collect(),
            bits: (0..n)
                .map(|s| Bounded32::new(kernel.symbol_bits(s)))
                .collect(),
            x_pick: Bounded32::new(u32::try_from(kernel.modulus()).expect("kernel moduli fit u32")),
        }
    }

    /// The check-value sampler (uniform over `[0, m)`).
    #[inline]
    pub fn x_pick(&self) -> Bounded32 {
        self.x_pick
    }

    /// The sampler for distinct-symbol draw `i` (over `n_sym − i`).
    #[inline]
    pub fn pick(&self, i: usize) -> Bounded32 {
        self.picks[i]
    }

    /// When every symbol shares one width: the common nonzero-pattern
    /// sampler (add 1 to its samples), enabling columnar pattern fills.
    pub fn uniform_pattern(&self) -> Option<Bounded32> {
        let first = *self.patterns.first()?;
        self.patterns.iter().all(|p| *p == first).then_some(first)
    }

    /// Draws one uniformly random symbol index.
    #[inline]
    pub fn pick_symbol(&self, rng: &mut Rng, halves: &mut HalfDraws) -> usize {
        let half = halves.next(rng);
        self.picks[0].of_half(rng, half) as usize
    }

    /// Draws a uniformly random nonzero corruption pattern for `sym`.
    #[inline]
    pub fn pick_pattern(&self, rng: &mut Rng, halves: &mut HalfDraws, sym: usize) -> u16 {
        let half = halves.next(rng);
        1 + self.patterns[sym].of_half(rng, half) as u16
    }

    /// Draws a uniformly random content-bit index of `sym`.
    #[inline]
    pub fn pick_bit(&self, rng: &mut Rng, halves: &mut HalfDraws, sym: usize) -> u32 {
        let half = halves.next(rng);
        self.bits[sym].of_half(rng, half)
    }

    /// Draws `k` distinct symbols with a fresh nonzero corruption pattern
    /// each, appending them to the scratch's injection list.
    #[inline]
    pub fn inject_distinct(&self, scratch: &mut CodewordScratch, rng: &mut Rng, k: usize) {
        debug_assert!(k <= self.picks.len(), "plan built for fewer strikes");
        let mut halves = HalfDraws::default();
        let mut sorted = [0usize; MAX_STRIKES];
        assert!(
            k <= MAX_STRIKES,
            "at most {MAX_STRIKES} simultaneous device failures on the fast path"
        );
        for i in 0..k {
            let half = halves.next(rng);
            let draw = self.picks[i].of_half(rng, half) as usize;
            let sym = place_distinct(&mut sorted, i, draw);
            let pattern = self.pick_pattern(rng, &mut halves, sym);
            scratch.injected.push((sym, pattern));
        }
    }
}

/// Maps the `i`-th distinct draw `v ∈ [0, n−i)` onto the complement of the
/// ascending set `chosen[..i]`, inserts it, and returns the chosen index —
/// direct distinct sampling with no retry loop.
#[inline]
pub(crate) fn place_distinct(chosen: &mut [usize; 8], i: usize, mut sym: usize) -> usize {
    // Shift past the already-chosen indices to land on the v-th unchosen
    // one; `chosen` stays sorted, so stopping at the first larger entry is
    // sound.
    let mut insert = i;
    for (j, &prev) in chosen[..i].iter().enumerate() {
        if sym >= prev {
            sym += 1;
        } else {
            insert = j;
            break;
        }
    }
    let mut j = i;
    while j > insert {
        chosen[j] = chosen[j - 1];
        j -= 1;
    }
    chosen[insert] = sym;
    sym
}

/// Per-worker scratch for content-space trials: lazily sampled symbol
/// contents plus the trial's injected corruption.
pub(crate) struct CodewordScratch {
    contents: Vec<u16>,
    stamps: Vec<u64>,
    generation: u64,
    /// The check value `X`, drawn uniformly over `[0, m)` on first use by a
    /// symbol owning check-region bits.
    x: Option<u64>,
    x_pick: Bounded32,
    /// The injected corruption of the current trial. Invariant: at most
    /// one entry per symbol (merge multiple fault mechanisms into one XOR
    /// pattern before pushing) — [`Self::syndrome`] and [`classify`] treat
    /// each entry's pattern as the symbol's *total* flip.
    pub injected: Vec<(usize, u16)>,
}

impl CodewordScratch {
    pub fn new(kernel: &SyndromeKernel) -> Self {
        let n_sym = kernel.num_symbols();
        Self {
            contents: vec![0; n_sym],
            stamps: vec![u64::MAX; n_sym],
            generation: 0,
            x: None,
            x_pick: Bounded32::new(u32::try_from(kernel.modulus()).expect("kernel moduli fit u32")),
            injected: Vec::with_capacity(8),
        }
    }

    /// Starts a trial: invalidates the content cache, the check value, and
    /// the injection list. Nothing is drawn until first observed.
    #[inline]
    pub fn begin_trial(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        self.x = None;
        self.injected.clear();
    }

    /// The trial's check value, drawn on first use.
    #[inline]
    fn check_value(&mut self, rng: &mut Rng) -> u64 {
        match self.x {
            Some(x) => x,
            None => {
                let x = self.x_pick.sample(rng) as u64;
                self.x = Some(x);
                x
            }
        }
    }

    /// The original (pre-corruption) content of `sym` in the stored word,
    /// sampled on first observation per trial.
    #[inline]
    pub fn content(&mut self, kernel: &SyndromeKernel, rng: &mut Rng, sym: usize) -> u16 {
        if self.stamps[sym] != self.generation {
            let raw = rng.next_u64() as u16;
            return self.supply_content(kernel, rng, sym, raw);
        }
        self.contents[sym]
    }

    /// Like [`Self::content`], but takes the symbol's raw content bits from
    /// a pre-filled draw column instead of the live stream (`raw` is
    /// ignored when the content is already cached this trial). Check-region
    /// bits are filled from the trial's check value.
    #[inline]
    pub fn supply_content(
        &mut self,
        kernel: &SyndromeKernel,
        rng: &mut Rng,
        sym: usize,
        raw: u16,
    ) -> u16 {
        if self.stamps[sym] != self.generation {
            let content = if kernel.needs_check_value(sym) {
                let x = self.check_value(rng);
                kernel.apply_check_bits(sym, raw & kernel.payload_mask(sym), x)
            } else {
                raw & kernel.width_mask(sym)
            };
            self.contents[sym] = content;
            self.stamps[sym] = self.generation;
        }
        self.contents[sym]
    }

    /// The contents observed this trial (`None` = never sampled, free) and
    /// the check value, if one was drawn. Any wide codeword agreeing with
    /// the observed contents is consistent with the trial.
    #[cfg(test)]
    pub fn observed(&self) -> (Vec<Option<u16>>, Option<u64>) {
        (
            (0..self.contents.len())
                .map(|s| (self.stamps[s] == self.generation).then(|| self.contents[s]))
                .collect(),
            self.x,
        )
    }

    /// Pins every symbol content (and the check value) to those of a real
    /// codeword, making the trial an exact replay of a wide-word trial.
    #[cfg(test)]
    pub fn prefill(&mut self, contents: &[u16], x: u64) {
        self.generation = self.generation.wrapping_add(1);
        self.injected.clear();
        self.x = Some(x);
        self.contents.copy_from_slice(contents);
        for stamp in &mut self.stamps {
            *stamp = self.generation;
        }
    }

    /// Syndrome of the current trial's injected corruption.
    #[inline]
    pub fn syndrome(&mut self, kernel: &SyndromeKernel, rng: &mut Rng) -> u64 {
        debug_assert!(
            self.injected
                .iter()
                .enumerate()
                .all(|(i, &(s, _))| self.injected[..i].iter().all(|&(t, _)| t != s)),
            "injected symbols must be unique; XOR-merge patterns per symbol"
        );
        let mut rem = 0;
        for idx in 0..self.injected.len() {
            let (sym, pattern) = self.injected[idx];
            let content = self.content(kernel, rng, sym);
            rem = kernel.add_mod(rem, kernel.flip_delta(sym, content, pattern));
        }
        rem
    }
}

/// Fixed-capacity record of one columnar-replay trial — the MSED hot path.
///
/// Unlike [`CodewordScratch`] (whose content cache lives in per-symbol
/// vectors), an inline trial keeps its strikes in a small fixed array that
/// stays in registers when the record is a non-escaping local, so
/// consecutive trials share no memory traffic and the CPU overlaps their
/// table lookups. Capacity is [`MAX_STRIKES`] simultaneous device
/// failures; larger experiments take the Vec-based content path.
#[derive(Default)]
pub(crate) struct InlineTrial {
    /// `(symbol, pattern, content)` per strike.
    strikes: [(u32, u16, u16); MAX_STRIKES],
    len: usize,
    /// Content drawn for a correction target outside the strikes.
    extra: Option<(u32, u16)>,
    /// The trial's check value, drawn on first use.
    x: Option<u64>,
}

impl InlineTrial {
    /// The observations of the last trial, in [`CodewordScratch::observed`]
    /// form, for reference reconstruction.
    #[cfg(test)]
    pub fn observed(&self, n_sym: usize) -> (Vec<Option<u16>>, Option<u64>) {
        let mut observed = vec![None; n_sym];
        for &(s, _, c) in &self.strikes[..self.len] {
            observed[s as usize] = Some(c);
        }
        if let Some((s, c)) = self.extra {
            observed[s as usize] = Some(c);
        }
        (observed, self.x)
    }

    /// The strikes of the last trial.
    #[cfg(test)]
    pub fn strikes(&self) -> &[(u32, u16, u16)] {
        &self.strikes[..self.len]
    }
}

/// A symbol content assembled from raw uniform bits: payload bits masked to
/// the symbol width, check-region bits (if any) filled from the trial's
/// check value, drawn on first use.
#[inline]
pub(crate) fn content_from_raw(
    kernel: &SyndromeKernel,
    x_pick: Bounded32,
    rng: &mut Rng,
    x: &mut Option<u64>,
    sym: usize,
    raw: u16,
) -> u16 {
    if kernel.needs_check_value(sym) {
        let xv = match *x {
            Some(v) => v,
            None => {
                let v = x_pick.sample(rng) as u64;
                *x = Some(v);
                v
            }
        };
        kernel.apply_check_bits(sym, raw & kernel.payload_mask(sym), xv)
    } else {
        raw & kernel.width_mask(sym)
    }
}

/// Runs one content-space MSED trial from pre-drawn columns: `draws[i]` is
/// the `i`-th strike's `(distinct-symbol draw, final nonzero pattern, raw
/// content bits)`. Classification reproduces the wide decoder bit-for-bit
/// (property-tested below alongside [`classify`]).
#[inline(always)]
pub(crate) fn msed_inline_trial(
    kernel: &SyndromeKernel,
    x_pick: Bounded32,
    rng: &mut Rng,
    trial: &mut InlineTrial,
    draws: &[(u32, u16, u16)],
) -> TrialOutcome {
    assert!(
        draws.len() <= MAX_STRIKES,
        "at most {MAX_STRIKES} simultaneous device failures on the fast path"
    );
    let mut resolved = [(0u32, 0u16, 0u16); MAX_STRIKES];
    let mut chosen = [0usize; MAX_STRIKES];
    for (i, (&(sym_draw, pattern, raw), slot)) in draws.iter().zip(&mut resolved).enumerate() {
        let sym = place_distinct(&mut chosen, i, sym_draw as usize);
        *slot = (sym as u32, pattern, raw);
    }
    msed_inline_trial_resolved(kernel, x_pick, rng, trial, &resolved[..draws.len()])
}

/// [`msed_inline_trial`] with the distinct-symbol resolution already done:
/// `draws[i]` carries the `i`-th strike's final symbol index instead of its
/// distinct draw. The lane kernel's ordered replay enters here — its lane
/// pass resolved every symbol up front — drawing live randomness in exactly
/// the places (and order) the draw-for-draw scalar path would.
///
/// `inline(always)`: both callers are per-trial hot loops, and a real call
/// here forces the strike array through memory (measured ~2× on the MSED
/// columnar path).
#[inline(always)]
pub(crate) fn msed_inline_trial_resolved(
    kernel: &SyndromeKernel,
    x_pick: Bounded32,
    rng: &mut Rng,
    trial: &mut InlineTrial,
    draws: &[(u32, u16, u16)],
) -> TrialOutcome {
    assert!(
        draws.len() <= MAX_STRIKES,
        "at most {MAX_STRIKES} simultaneous device failures on the fast path"
    );
    trial.x = None;
    trial.extra = None;
    trial.len = draws.len();
    let mut rem = 0u64;
    for (i, &(sym, pattern, raw)) in draws.iter().enumerate() {
        let content = content_from_raw(kernel, x_pick, rng, &mut trial.x, sym as usize, raw);
        rem = kernel.add_mod(rem, kernel.flip_delta(sym as usize, content, pattern));
        trial.strikes[i] = (sym, pattern, content);
    }
    let (outcome, extra) = classify_strikes(
        kernel,
        x_pick,
        rng,
        &trial.strikes[..draws.len()],
        rem,
        &mut trial.x,
    );
    trial.extra = extra;
    outcome
}

/// One double-strike MSED trial from the k = 2 fully-columnar draw scheme,
/// with *no* live randomness: every observation is pre-drawn in bulk —
///
/// * `quad ∈ [0, n(n−1)·(2^w−1)²)` — one quad-packed bounded draw carrying
///   both distinct symbols *and* both nonzero patterns. The symbol pair is
///   `quad mod n(n−1)` (first strike `· / (n−1)`, second `· mod (n−1)`
///   adjusted past it — a uniform ordered pair of distinct symbols); the
///   pattern pair is `quad / n(n−1)`, split by `2^w−1` and offset by 1
///   (uniform width `w` only, and only while the product fits `u32`);
/// * `cnt` — two raw 16-bit contents, strike 0 in the low half;
/// * `x ∈ [0, m)` — the trial's check value, drawn unconditionally (the
///   lazy per-trial draw would serialize the stream behind a data-dependent
///   branch; an unused uniform draw biases nothing);
/// * `extra` — raw content bits for a correction target outside the
///   strikes, likewise drawn unconditionally and usually unused.
///
/// Returns the outcome plus the outside-strike correction target's
/// `(symbol, content)` when one was consulted (for reference
/// reconstruction in tests). This is the draw-for-draw scalar oracle the
/// lane kernel (`lanes.rs`) is proven bit-identical to.
#[inline]
pub(crate) fn msed_trial_k2_cols(
    kernel: &SyndromeKernel,
    quad: u32,
    cnt: u32,
    x: u64,
    extra: u32,
) -> (TrialOutcome, Option<(u32, u16)>) {
    let n = kernel.num_symbols() as u32;
    let pb = (1u32 << kernel.symbol_bits(0)) - 1;
    let sp = quad % (n * (n - 1));
    let qp = quad / (n * (n - 1));
    let a = (sp / (n - 1)) as usize;
    let r = (sp % (n - 1)) as usize;
    let b = r + (r >= a) as usize;
    let p0 = 1 + (qp / pb) as u16;
    let p1 = 1 + (qp % pb) as u16;
    let content = |sym: usize, raw: u16| {
        if kernel.needs_check_value(sym) {
            kernel.apply_check_bits(sym, raw & kernel.payload_mask(sym), x)
        } else {
            raw & kernel.width_mask(sym)
        }
    };
    let c0 = content(a, cnt as u16);
    let c1 = content(b, (cnt >> 16) as u16);
    let rem = kernel.add_mod(kernel.flip_delta(a, c0, p0), kernel.flip_delta(b, c1, p1));
    if rem == 0 {
        let intact = p0 & kernel.payload_mask(a) == 0 && p1 & kernel.payload_mask(b) == 0;
        return if intact {
            (TrialOutcome::CleanIntact, None)
        } else {
            (TrialOutcome::CleanCorrupted, None)
        };
    }
    match kernel.classify(rem) {
        FastDecode::Clean => unreachable!("nonzero remainder"),
        FastDecode::Detected => (TrialOutcome::Detected, None),
        FastDecode::Correct { symbol } => {
            let mut consulted = None;
            let (original, injected, other_clean) = if symbol == a {
                (c0, p0, p1 & kernel.payload_mask(b) == 0)
            } else if symbol == b {
                (c1, p1, p0 & kernel.payload_mask(a) == 0)
            } else {
                let c = content(symbol, extra as u16);
                consulted = Some((symbol as u32, c));
                let clean = p0 & kernel.payload_mask(a) == 0 && p1 & kernel.payload_mask(b) == 0;
                (c, 0, clean)
            };
            let outcome = match kernel.correct(rem, original ^ injected) {
                None => TrialOutcome::Detected,
                Some(corrected) => {
                    if (corrected ^ original) & kernel.payload_mask(symbol) == 0 && other_clean {
                        TrialOutcome::CorrectedRight
                    } else {
                        TrialOutcome::Miscorrected
                    }
                }
            };
            (outcome, consulted)
        }
    }
}

/// The classification tail shared by [`msed_inline_trial`] and the
/// two-phase block loop in `muse_msed`: given a trial's strikes (with their
/// contents) and accumulated syndrome, the exact decode outcome. Returns
/// any content freshly sampled for a correction target outside the strikes.
#[inline]
pub(crate) fn classify_strikes(
    kernel: &SyndromeKernel,
    x_pick: Bounded32,
    rng: &mut Rng,
    strikes: &[(u32, u16, u16)],
    rem: u64,
    x: &mut Option<u64>,
) -> (TrialOutcome, Option<(u32, u16)>) {
    if rem == 0 {
        let intact = strikes
            .iter()
            .all(|&(s, p, _)| p & kernel.payload_mask(s as usize) == 0);
        return if intact {
            (TrialOutcome::CleanIntact, None)
        } else {
            (TrialOutcome::CleanCorrupted, None)
        };
    }
    match kernel.classify(rem) {
        FastDecode::Clean => unreachable!("nonzero remainder"),
        FastDecode::Detected => (TrialOutcome::Detected, None),
        FastDecode::Correct { symbol } => {
            let mut extra = None;
            let (original, injected_pattern) =
                match strikes.iter().find(|&&(s, _, _)| s as usize == symbol) {
                    Some(&(_, p, c)) => (c, p),
                    None => {
                        let raw = rng.next_u64() as u16;
                        let c = content_from_raw(kernel, x_pick, rng, x, symbol, raw);
                        extra = Some((symbol as u32, c));
                        (c, 0)
                    }
                };
            let outcome = match kernel.correct(rem, original ^ injected_pattern) {
                None => TrialOutcome::Detected,
                Some(corrected) => {
                    let payload_restored = (corrected ^ original) & kernel.payload_mask(symbol)
                        == 0
                        && strikes.iter().all(|&(s, p, _)| {
                            s as usize == symbol || p & kernel.payload_mask(s as usize) == 0
                        });
                    if payload_restored {
                        TrialOutcome::CorrectedRight
                    } else {
                        TrialOutcome::Miscorrected
                    }
                }
            };
            (outcome, extra)
        }
    }
}

/// Exact decode outcome of one corrupted word, in residue space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrialOutcome {
    /// Zero syndrome and the corruption never left the check bits: the word
    /// reads back correct.
    CleanIntact,
    /// Zero syndrome but payload bits flipped — a truly silent corruption.
    CleanCorrupted,
    /// Flagged detected-but-uncorrectable.
    Detected,
    /// Corrected back to the original payload.
    CorrectedRight,
    /// "Corrected" into wrong data.
    Miscorrected,
}

/// Classifies the current trial, reproducing the wide decoder bit-for-bit
/// (cross-validated by `tests/syndrome_equivalence.rs` in `muse-core` and
/// the in-module property tests below).
#[inline]
pub(crate) fn classify(
    kernel: &SyndromeKernel,
    scratch: &mut CodewordScratch,
    rng: &mut Rng,
) -> TrialOutcome {
    let rem = scratch.syndrome(kernel, rng);
    classify_rem(kernel, scratch, rng, rem)
}

/// [`classify`] with the syndrome already accumulated (the columnar hot
/// loops fold the syndrome while injecting).
#[inline]
pub(crate) fn classify_rem(
    kernel: &SyndromeKernel,
    scratch: &mut CodewordScratch,
    rng: &mut Rng,
    rem: u64,
) -> TrialOutcome {
    if rem == 0 {
        let intact = scratch
            .injected
            .iter()
            .all(|&(s, p)| p & kernel.payload_mask(s) == 0);
        return if intact {
            TrialOutcome::CleanIntact
        } else {
            TrialOutcome::CleanCorrupted
        };
    }
    match kernel.classify(rem) {
        FastDecode::Clean => unreachable!("nonzero remainder"),
        FastDecode::Detected => TrialOutcome::Detected,
        FastDecode::Correct { symbol } => {
            let original = scratch.content(kernel, rng, symbol);
            let injected_pattern = scratch
                .injected
                .iter()
                .find(|&&(s, _)| s == symbol)
                .map_or(0, |&(_, p)| p);
            match kernel.correct(rem, original ^ injected_pattern) {
                None => TrialOutcome::Detected,
                Some(corrected) => {
                    let payload_restored = (corrected ^ original) & kernel.payload_mask(symbol)
                        == 0
                        && scratch
                            .injected
                            .iter()
                            .all(|&(s, p)| s == symbol || p & kernel.payload_mask(s) == 0);
                    if payload_restored {
                        TrialOutcome::CorrectedRight
                    } else {
                        TrialOutcome::Miscorrected
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::{presets, Decoded, MuseCode, Word};

    fn preset_codes() -> Vec<MuseCode> {
        let mut codes = presets::table1();
        codes.extend([presets::muse_80_67(), presets::muse_80_70()]);
        codes
    }

    fn check_outcome(name: &str, trial: usize, fast: TrialOutcome, wide: Decoded, payload: Word) {
        match (fast, wide) {
            (TrialOutcome::CleanIntact, Decoded::Clean { payload: p }) => {
                assert_eq!(p, payload, "{name}: trial {trial}")
            }
            (TrialOutcome::CleanCorrupted, Decoded::Clean { payload: p }) => {
                assert_ne!(p, payload, "{name}: trial {trial}")
            }
            (TrialOutcome::Detected, Decoded::Detected) => {}
            (TrialOutcome::CorrectedRight, Decoded::Corrected { payload: p, .. }) => {
                assert_eq!(p, payload, "{name}: trial {trial}")
            }
            (TrialOutcome::Miscorrected, Decoded::Corrected { payload: p, .. }) => {
                assert_ne!(p, payload, "{name}: trial {trial}")
            }
            (fast, wide) => panic!("{name}: trial {trial}: fast {fast:?} vs wide {wide:?}"),
        }
    }

    /// Exact replay: pin the scratch contents to a real encoded codeword
    /// and verify the content-space classification matches the wide decoder
    /// for random corruptions — every preset, no sampling approximation.
    #[test]
    fn prefilled_trials_match_wide_decoder() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let plan = TrialPlan::new(kernel, 3);
            let mut scratch = CodewordScratch::new(kernel);
            let mut rng = Rng::seeded(0xFEED);
            for trial in 0..300 {
                // A fresh random payload per trial, encoded wide.
                let mut limbs = [0u64; 5];
                for limb in &mut limbs {
                    *limb = rng.next_u64();
                }
                let payload = Word::from_limbs(limbs) & Word::mask(code.k_bits());
                let cw = code.encode(&payload);
                let contents = kernel.contents_of_word(code.symbol_map(), &cw);
                let x = (cw & Word::mask(code.r_bits())).to_u64().expect("r ≤ 32");
                scratch.prefill(&contents, x);

                let k = 1 + (trial % 3);
                plan.inject_distinct(&mut scratch, &mut rng, k);
                let fast = classify(kernel, &mut scratch, &mut rng);

                let mut corrupted = cw;
                for &(sym, pattern) in &scratch.injected {
                    code.symbol_map()
                        .apply_xor_pattern(&mut corrupted, sym, pattern as u64);
                }
                check_outcome(code.name(), trial, fast, code.decode(&corrupted), payload);
            }
        }
    }

    /// `x^(-1) mod m` for odd `m` (test-side completion math).
    fn mod_inv_pow2(exp: u32, m: u64) -> u64 {
        // inv(2) = (m+1)/2 for odd m; inv(2^exp) = inv(2)^exp.
        assert!(m % 2 == 1, "kernel multipliers are odd");
        let inv2 = m.div_ceil(2);
        let mut acc = 1u64 % m;
        for _ in 0..exp {
            acc = acc * inv2 % m; // both < m < 2^32: fits u64
        }
        acc
    }

    /// Subset-sum completion: finds unobserved payload bits whose single-bit
    /// residues sum to `target` (mod m) and sets them in `parts`. Works for
    /// any layout; `O(m)` per item with early exit once the target is
    /// reachable.
    fn complete_by_dp(
        code: &MuseCode,
        observed: &[Option<u16>],
        target: u64,
        parts: &mut [u16],
    ) -> bool {
        let kernel = code.kernel().expect("caller checked");
        let map = code.symbol_map();
        let m = kernel.modulus() as usize;
        // Items: one per payload bit of an unobserved symbol; the residue of
        // a single content bit is additive, R_s[a | b] = R_s[a] + R_s[b].
        let items: Vec<(usize, usize, u64)> = (0..kernel.num_symbols())
            .filter(|&s| observed[s].is_none())
            .flat_map(|s| {
                map.bits_of(s)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &bit)| bit >= code.r_bits())
                    .map(move |(i, _)| (s, i))
                    .collect::<Vec<_>>()
            })
            .map(|(s, i)| (s, i, kernel.residue(s, 1 << i)))
            .collect();
        const UNREACHED: u16 = u16::MAX;
        let mut via: Vec<u16> = vec![UNREACHED; m]; // item that first reached res
        let mut prev: Vec<u32> = vec![0; m];
        via[0] = UNREACHED - 1; // reached with no items
        if target == 0 {
            return true;
        }
        for (item, &(_, _, v)) in items.iter().enumerate() {
            for res in 0..m as u64 {
                if via[res as usize] < item as u16
                    || (via[res as usize] == UNREACHED - 1 && res == 0)
                {
                    let next = kernel.add_mod(res, v) as usize;
                    if via[next] == UNREACHED {
                        via[next] = item as u16;
                        prev[next] = res as u32;
                    }
                }
            }
            if via[target as usize] != UNREACHED {
                // Backtrack, setting the chosen bits.
                let mut res = target;
                while res != 0 {
                    let item = via[res as usize] as usize;
                    let (s, i, _) = items[item];
                    assert_eq!(parts[s] & (1 << i), 0, "item used once");
                    parts[s] |= 1 << i;
                    res = prev[res as usize] as u64;
                }
                return true;
            }
        }
        false
    }

    /// Completes a live-sampled content-space trial into a full wide
    /// codeword: observed contents are honored verbatim, unobserved symbols
    /// carry zero payload bits except a contiguous "window" whose value is
    /// solved (mod m) so the codeword's check value equals the trial's
    /// sampled `X`. Returns `None` when the layout offers no window clear
    /// of the observed symbols (possible for shuffled maps).
    fn reconstruct(code: &MuseCode, observed: &[Option<u16>], x: Option<u64>) -> Option<Word> {
        let kernel = code.kernel().expect("caller checked");
        let map = code.symbol_map();
        let m = kernel.modulus();
        // Payload parts: observed symbols keep their payload bits.
        let mut parts: Vec<u16> = (0..kernel.num_symbols())
            .map(|s| observed[s].unwrap_or(0) & kernel.payload_mask(s))
            .collect();
        let x = match x {
            // No check value sampled: any payload works — use the parts as
            // they stand and derive X from them.
            None => kernel.check_value_of_parts(&parts),
            Some(x) => {
                // Solve: sum of all payload-part residues ≡ m − X (mod m).
                let fixed = parts.iter().enumerate().fold(0, |acc, (s, &vp)| {
                    kernel.add_mod(acc, kernel.residue(s, vp))
                });
                let target = (2 * m - x - fixed) % m;
                // Window: ceil(log2 m) contiguous codeword bits ≥ r whose
                // owners were all unobserved.
                let window_len = 64 - (m - 1).leading_zeros();
                let mut solved = false;
                'search: for a in code.r_bits()..=(code.n_bits() - window_len) {
                    for b in a..a + window_len {
                        if observed[map.symbol_of_bit(b)].is_some() {
                            continue 'search;
                        }
                    }
                    // Q·2^a ≡ target (mod m), Q < m ≤ 2^window_len.
                    let q = target * mod_inv_pow2(a, m) % m;
                    for b in a..a + window_len {
                        if q >> (b - a) & 1 == 1 {
                            let sym = map.symbol_of_bit(b);
                            let idx = map
                                .bits_of(sym)
                                .iter()
                                .position(|&bit| bit == b)
                                .expect("owner");
                            parts[sym] |= 1 << idx;
                        }
                    }
                    solved = true;
                    break;
                }
                // Shuffled maps interleave symbols bit-by-bit, so no
                // contiguous window is clear of observed symbols: fall back
                // to a subset-sum DP over single unobserved payload bits.
                if !solved && !complete_by_dp(code, observed, target, &mut parts) {
                    return None;
                }
                x
            }
        };
        // Assemble the codeword from the parts + X's check bits.
        let mut word = Word::ZERO;
        for (sym, &part) in parts.iter().enumerate() {
            let content = kernel.apply_check_bits(sym, part, x);
            for (i, &bit) in map.bits_of(sym).iter().enumerate() {
                if content >> i & 1 == 1 {
                    word.toggle_bit(bit);
                }
            }
        }
        assert_eq!(code.remainder(&word), 0, "completion must be a codeword");
        // Honor the observed contents exactly.
        let contents = kernel.contents_of_word(map, &word);
        for (s, &obs) in observed.iter().enumerate() {
            if let Some(c) = obs {
                assert_eq!(contents[s], c, "symbol {s} content altered");
            }
        }
        Some(word)
    }

    /// Live sampling: run content-space trials exactly as the simulators
    /// do, reconstruct a wide codeword consistent with each trial's
    /// observations, and verify the wide decoder classifies the same way —
    /// every preset code.
    #[test]
    fn sampled_trials_match_wide_decoder() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let plan = TrialPlan::new(kernel, 3);
            let mut scratch = CodewordScratch::new(kernel);
            let mut rng = Rng::seeded(0xC0DE);
            let mut reconstructed = 0u32;
            for trial in 0..400 {
                scratch.begin_trial();
                let k = 1 + (trial % 3);
                plan.inject_distinct(&mut scratch, &mut rng, k);
                let fast = classify(kernel, &mut scratch, &mut rng);

                let (observed, x) = scratch.observed();
                let Some(cw) = reconstruct(&code, &observed, x) else {
                    continue; // no window clear of the observed symbols
                };
                reconstructed += 1;
                let payload = code.payload_of(&cw);
                assert_eq!(code.encode(&payload), cw, "systematic roundtrip");
                let mut corrupted = cw;
                for &(sym, pattern) in &scratch.injected {
                    code.symbol_map()
                        .apply_xor_pattern(&mut corrupted, sym, pattern as u64);
                }
                check_outcome(code.name(), trial, fast, code.decode(&corrupted), payload);
            }
            assert!(
                reconstructed >= 300,
                "{}: only {reconstructed}/400 trials reconstructable",
                code.name()
            );
        }
    }

    /// The inline (columnar-replay) MSED path against the wide decoder:
    /// same reconstruction as `sampled_trials_match_wide_decoder`, driving
    /// `msed_inline_trial` the way `muse_msed`'s hot loop does.
    #[test]
    fn inline_trials_match_wide_decoder() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let plan = TrialPlan::new(kernel, 3);
            let Some(uniform) = plan.uniform_pattern() else {
                continue;
            };
            let mut trial = InlineTrial::default();
            let mut rng = Rng::seeded(0x1221);
            let mut reconstructed = 0u32;
            for t in 0..400 {
                let k = 1 + (t % 3);
                let mut draws = [(0u32, 0u16, 0u16); 8];
                for (i, draw) in draws[..k].iter_mut().enumerate() {
                    *draw = (
                        plan.pick(i).sample(&mut rng),
                        1 + uniform.sample(&mut rng) as u16,
                        rng.next_u64() as u16,
                    );
                }
                let fast =
                    msed_inline_trial(kernel, plan.x_pick(), &mut rng, &mut trial, &draws[..k]);

                let (observed, x) = trial.observed(kernel.num_symbols());
                let Some(cw) = reconstruct(&code, &observed, x) else {
                    continue;
                };
                reconstructed += 1;
                let payload = code.payload_of(&cw);
                let mut corrupted = cw;
                for &(sym, pattern, _) in trial.strikes() {
                    code.symbol_map().apply_xor_pattern(
                        &mut corrupted,
                        sym as usize,
                        pattern as u64,
                    );
                }
                check_outcome(code.name(), t, fast, code.decode(&corrupted), payload);
            }
            assert!(
                reconstructed >= 300,
                "{}: only {reconstructed}/400 inline trials reconstructable",
                code.name()
            );
        }
    }

    /// The fully-columnar k = 2 trial against the wide decoder: sample the
    /// four pre-drawn columns the way `muse_msed` fills them, reconstruct a
    /// codeword consistent with every observation, and compare outcomes —
    /// each uniform-width preset (the scheme is undefined on mixed widths).
    #[test]
    fn k2_columnar_trials_match_wide_decoder() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let plan = TrialPlan::new(kernel, 2);
            if plan.uniform_pattern().is_none() {
                continue;
            }
            let n = kernel.num_symbols() as u32;
            let pb = (1u32 << kernel.symbol_bits(0)) - 1;
            let bound = n as u64 * (n - 1) as u64 * pb as u64 * pb as u64;
            if bound > u32::MAX as u64 {
                continue; // scheme undefined: quad draw must fit u32
            }
            let mut rng = Rng::seeded(0x2C01);
            let mut reconstructed = 0u32;
            for t in 0..400 {
                let quad = rng.below(bound) as u32;
                let cnt = rng.next_u64() as u32;
                let x = rng.below(kernel.modulus());
                let extra = rng.next_u64() as u32;
                let (fast, consulted) = msed_trial_k2_cols(kernel, quad, cnt, x, extra);

                let sp = quad % (n * (n - 1));
                let qp = quad / (n * (n - 1));
                let a = (sp / (n - 1)) as usize;
                let r = (sp % (n - 1)) as usize;
                let b = r + (r >= a) as usize;
                let strikes = [(a, 1 + (qp / pb) as u16), (b, 1 + (qp % pb) as u16)];
                let content = |sym: usize, raw: u16| {
                    if kernel.needs_check_value(sym) {
                        kernel.apply_check_bits(sym, raw & kernel.payload_mask(sym), x)
                    } else {
                        raw & kernel.width_mask(sym)
                    }
                };
                let mut observed = vec![None; kernel.num_symbols()];
                observed[a] = Some(content(a, cnt as u16));
                observed[b] = Some(content(b, (cnt >> 16) as u16));
                if let Some((sym, c)) = consulted {
                    observed[sym as usize] = Some(c);
                }
                let Some(cw) = reconstruct(&code, &observed, Some(x)) else {
                    continue;
                };
                reconstructed += 1;
                let payload = code.payload_of(&cw);
                let mut corrupted = cw;
                for &(sym, pattern) in &strikes {
                    code.symbol_map()
                        .apply_xor_pattern(&mut corrupted, sym, pattern as u64);
                }
                check_outcome(code.name(), t, fast, code.decode(&corrupted), payload);
            }
            assert!(
                reconstructed >= 300,
                "{}: only {reconstructed}/400 columnar trials reconstructable",
                code.name()
            );
        }
    }

    #[test]
    fn inject_distinct_is_uniform_and_distinct() {
        let code = presets::muse_144_132();
        let kernel = code.kernel().expect("presets support the kernel");
        let plan = TrialPlan::new(kernel, 3);
        let mut scratch = CodewordScratch::new(kernel);
        let mut rng = Rng::seeded(9);
        let n = kernel.num_symbols();
        let mut hits = vec![0u32; n];
        for _ in 0..4_000 {
            scratch.begin_trial();
            plan.inject_distinct(&mut scratch, &mut rng, 3);
            let mut syms: Vec<usize> = scratch.injected.iter().map(|&(s, _)| s).collect();
            assert_eq!(syms.len(), 3);
            for &(s, p) in &scratch.injected {
                assert!(p != 0 && (p as u32) < (1 << kernel.symbol_bits(s)));
                hits[s] += 1;
            }
            syms.sort_unstable();
            syms.dedup();
            assert_eq!(syms.len(), 3, "symbols must be distinct");
        }
        // 4000 trials × 3 picks / 36 symbols ≈ 333 expected hits each.
        for (s, &h) in hits.iter().enumerate() {
            assert!((200..500).contains(&h), "symbol {s} hit {h} times");
        }
    }

    #[test]
    fn contents_respect_symbol_widths_and_check_bits() {
        for code in [presets::muse_144_132(), presets::muse_80_69()] {
            let kernel = code.kernel().expect("presets support the kernel");
            let mut scratch = CodewordScratch::new(kernel);
            let mut rng = Rng::seeded(3);
            for _ in 0..50 {
                scratch.begin_trial();
                for sym in 0..kernel.num_symbols() {
                    let c = scratch.content(kernel, &mut rng, sym);
                    assert_eq!(c & !kernel.width_mask(sym), 0, "width overflow");
                }
                let (_, x) = scratch.observed();
                let x = x.expect("some symbol owns check bits");
                assert!(x < kernel.modulus());
                // Check-region bits must match X exactly.
                for sym in 0..kernel.num_symbols() {
                    let c = scratch.contents[sym];
                    let expect = kernel.apply_check_bits(sym, c & kernel.payload_mask(sym), x);
                    assert_eq!(c, expect, "check bits of symbol {sym}");
                }
            }
        }
    }

    #[test]
    fn untouched_trials_draw_nothing() {
        let code = presets::muse_144_132();
        let kernel = code.kernel().expect("presets support the kernel");
        let mut scratch = CodewordScratch::new(kernel);
        scratch.begin_trial();
        let (observed, x) = scratch.observed();
        assert!(observed.iter().all(Option::is_none));
        assert_eq!(x, None, "no check symbol observed ⇒ no X drawn");
        // Observing a payload-only symbol still leaves X undrawn.
        let mut rng = Rng::seeded(1);
        let sym = kernel.num_symbols() - 1;
        assert!(!kernel.needs_check_value(sym));
        scratch.content(kernel, &mut rng, sym);
        let (observed, x) = scratch.observed();
        assert_eq!(observed.iter().flatten().count(), 1);
        assert_eq!(x, None);
    }
}
