//! On-die ECC + rank-level MUSE co-design (the paper's stated future work:
//! "the investigation of MUSE co-design with on-die ECC is an interesting
//! topic for future work").
//!
//! Model: each DRAM device internally protects 128-bit words with a DDR5-
//! style Hamming SEC code (8 check bits, no double-error detection). A
//! rank-level codeword draws `s` bits from each device. Retention faults
//! strike cells independently; the on-die code heals or *miscorrects*
//! inside each device before the rank-level code (MUSE or none) sees the
//! result.
//!
//! The interesting interaction: on-die SEC removes most single-cell faults
//! (so the rank code's single-device budget is spent on real multi-bit
//! events), but a double fault inside one on-die word can be *miscorrected
//! into a third bit*, turning 2 bad cells into 3 — still device-confined,
//! so ChipKill-class rank codes clean it up, while a rank-less system
//! silently corrupts.
//!
//! # Content-space fast path
//!
//! Both codes here are **linear**, so a trial's outcome depends only on the
//! *flip positions*, never on the stored data: the on-die syndrome is the
//! XOR of the flipped positions' parity-check columns, and the correction
//! toggles one more position. A fast trial therefore samples, per device,
//! the flipped-cell *count* from its exact binomial CDF ([`CountCdf`] — one
//! raw draw, and ~87% of devices sample zero and are skipped), places the
//! flips, folds the 8-bit on-die syndrome from a 136-entry column table,
//! and hands the surviving rank-visible XOR pattern to the incremental
//! MUSE residue kernel. No 136-bit word is ever encoded or decoded; the
//! wide pipeline survives only as the property-tested reference (rank
//! codes without a syndrome kernel are rejected).

#[cfg(test)]
use muse_core::Decoded;
use muse_core::MuseCode;
use muse_secded::SecDed;
#[cfg(test)]
use muse_secded::{SecDecoded, Word};

use crate::engine::{SimEngine, Tally};
use crate::fastpath::{classify, CodewordScratch, TrialOutcome};
#[cfg(test)]
use crate::random_payload;
use crate::rng::{Bounded32, CountCdf};
use crate::Rng;

/// Which protections are stacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// No ECC at all (baseline).
    None,
    /// On-die SEC inside each device only.
    OnDieOnly,
    /// Rank-level MUSE only.
    RankOnly,
    /// Both: on-die first, then the rank code.
    Stacked,
}

/// Outcome tallies for one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct OndieStats {
    /// Rank words delivered intact.
    pub intact: u64,
    /// Rank words flagged uncorrectable (DUE).
    pub due: u64,
    /// Rank words silently wrong (SDC).
    pub sdc: u64,
}

impl OndieStats {
    /// Total words simulated.
    pub fn total(&self) -> u64 {
        self.intact + self.due + self.sdc
    }

    /// Silent-corruption rate.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.total() as f64
    }

    /// Uncorrectable rate.
    pub fn due_rate(&self) -> f64 {
        self.due as f64 / self.total() as f64
    }
}

impl Tally for OndieStats {
    fn merge(&mut self, other: Self) {
        self.intact += other.intact;
        self.due += other.due;
        self.sdc += other.sdc;
    }
}

/// The flip-position model of one on-die device word: parity-check columns,
/// the syndrome→position decode map, and the fault-count CDF.
struct OndieModel {
    /// `column[b]` of the stored 136-bit word.
    columns: Vec<u32>,
    /// Syndrome → stored-bit position (`u32::MAX` = unmapped).
    syn_to_bit: Vec<u32>,
    /// Check bits (data bit `i` lives at stored position `i + r`).
    r: u32,
    /// Flipped-cell count per stored word.
    counts: CountCdf,
    /// Position sampler over the stored word.
    position: Bounded32,
}

impl OndieModel {
    fn new(ondie: &SecDed, cell_p: f64) -> Self {
        let n = ondie.n_bits();
        let columns: Vec<u32> = (0..n).map(|b| ondie.column(b)).collect();
        let mut syn_to_bit = vec![u32::MAX; 1 << ondie.r_bits()];
        for (bit, &col) in columns.iter().enumerate() {
            syn_to_bit[col as usize] = bit as u32;
        }
        Self {
            columns,
            syn_to_bit,
            r: ondie.r_bits(),
            counts: CountCdf::binomial(n, cell_p),
            position: Bounded32::new(n),
        }
    }

    /// Samples one device's flip set (bitmask over stored positions) from a
    /// pre-drawn count raw, or `None` when no cell faulted.
    #[inline]
    fn sample_flips(&self, rng: &mut Rng, count_raw: u64) -> Option<[u64; 3]> {
        let count = self.counts.sample(count_raw);
        if count == 0 {
            return None;
        }
        let mut flips = [0u64; 3];
        let mut placed = 0;
        while placed < count {
            let pos = self.position.sample(rng) as usize;
            if flips[pos >> 6] >> (pos & 63) & 1 == 0 {
                flips[pos >> 6] |= 1 << (pos & 63);
                placed += 1;
            }
        }
        Some(flips)
    }

    /// What the on-die decode leaves behind: the residual flip set after
    /// SEC correction (or the raw flips when the syndrome is zero or
    /// unmapped — the on-die code has no detection signaling).
    #[inline]
    fn residual(&self, mut flips: [u64; 3], ondie_active: bool) -> [u64; 3] {
        if !ondie_active {
            return flips;
        }
        let mut syndrome = 0u32;
        for (word, &limb) in flips.iter().enumerate() {
            let mut bits = limb;
            while bits != 0 {
                let pos = word * 64 + bits.trailing_zeros() as usize;
                syndrome ^= self.columns[pos];
                bits &= bits - 1;
            }
        }
        if syndrome != 0 {
            let bit = self.syn_to_bit[syndrome as usize];
            if bit != u32::MAX {
                // The "correction" toggles this position: it heals a real
                // flip or adds a third one (miscorrection).
                flips[(bit >> 6) as usize] ^= 1 << (bit & 63);
            }
        }
        flips
    }

    /// The rank-visible XOR pattern of a residual flip set: data bits
    /// `0..width` live at stored positions `r..r+width`.
    #[inline]
    fn visible(&self, residual: [u64; 3], width: u32) -> u16 {
        debug_assert!(self.r + width <= 64, "visible window fits limb 0");
        (residual[0] >> self.r) as u16 & ((1u32 << width) - 1) as u16
    }
}

/// Simulates `words` rank-level reads at per-cell fault probability
/// `cell_p`, with the given protection stack.
///
/// The rank code's devices each contribute their symbol bits from an
/// independent on-die word; faults hit the full on-die word, and the
/// rank-visible bits inherit whatever the on-die decode leaves behind.
///
/// Words run batched on the [`SimEngine`]; results are bit-identical at any
/// thread count.
///
/// # Panics
///
/// Panics if `rank_code` is needed by the stack but `None` was passed.
pub fn simulate_stack(
    stack: Stack,
    rank_code: Option<&MuseCode>,
    cell_p: f64,
    words: u64,
    seed: u64,
) -> OndieStats {
    simulate_stack_threaded(stack, rank_code, cell_p, words, seed, 0)
}

/// [`simulate_stack`] with an explicit worker count (0 ⇒ all CPUs).
pub fn simulate_stack_threaded(
    stack: Stack,
    rank_code: Option<&MuseCode>,
    cell_p: f64,
    words: u64,
    seed: u64,
    threads: usize,
) -> OndieStats {
    let ondie = SecDed::hamming_sec(136, 128).expect("DDR5 on-die geometry");
    let code = rank_code.filter(|_| matches!(stack, Stack::RankOnly | Stack::Stacked));
    if matches!(stack, Stack::RankOnly | Stack::Stacked) {
        assert!(code.is_some(), "stack {stack:?} needs a rank code");
    }
    let ondie_active = matches!(stack, Stack::OnDieOnly | Stack::Stacked);
    let model = OndieModel::new(&ondie, cell_p);
    let engine = SimEngine::new(threads);
    let seed = seed ^ 0x0D1E;

    match code {
        Some(c) => {
            let kernel = crate::require_kernel(c, "rank-level flip-position");
            {
                let n_dev = kernel.num_symbols();
                engine.run_blocked(
                    seed,
                    words,
                    || (CodewordScratch::new(kernel), vec![0u64; n_dev]),
                    |range, rng, (scratch, count_raws), stats: &mut OndieStats| {
                        for _ in range {
                            scratch.begin_trial();
                            rng.fill_u64s(count_raws);
                            for (dev, &raw) in count_raws.iter().enumerate() {
                                let Some(flips) = model.sample_flips(rng, raw) else {
                                    continue;
                                };
                                let residual = model.residual(flips, ondie_active);
                                let pattern = model.visible(residual, kernel.symbol_bits(dev));
                                if pattern != 0 {
                                    scratch.injected.push((dev, pattern));
                                }
                            }
                            if scratch.injected.is_empty() {
                                stats.intact += 1;
                                continue;
                            }
                            match classify(kernel, scratch, rng) {
                                TrialOutcome::CleanIntact | TrialOutcome::CorrectedRight => {
                                    stats.intact += 1
                                }
                                TrialOutcome::Detected => stats.due += 1,
                                TrialOutcome::CleanCorrupted | TrialOutcome::Miscorrected => {
                                    stats.sdc += 1
                                }
                            }
                        }
                    },
                )
            }
        }
        None => {
            // No rank code: 16 devices feed a raw 64-bit word; the read is
            // silently wrong iff any device leaves a visible residual flip.
            engine.run_blocked(
                seed,
                words,
                || vec![0u64; 16],
                |range, rng, count_raws, stats: &mut OndieStats| {
                    for _ in range {
                        rng.fill_u64s(count_raws);
                        let mut corrupted = false;
                        for &raw in count_raws.iter() {
                            let Some(flips) = model.sample_flips(rng, raw) else {
                                continue;
                            };
                            let residual = model.residual(flips, ondie_active);
                            corrupted |= model.visible(residual, 4) != 0;
                        }
                        if corrupted {
                            stats.sdc += 1;
                        } else {
                            stats.intact += 1;
                        }
                    }
                },
            )
        }
    }
}

/// The wide-word reference pipeline: encodes and decodes real on-die words.
/// The retired runtime fallback, surviving only as the cross-validated
/// oracle for the flip-position fast path.
#[cfg(test)]
fn simulate_stack_wide(
    stack: Stack,
    code: Option<&MuseCode>,
    cell_p: f64,
    words: u64,
    seed: u64,
    threads: usize,
    ondie: &SecDed,
) -> OndieStats {
    SimEngine::new(threads).run(seed, words, |_, rng, stats: &mut OndieStats| {
        // Rank-level payload and codeword (or raw data when no rank code).
        let (payload, rank_word, n_bits, map) = match code {
            Some(c) => {
                let payload = random_payload(rng, c.k_bits());
                (
                    payload,
                    c.encode(&payload),
                    c.n_bits(),
                    Some(c.symbol_map()),
                )
            }
            None => {
                let data = random_payload(rng, 64);
                (data, data, 64, None)
            }
        };

        // Each device's rank-visible bits live inside an independent
        // on-die word at a random offset.
        let mut delivered = rank_word;
        let num_devices = map.map_or(16, |m| m.num_symbols());
        for dev in 0..num_devices {
            let bits: Vec<u32> = match map {
                Some(m) => m.bits_of(dev).to_vec(),
                None => (0..4).map(|i| (dev as u32 * 4 + i) % n_bits).collect(),
            };
            // Build the on-die word: our bits at offset 0..s, the rest of
            // the 128 data bits random (other rank words' data).
            let mut ondie_data = random_payload(rng, 128);
            for (i, &bit) in bits.iter().enumerate() {
                ondie_data.set_bit(i as u32, rank_word.bit(bit));
            }
            let stored = ondie.encode(&ondie_data);
            // Retention faults on the stored 136 bits.
            let mut faulty = stored;
            let mut any = false;
            for b in 0..136 {
                if rng.chance(cell_p) {
                    faulty.toggle_bit(b);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let after: Word = if matches!(stack, Stack::OnDieOnly | Stack::Stacked) {
                match ondie.decode(&faulty) {
                    SecDecoded::Clean { data } | SecDecoded::Corrected { data, .. } => data,
                    // On-die SEC has no detection signaling to the
                    // controller: an unmapped syndrome passes the raw word.
                    SecDecoded::Detected => faulty >> ondie.r_bits(),
                }
            } else {
                faulty >> ondie.r_bits()
            };
            for (i, &bit) in bits.iter().enumerate() {
                delivered.set_bit(bit, after.bit(i as u32));
            }
        }

        // Rank-level decode (or raw delivery).
        match code {
            Some(c) => match c.decode(&delivered) {
                Decoded::Detected => stats.due += 1,
                d => {
                    if d.payload() == Some(payload) {
                        stats.intact += 1;
                    } else {
                        stats.sdc += 1;
                    }
                }
            },
            None => {
                if delivered == payload {
                    stats.intact += 1;
                } else {
                    stats.sdc += 1;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    const P: f64 = 2e-3; // accelerated fault rate for test speed

    #[test]
    fn no_protection_corrupts_silently() {
        let stats = simulate_stack(Stack::None, None, P, 1_500, 1);
        assert!(stats.sdc > 0, "raw words must corrupt");
        assert_eq!(stats.due, 0, "nothing detects");
    }

    #[test]
    fn ondie_alone_reduces_but_does_not_eliminate_sdc() {
        let none = simulate_stack(Stack::None, None, P, 1_500, 2);
        let ondie = simulate_stack(Stack::OnDieOnly, None, P, 1_500, 2);
        assert!(
            ondie.sdc < none.sdc,
            "on-die SEC heals most single-cell faults"
        );
        assert!(ondie.sdc > 0, "double faults still leak (or miscorrect)");
    }

    #[test]
    fn stacked_beats_everything() {
        let code = presets::muse_144_132();
        let rank = simulate_stack(Stack::RankOnly, Some(&code), P, 1_000, 3);
        let stacked = simulate_stack(Stack::Stacked, Some(&code), P, 1_000, 3);
        assert!(stacked.sdc <= rank.sdc);
        assert!(
            stacked.due <= rank.due,
            "on-die pre-correction removes rank DUEs"
        );
        assert!(stacked.intact >= rank.intact);
    }

    #[test]
    fn rank_code_handles_ondie_miscorrections() {
        // On-die double faults miscorrect into a third bit — still
        // device-confined, so the rank code mops them up. (Simultaneous
        // residuals in *two* devices exceed ChipKill and become DUEs, so
        // the fault rate here keeps multi-device coincidences rare.)
        let code = presets::muse_144_132();
        let stacked = simulate_stack(Stack::Stacked, Some(&code), 1e-3, 1_200, 4);
        let intact_rate = stacked.intact as f64 / stacked.total() as f64;
        assert!(intact_rate > 0.9, "stack survives: {stacked:?}");
        assert!(
            stacked.sdc * 50 < stacked.total(),
            "SDC stays rare: {stacked:?}"
        );
    }

    #[test]
    #[should_panic(expected = "carries no syndrome kernel")]
    fn kernel_less_rank_code_panics() {
        // The wide runtime fallback is retired: a rank code without a
        // kernel is a caller error, not a silent slow path.
        let mut code = presets::muse_144_132();
        code.disable_syndrome_kernel();
        let _ = simulate_stack(Stack::RankOnly, Some(&code), 1e-3, 10, 1);
    }

    #[test]
    fn zero_fault_rate_is_perfect() {
        let code = presets::muse_144_132();
        for stack in [
            Stack::None,
            Stack::OnDieOnly,
            Stack::RankOnly,
            Stack::Stacked,
        ] {
            let rank = matches!(stack, Stack::RankOnly | Stack::Stacked).then_some(&code);
            let stats = simulate_stack(stack, rank, 0.0, 100, 5);
            assert_eq!(stats.intact, 100, "{stack:?}");
        }
    }

    /// The flip-position device model against the real SECDED pipeline: for
    /// random flip sets, the residual pattern must equal what encode →
    /// corrupt → decode leaves on the data bits. The codes are linear, so
    /// this holds for *any* stored data — exercised with random data words.
    #[test]
    fn device_residual_matches_wide_secded() {
        let ondie = SecDed::hamming_sec(136, 128).expect("geometry");
        let model = OndieModel::new(&ondie, 0.01);
        let mut rng = Rng::seeded(0x5EC);
        for trial in 0..2_000 {
            let raw = rng.next_u64();
            let Some(flips) = model.sample_flips(&mut rng, raw) else {
                continue;
            };
            for active in [false, true] {
                let residual = model.residual(flips, active);

                let data = random_payload(&mut rng, 128);
                let stored = ondie.encode(&data);
                let mut faulty = stored;
                for (word, &limb) in flips.iter().enumerate() {
                    let mut bits = limb;
                    while bits != 0 {
                        let pos = word as u32 * 64 + bits.trailing_zeros();
                        faulty.toggle_bit(pos);
                        bits &= bits - 1;
                    }
                }
                let after = if active {
                    match ondie.decode(&faulty) {
                        SecDecoded::Clean { data } | SecDecoded::Corrected { data, .. } => data,
                        SecDecoded::Detected => faulty >> ondie.r_bits(),
                    }
                } else {
                    faulty >> ondie.r_bits()
                };
                // Compare all 128 data bits against data ⊕ residual.
                for i in 0..128u32 {
                    let pos = i + ondie.r_bits();
                    let res_bit = residual[(pos >> 6) as usize] >> (pos & 63) & 1 == 1;
                    assert_eq!(
                        after.bit(i),
                        data.bit(i) ^ res_bit,
                        "trial {trial} active {active} data bit {i}"
                    );
                }
            }
        }
    }

    /// Fast path vs the wide oracle pipeline, statistically: same rates
    /// within Monte-Carlo tolerance. (The oracle is no longer reachable at
    /// runtime — kernel-less rank codes panic — so it is driven directly.)
    #[test]
    fn fast_path_consistent_with_wide_reference() {
        let code = presets::muse_144_132();
        let fast = simulate_stack(Stack::Stacked, Some(&code), 2e-3, 2_000, 7);
        let ondie = SecDed::hamming_sec(136, 128).expect("DDR5 on-die geometry");
        let wide = simulate_stack_wide(
            Stack::Stacked,
            Some(&code),
            2e-3,
            2_000,
            7 ^ 0x0D1E,
            0,
            &ondie,
        );
        assert_eq!(fast.total(), wide.total());
        let tol = 0.05 * fast.total() as f64;
        assert!(
            (fast.intact as f64 - wide.intact as f64).abs() < tol,
            "fast {fast:?} vs wide {wide:?}"
        );
        assert!(
            (fast.due as f64 - wide.due as f64).abs() < tol,
            "fast {fast:?} vs wide {wide:?}"
        );
    }
}
