//! On-die ECC + rank-level MUSE co-design (the paper's stated future work:
//! "the investigation of MUSE co-design with on-die ECC is an interesting
//! topic for future work").
//!
//! Model: each DRAM device internally protects 128-bit words with a DDR5-
//! style Hamming SEC code (8 check bits, no double-error detection). A
//! rank-level codeword draws `s` bits from each device. Retention faults
//! strike cells independently; the on-die code heals or *miscorrects*
//! inside each device before the rank-level code (MUSE or none) sees the
//! result.
//!
//! The interesting interaction: on-die SEC removes most single-cell faults
//! (so the rank code's single-device budget is spent on real multi-bit
//! events), but a double fault inside one on-die word can be *miscorrected
//! into a third bit*, turning 2 bad cells into 3 — still device-confined,
//! so ChipKill-class rank codes clean it up, while a rank-less system
//! silently corrupts.

use muse_core::{Decoded, MuseCode};
use muse_secded::{SecDecoded, SecDed, Word};

use crate::engine::{SimEngine, Tally};
use crate::random_payload;

/// Which protections are stacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// No ECC at all (baseline).
    None,
    /// On-die SEC inside each device only.
    OnDieOnly,
    /// Rank-level MUSE only.
    RankOnly,
    /// Both: on-die first, then the rank code.
    Stacked,
}

/// Outcome tallies for one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct OndieStats {
    /// Rank words delivered intact.
    pub intact: u64,
    /// Rank words flagged uncorrectable (DUE).
    pub due: u64,
    /// Rank words silently wrong (SDC).
    pub sdc: u64,
}

impl OndieStats {
    /// Total words simulated.
    pub fn total(&self) -> u64 {
        self.intact + self.due + self.sdc
    }

    /// Silent-corruption rate.
    pub fn sdc_rate(&self) -> f64 {
        self.sdc as f64 / self.total() as f64
    }

    /// Uncorrectable rate.
    pub fn due_rate(&self) -> f64 {
        self.due as f64 / self.total() as f64
    }
}

impl Tally for OndieStats {
    fn merge(&mut self, other: Self) {
        self.intact += other.intact;
        self.due += other.due;
        self.sdc += other.sdc;
    }
}

/// Simulates `words` rank-level reads at per-cell fault probability
/// `cell_p`, with the given protection stack.
///
/// The rank code's devices each contribute their symbol bits from an
/// independent on-die word; faults hit the full on-die word, and the
/// rank-visible bits inherit whatever the on-die decode leaves behind.
///
/// Words run batched on the [`SimEngine`] (one worker per CPU); results are
/// bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `rank_code` is needed by the stack but `None` was passed.
pub fn simulate_stack(
    stack: Stack,
    rank_code: Option<&MuseCode>,
    cell_p: f64,
    words: u64,
    seed: u64,
) -> OndieStats {
    simulate_stack_threaded(stack, rank_code, cell_p, words, seed, 0)
}

/// [`simulate_stack`] with an explicit worker count (0 ⇒ all CPUs).
pub fn simulate_stack_threaded(
    stack: Stack,
    rank_code: Option<&MuseCode>,
    cell_p: f64,
    words: u64,
    seed: u64,
    threads: usize,
) -> OndieStats {
    let ondie = SecDed::hamming_sec(136, 128).expect("DDR5 on-die geometry");
    let code = rank_code.filter(|_| matches!(stack, Stack::RankOnly | Stack::Stacked));
    if matches!(stack, Stack::RankOnly | Stack::Stacked) {
        assert!(code.is_some(), "stack {stack:?} needs a rank code");
    }

    SimEngine::new(threads).run(seed ^ 0x0D1E, words, |_, rng, stats: &mut OndieStats| {
        // Rank-level payload and codeword (or raw data when no rank code).
        let (payload, rank_word, n_bits, map) = match code {
            Some(c) => {
                let payload = random_payload(rng, c.k_bits());
                (
                    payload,
                    c.encode(&payload),
                    c.n_bits(),
                    Some(c.symbol_map()),
                )
            }
            None => {
                let data = random_payload(rng, 64);
                (data, data, 64, None)
            }
        };

        // Each device's rank-visible bits live inside an independent
        // on-die word at a random offset.
        let mut delivered = rank_word;
        let num_devices = map.map_or(16, |m| m.num_symbols());
        for dev in 0..num_devices {
            let bits: Vec<u32> = match map {
                Some(m) => m.bits_of(dev).to_vec(),
                None => (0..4).map(|i| (dev as u32 * 4 + i) % n_bits).collect(),
            };
            // Build the on-die word: our bits at offset 0..s, the rest of
            // the 128 data bits random (other rank words' data).
            let mut ondie_data = random_payload(rng, 128);
            for (i, &bit) in bits.iter().enumerate() {
                ondie_data.set_bit(i as u32, rank_word.bit(bit));
            }
            let stored = ondie.encode(&ondie_data);
            // Retention faults on the stored 136 bits.
            let mut faulty = stored;
            let mut any = false;
            for b in 0..136 {
                if rng.chance(cell_p) {
                    faulty.toggle_bit(b);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let after: Word = if matches!(stack, Stack::OnDieOnly | Stack::Stacked) {
                match ondie.decode(&faulty) {
                    SecDecoded::Clean { data } | SecDecoded::Corrected { data, .. } => data,
                    // On-die SEC has no detection signaling to the
                    // controller: an unmapped syndrome passes the raw word.
                    SecDecoded::Detected => faulty >> ondie.r_bits(),
                }
            } else {
                faulty >> ondie.r_bits()
            };
            for (i, &bit) in bits.iter().enumerate() {
                delivered.set_bit(bit, after.bit(i as u32));
            }
        }

        // Rank-level decode (or raw delivery).
        match code {
            Some(c) => match c.decode(&delivered) {
                Decoded::Detected => stats.due += 1,
                d => {
                    if d.payload() == Some(payload) {
                        stats.intact += 1;
                    } else {
                        stats.sdc += 1;
                    }
                }
            },
            None => {
                if delivered == payload {
                    stats.intact += 1;
                } else {
                    stats.sdc += 1;
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    const P: f64 = 2e-3; // accelerated fault rate for test speed

    #[test]
    fn no_protection_corrupts_silently() {
        let stats = simulate_stack(Stack::None, None, P, 1_500, 1);
        assert!(stats.sdc > 0, "raw words must corrupt");
        assert_eq!(stats.due, 0, "nothing detects");
    }

    #[test]
    fn ondie_alone_reduces_but_does_not_eliminate_sdc() {
        let none = simulate_stack(Stack::None, None, P, 1_500, 2);
        let ondie = simulate_stack(Stack::OnDieOnly, None, P, 1_500, 2);
        assert!(
            ondie.sdc < none.sdc,
            "on-die SEC heals most single-cell faults"
        );
        assert!(ondie.sdc > 0, "double faults still leak (or miscorrect)");
    }

    #[test]
    fn stacked_beats_everything() {
        let code = presets::muse_144_132();
        let rank = simulate_stack(Stack::RankOnly, Some(&code), P, 1_000, 3);
        let stacked = simulate_stack(Stack::Stacked, Some(&code), P, 1_000, 3);
        assert!(stacked.sdc <= rank.sdc);
        assert!(
            stacked.due <= rank.due,
            "on-die pre-correction removes rank DUEs"
        );
        assert!(stacked.intact >= rank.intact);
    }

    #[test]
    fn rank_code_handles_ondie_miscorrections() {
        // On-die double faults miscorrect into a third bit — still
        // device-confined, so the rank code mops them up. (Simultaneous
        // residuals in *two* devices exceed ChipKill and become DUEs, so
        // the fault rate here keeps multi-device coincidences rare.)
        let code = presets::muse_144_132();
        let stacked = simulate_stack(Stack::Stacked, Some(&code), 1e-3, 1_200, 4);
        let intact_rate = stacked.intact as f64 / stacked.total() as f64;
        assert!(intact_rate > 0.9, "stack survives: {stacked:?}");
        assert!(
            stacked.sdc * 50 < stacked.total(),
            "SDC stays rare: {stacked:?}"
        );
    }

    #[test]
    fn zero_fault_rate_is_perfect() {
        let code = presets::muse_144_132();
        for stack in [
            Stack::None,
            Stack::OnDieOnly,
            Stack::RankOnly,
            Stack::Stacked,
        ] {
            let rank = matches!(stack, Stack::RankOnly | Stack::Stacked).then_some(&code);
            let stats = simulate_stack(stack, rank, 0.0, 100, 5);
            assert_eq!(stats.intact, 100, "{stack:?}");
        }
    }
}
