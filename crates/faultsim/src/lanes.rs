//! Lane-parallel (structure-of-arrays) MUSE trial kernel — the
//! double-symbol MSED hot path for uniform-width symbol layouts.
//!
//! The scalar fast path walks one trial at a time: resolve its distinct
//! symbols, assemble contents, fold residues, probe the fused ELC table.
//! Each step is a handful of table loads, so the real limit is memory-level
//! parallelism — consecutive trials serialized behind each other's lookups
//! and, worse, behind *data-dependent live draws* (the lazily sampled check
//! value `X`). This module removes both. The k = 2 draw scheme is fully
//! columnar (see [`fastpath::msed_trial_k2_cols`]): one quad-packed bounded
//! draw carries a trial's two distinct symbols *and* two nonzero patterns,
//! and the check value and outside-strike correction content are
//! unconditional per-trial columns — no live randomness at all. A whole
//! engine block then moves through the kernel in branchless stages:
//!
//! 1. **Decode + fold + probe** (one fused pass per lane): unpack the quad
//!    draw with divisions by the runtime constants `n(n−1)`, `n−1` and
//!    `2^w−1` strength-reduced to multiply-shift (domain-verified at
//!    construction), assemble final contents — check bits included — via a
//!    per-symbol shift-and-mask of the `X` column
//!    ([`SyndromeKernel::check_span`]), gather `before`/`after` residues,
//!    reduce modularly without branches (`x.min(x − m)` compiles to a
//!    cmov), and probe the fused ELC table. Consecutive lanes share no
//!    state, so the table loads overlap in the load queue.
//! 2. **Compact** — indices of trials needing attention (zero syndrome or
//!    a correction candidate, ~12%) collected with a branch-free
//!    conditional append; the bulk majority tally as Detected in one
//!    addition.
//! 3. **Walk** — the exceptional few re-derive their draws from the
//!    original columns (pure ALU, cheaper than storing six columns for
//!    everyone) and finish the exact transition-table classification. No
//!    trial ever re-enters a scalar replay.
//!
//! With the `simd` cargo feature on a runtime-detected AVX2 host, stage 1
//! runs as a split pipeline instead: a decode pass materializes the strike
//! columns, and `vpgatherdq` folds four lanes per iteration — bit-identical
//! to the portable pass (`simd_parity` test, cross-feature CI).
//!
//! Unavailable on mixed-width layouts, scattered (non-affine) check spans,
//! or geometries past the verified divisor domains; `muse_msed` falls back
//! to the same-stream scalar oracle there, so the lane kernel is an
//! implementation detail the draws never observe.

use muse_core::SyndromeKernel;

use crate::fastpath::TrialOutcome;

/// Multiply-shift division by a runtime constant (Granlund–Montgomery
/// round-up magic), exact over a construction-verified dividend domain —
/// the stage-1 decodes divide every lane by `n(n−1)`, `n−1` and `2^w−1`,
/// where hardware `div`s would cost more than the rest of the stage.
#[derive(Clone, Copy)]
struct MagicDiv {
    div: u32,
    magic: u64,
}

impl MagicDiv {
    /// A divider exact for all dividends in `[0, div·count)`, or `None`
    /// when exactness cannot be guaranteed for that domain (the lane
    /// kernel then defers to the scalar path and its hardware divisions).
    fn new(div: u32, count: u32) -> Option<Self> {
        if div == 0 {
            return None;
        }
        let domain = (div as u64).checked_mul(count as u64)?;
        if domain > 1u64 << 32 {
            return None;
        }
        let magic = (1u64 << 32) / div as u64 + 1;
        // div·magic = 2^32 + e with e = div − (2^32 mod div) ∈ [1, div];
        // then ⌊d·magic / 2^32⌋ = ⌊d/div⌋ exactly while d·e < 2^32 (the
        // round-up variant of Granlund–Montgomery invariant division).
        let e = div as u64 * magic - (1u64 << 32);
        if domain.saturating_sub(1) as u128 * e as u128 >= 1u128 << 32 {
            return None;
        }
        let this = Self { div, magic };
        // Belt and braces for small domains; the analytic bound carries
        // the rest (and `magic_div_exact` exhausts the large presets).
        debug_assert!((0..domain.min(1 << 14) as u32).all(|d| this.quot(d) == d / div));
        Some(this)
    }

    #[inline]
    fn quot(self, d: u32) -> u32 {
        ((d as u64 * self.magic) >> 32) as u32
    }

    #[inline]
    fn divmod(self, d: u32) -> (u32, u32) {
        let q = self.quot(d);
        (q, d - q * self.div)
    }
}

/// Per-configuration constants of the lane kernel.
/// [`LaneKernel::new`] returns `None` for layouts the columnar stages
/// cannot shape — see the module docs.
pub(crate) struct LaneKernel<'k> {
    /// Flat residue table; symbol `s` content `x` at `(s << width) + x`.
    residues: &'k [u64],
    /// Fused remainder → `(transition offset << 12) | symbol` table.
    elc_fused: &'k [u32],
    /// Flat content-transition blocks behind the fused entries.
    transitions: &'k [u16],
    /// Per-symbol payload masks.
    payload_masks: Vec<u16>,
    /// Per-symbol affine check-span constants, packed
    /// `(cbase << 24) | (ibase << 16) | nbits_mask`: the check part of a
    /// content is `(((x >> cbase) as u16) & nbits_mask) << ibase` — all
    /// zeros for payload-only symbols, so one branchless expression covers
    /// every lane.
    check_info: Vec<u32>,
    /// The common symbol width.
    width: u32,
    m: u64,
    /// Quad-draw split: divide by `n(n−1)` (quotient = pattern pair,
    /// remainder = symbol pair).
    quad_div: MagicDiv,
    /// Symbol-pair decode: divide by `n − 1`.
    sym_div: MagicDiv,
    /// Pattern-pair decode: divide by `2^width − 1`.
    pat_div: MagicDiv,
    /// Runtime-detected AVX2 (only ever true with the `simd` feature).
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    use_avx2: bool,
}

/// Per-worker stage buffers, sized for one engine block. Grow-only, never
/// zeroed: every cell is written before it is read.
#[derive(Default)]
pub(crate) struct LaneBuffers {
    /// Per-trial modular syndrome.
    rems: Vec<u64>,
    /// Per-trial fused-table probe results.
    packed: Vec<u32>,
    /// Compacted indices of trials needing per-trial attention.
    exceptional: Vec<u32>,
    /// Decoded strike columns (strike-major), used by the AVX2 split
    /// pipeline only — the portable pass keeps everything in registers.
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    syms: Vec<u32>,
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    pats: Vec<u32>,
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
    cnts: Vec<u32>,
}

fn grow<T: Clone + Default>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::default());
    }
}

/// Standalone compaction pass for the AVX2 split pipeline (the portable
/// pass fuses this into stage 1): collects indices of trials needing the
/// walk with a branch-free conditional append. Returns the count.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn compact(buf: &mut LaneBuffers, len: usize) -> usize {
    let mut n_exc = 0usize;
    for t in 0..len {
        buf.exceptional[n_exc] = t as u32;
        let exc = (buf.rems[t] == 0) | (buf.packed[t] != SyndromeKernel::NO_ENTRY);
        n_exc += exc as usize;
    }
    n_exc
}

impl<'k> LaneKernel<'k> {
    /// Builds the lane kernel, or `None` where the columnar stages don't
    /// apply: mixed symbol widths, scattered check spans, non-standard
    /// residue packing, or a geometry past the dividers' verified domains.
    pub fn new(kernel: &'k SyndromeKernel) -> Option<Self> {
        let n = kernel.num_symbols();
        if n < 2 {
            return None;
        }
        let width = kernel.symbol_bits(0);
        if (1..n).any(|s| kernel.symbol_bits(s) != width) {
            return None;
        }
        if (0..n).any(|s| kernel.residue_offset(s) != (s as u32) << width) {
            return None;
        }
        let mut check_info = Vec::with_capacity(n);
        for s in 0..n {
            let (cbase, ibase, nbits) = kernel.check_span(s)?;
            check_info
                .push(((cbase as u32) << 24) | ((ibase as u32) << 16) | ((1u32 << nbits) - 1));
        }
        let n = n as u32;
        let pb = (1u32 << width) - 1;
        Some(Self {
            residues: kernel.raw_residues(),
            elc_fused: kernel.raw_elc_fused(),
            transitions: kernel.raw_transitions(),
            payload_masks: (0..n as usize).map(|s| kernel.payload_mask(s)).collect(),
            check_info,
            width,
            m: kernel.modulus(),
            quad_div: MagicDiv::new(n * (n - 1), pb.checked_mul(pb)?)?,
            sym_div: MagicDiv::new(n - 1, n)?,
            pat_div: MagicDiv::new(pb, pb)?,
            use_avx2: avx2_available(),
        })
    }

    /// A symbol's final content from its raw 16-bit draw and the trial's
    /// check value: payload bits masked, check-region bits gathered from
    /// `x` by the precomputed affine span (zero-width for payload-only
    /// symbols — no branch).
    #[inline]
    fn content(&self, sym: u32, raw: u16, x: u64) -> u16 {
        let s = sym as usize;
        debug_assert!(s < self.check_info.len());
        // SAFETY: private fn; every caller passes a symbol < n — the quad
        // divider's verified decode domain (stage 1) or a fused-table
        // entry, which the kernel builds from symbol indices (walk).
        let (info, pmask) = unsafe {
            (
                *self.check_info.get_unchecked(s),
                *self.payload_masks.get_unchecked(s),
            )
        };
        let part = (((x >> (info >> 24)) as u16) & info as u16) << ((info >> 16) & 0xFF);
        (raw & pmask) | part
    }

    /// Decodes one trial's draw columns into its resolved strikes:
    /// `(sym0, sym1, pat0, pat1, content0, content1)` — patterns with the
    /// `1 +` nonzero offset applied, contents with check bits in place.
    #[inline]
    fn decode(&self, quad: u32, cnt: u32, x: u64) -> (u32, u32, u32, u32, u16, u16) {
        let (qp, sp) = self.quad_div.divmod(quad);
        let (a, r) = self.sym_div.divmod(sp);
        let b = r + (r >= a) as u32;
        let (ph, pl) = self.pat_div.divmod(qp);
        let c0 = self.content(a, cnt as u16, x);
        let c1 = self.content(b, (cnt >> 16) as u16, x);
        (a, b, 1 + ph, 1 + pl, c0, c1)
    }

    /// Runs one engine block of `len` trials through the staged lanes.
    ///
    /// The four pre-filled draw columns are exactly those of
    /// [`fastpath::msed_trial_k2_cols`]: the quad-packed
    /// symbols-and-patterns draw, two raw 16-bit contents per trial, the
    /// per-trial check value, and the raw content bits of a potential
    /// outside-strike correction target. No live randomness — outcomes are
    /// a pure function of the columns. `sink` receives `(outcome, count)`
    /// batches in an unspecified order (tallies are associative; the
    /// bulk-Detected majority arrives as one batch).
    #[allow(clippy::too_many_arguments)]
    pub fn run_block(
        &self,
        buf: &mut LaneBuffers,
        len: usize,
        quad_col: &[u32],
        cnt_col: &[u32],
        x_col: &[u32],
        extra_col: &[u32],
        mut sink: impl FnMut(TrialOutcome, u64),
    ) {
        assert!(
            quad_col.len() == len
                && cnt_col.len() == len
                && x_col.len() == len
                && extra_col.len() == len
        );
        grow(&mut buf.rems, len);
        grow(&mut buf.packed, len);
        grow(&mut buf.exceptional, len);

        // Stage 1: decode + fold + probe + compact, one fused branchless
        // pass (the AVX2 build splits it to feed the vector fold).
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let n_exc = if self.use_avx2 {
            self.stage1_avx2(buf, len, quad_col, cnt_col, x_col);
            compact(buf, len)
        } else {
            self.stage1_portable(buf, len, quad_col, cnt_col, x_col)
        };
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        let n_exc = self.stage1_portable(buf, len, quad_col, cnt_col, x_col);

        // The bulk majority (~88%) is Detected: one batched tally.
        sink(TrialOutcome::Detected, (len - n_exc) as u64);

        // Stage 3: the exceptional walk. Strikes are re-derived from the
        // draw columns — a handful of ALU ops on ~12% of trials beats
        // storing six decoded columns for all of them.
        for &t in &buf.exceptional[..n_exc] {
            let t = t as usize;
            let x = x_col[t] as u64;
            let (s0, s1, p0, p1, c0, c1) = self.decode(quad_col[t], cnt_col[t], x);
            let (p0, p1) = (p0 as u16, p1 as u16);
            if buf.rems[t] == 0 {
                // Zero syndrome: silent — and truly intact only when both
                // patterns sit entirely in check bits.
                let intact = p0 & self.payload_masks[s0 as usize] == 0
                    && p1 & self.payload_masks[s1 as usize] == 0;
                sink(
                    if intact {
                        TrialOutcome::CleanIntact
                    } else {
                        TrialOutcome::CleanCorrupted
                    },
                    1,
                );
                continue;
            }
            // Compaction keeps only `packed != NO_ENTRY` past this point: a
            // correction candidate.
            let packed = buf.packed[t];
            let symbol = packed & 0xFFF;
            let (original, injected, other_clean) = if s0 == symbol {
                (c0, p0, p1 & self.payload_masks[s1 as usize] == 0)
            } else if s1 == symbol {
                (c1, p1, p0 & self.payload_masks[s0 as usize] == 0)
            } else {
                // Correction target outside the strikes: its content comes
                // from the pre-drawn extra column — still no live draw.
                let c = self.content(symbol, extra_col[t] as u16, x);
                let clean = p0 & self.payload_masks[s0 as usize] == 0
                    && p1 & self.payload_masks[s1 as usize] == 0;
                (c, 0, clean)
            };
            let corrected =
                self.transitions[(packed >> 12) as usize + (original ^ injected) as usize];
            if corrected == SyndromeKernel::NO_TRANSITION {
                sink(TrialOutcome::Detected, 1);
                continue;
            }
            let payload_restored =
                (corrected ^ original) & self.payload_masks[symbol as usize] == 0 && other_clean;
            sink(
                if payload_restored {
                    TrialOutcome::CorrectedRight
                } else {
                    TrialOutcome::Miscorrected
                },
                1,
            );
        }
    }

    /// The fused portable stage 1: per lane, decode the draws, gather the
    /// four residues, reduce the syndrome branchlessly (`x.min(x − m)`
    /// compiles to a cmov — an `if x ≥ m` on data-random values
    /// mispredicts half the time), probe the fused ELC table, and append
    /// exceptional indices branch-free. Consecutive lanes are independent,
    /// so the loads pipeline. Returns the exceptional count.
    fn stage1_portable(
        &self,
        buf: &mut LaneBuffers,
        len: usize,
        quad_col: &[u32],
        cnt_col: &[u32],
        x_col: &[u32],
    ) -> usize {
        let (m, w) = (self.m, self.width);
        let mut n_exc = 0usize;
        for t in 0..len {
            let (a, b, p0, p1, c0, c1) = self.decode(quad_col[t], cnt_col[t], x_col[t] as u64);
            let base0 = (a << w) as usize;
            let base1 = (b << w) as usize;
            // SAFETY: every index is bounded by construction — `a, b < n`
            // (the quad divider's verified domain), contents and patterns
            // never leave the width mask, so `base + idx < n·2^w =
            // residues.len()`; `rem < m = elc_fused.len()` after the
            // reductions.
            let (before0, after0, before1, after1) = unsafe {
                (
                    *self.residues.get_unchecked(base0 + c0 as usize),
                    *self
                        .residues
                        .get_unchecked(base0 + (c0 as u32 ^ p0) as usize),
                    *self.residues.get_unchecked(base1 + c1 as usize),
                    *self
                        .residues
                        .get_unchecked(base1 + (c1 as u32 ^ p1) as usize),
                )
            };
            // Each delta ∈ [0, 2m): when ≥ m the wrapped subtraction is
            // the smaller value; when < m it wraps above 2^63 and loses
            // `min`.
            let d0 = after0 + (m - before0);
            let d0 = d0.min(d0.wrapping_sub(m));
            let d1 = after1 + (m - before1);
            let d1 = d1.min(d1.wrapping_sub(m));
            let rem = d0 + d1;
            let rem = rem.min(rem.wrapping_sub(m));
            buf.rems[t] = rem;
            // SAFETY: rem < m = elc_fused.len().
            let packed = unsafe { *self.elc_fused.get_unchecked(rem as usize) };
            buf.packed[t] = packed;
            // Branch-free conditional append: zero syndrome or a
            // correction candidate goes to the walk.
            buf.exceptional[n_exc] = t as u32;
            n_exc += ((rem == 0) | (packed != SyndromeKernel::NO_ENTRY)) as usize;
        }
        n_exc
    }

    /// The AVX2 split pipeline behind the `simd` feature: a decode pass
    /// materializes the strike columns, `vpgatherdq` folds four lanes per
    /// iteration, and a probe pass fills the fused-table column.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn stage1_avx2(
        &self,
        buf: &mut LaneBuffers,
        len: usize,
        quad_col: &[u32],
        cnt_col: &[u32],
        x_col: &[u32],
    ) {
        grow(&mut buf.syms, 2 * len);
        grow(&mut buf.pats, 2 * len);
        grow(&mut buf.cnts, 2 * len);
        {
            let (sym0, sym1) = buf.syms.split_at_mut(len);
            let (pat0, pat1) = buf.pats.split_at_mut(len);
            let (cnt0, cnt1) = buf.cnts.split_at_mut(len);
            for t in 0..len {
                let (a, b, p0, p1, c0, c1) = self.decode(quad_col[t], cnt_col[t], x_col[t] as u64);
                sym0[t] = a;
                sym1[t] = b;
                pat0[t] = p0;
                pat1[t] = p1;
                cnt0[t] = c0 as u32;
                cnt1[t] = c1 as u32;
            }
        }
        for i in 0..2 {
            // SAFETY: AVX2 confirmed at runtime; every index is
            // `(sym << width) + content` with `sym < n`,
            // `content`/`content ^ pat` ≤ width mask — in bounds by
            // construction.
            unsafe {
                simd_x86::fold_column_avx2(
                    self.residues,
                    self.m,
                    self.width,
                    &buf.syms[i * len..(i + 1) * len],
                    &buf.pats[i * len..(i + 1) * len],
                    &buf.cnts[i * len..(i + 1) * len],
                    &mut buf.rems[..len],
                    i == 0,
                );
            }
        }
        for (p, &rem) in buf.packed[..len].iter_mut().zip(&buf.rems[..len]) {
            *p = self.elc_fused[rem as usize];
        }
    }

    /// Portable single-column fold, kept as the bit-exactness yardstick
    /// for the AVX2 fold (`simd_parity`): one strike column's residue
    /// deltas folded into every lane's syndrome — written outright when
    /// `init`, accumulated modularly otherwise.
    #[cfg(any(test, all(feature = "simd", target_arch = "x86_64")))]
    #[allow(dead_code)]
    fn fold_column(&self, syms: &[u32], pats: &[u32], cnts: &[u32], rems: &mut [u64], init: bool) {
        let (m, w) = (self.m, self.width);
        let len = rems.len();
        assert!(syms.len() == len && pats.len() == len && cnts.len() == len);
        for t in 0..len {
            let base = (syms[t] << w) as usize;
            let content = cnts[t];
            let before = self.residues[base + content as usize];
            let after = self.residues[base + (content ^ pats[t]) as usize];
            let delta = after + (m - before);
            let delta = delta.min(delta.wrapping_sub(m));
            if init {
                rems[t] = delta;
            } else {
                let next = rems[t] + delta;
                rems[t] = next.min(next.wrapping_sub(m));
            }
        }
    }
}

/// Whether the AVX2 specialization is compiled in *and* the host supports
/// it. Always false without the `simd` cargo feature — the fused portable
/// pass is the only stage-1 path then.
fn avx2_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// AVX2 stage-1 fold: four lanes per iteration, residues fetched with
/// `vpgatherdq`. Opt-in via the `simd` cargo feature and runtime-gated on
/// host support; bit-identical to [`LaneKernel::fold_column`] (asserted by
/// the `simd_parity` test below and the feature-matrix CI equivalence
/// runs).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd_x86 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime. Slices must all
    /// share one length; every `(sym << width) + content` and
    /// `(sym << width) + (content ^ pat)` index must be in bounds for
    /// `residues`. With `init` the syndrome column is written outright
    /// (first strike); otherwise it accumulates modularly.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fold_column_avx2(
        residues: &[u64],
        m: u64,
        width: u32,
        syms: &[u32],
        pats: &[u32],
        cnts: &[u32],
        rems: &mut [u64],
        init: bool,
    ) {
        let len = rems.len();
        debug_assert!(syms.len() == len && pats.len() == len && cnts.len() == len);
        let shift = _mm_cvtsi32_si128(width as i32);
        let mvec = _mm256_set1_epi64x(m as i64);
        // Unsigned `x ≥ m` via signed compare is sound: every operand is
        // `< 2m < 2^33`, far below the sign bit.
        let mfence = _mm256_set1_epi64x((m - 1) as i64);
        let table = residues.as_ptr() as *const i64;
        let chunks = len / 4;
        for c in 0..chunks {
            let o = c * 4;
            let sym = _mm_loadu_si128(syms.as_ptr().add(o) as *const __m128i);
            let pat = _mm_loadu_si128(pats.as_ptr().add(o) as *const __m128i);
            let content = _mm_loadu_si128(cnts.as_ptr().add(o) as *const __m128i);
            let base = _mm_sll_epi32(sym, shift);
            let idx_before = _mm_add_epi32(base, content);
            let idx_after = _mm_add_epi32(base, _mm_xor_si128(content, pat));
            let before = _mm256_i32gather_epi64::<8>(table, idx_before);
            let after = _mm256_i32gather_epi64::<8>(table, idx_after);
            // delta = after + (m − before), conditionally reduced.
            let delta = _mm256_add_epi64(after, _mm256_sub_epi64(mvec, before));
            let over = _mm256_cmpgt_epi64(delta, mfence);
            let delta = _mm256_sub_epi64(delta, _mm256_and_si256(over, mvec));
            let next = if init {
                delta
            } else {
                let rem = _mm256_loadu_si256(rems.as_ptr().add(o) as *const __m256i);
                let next = _mm256_add_epi64(rem, delta);
                let over = _mm256_cmpgt_epi64(next, mfence);
                _mm256_sub_epi64(next, _mm256_and_si256(over, mvec))
            };
            _mm256_storeu_si256(rems.as_mut_ptr().add(o) as *mut __m256i, next);
        }
        // Scalar tail (< 4 lanes), identical arithmetic.
        for t in chunks * 4..len {
            let base = (syms[t] << width) as usize;
            let before = residues[base + cnts[t] as usize];
            let after = residues[base + (cnts[t] ^ pats[t]) as usize];
            let mut delta = after + (m - before);
            if delta >= m {
                delta -= m;
            }
            let next = if init { delta } else { rems[t] + delta };
            rems[t] = next.min(next.wrapping_sub(m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Bounded32;
    use crate::Rng;
    use muse_core::presets;

    /// The multiply-shift divider agrees with hardware division over its
    /// whole verified domain — exhaustively, including the large quad-draw
    /// domains of the real presets (construction's analytic bound is what
    /// this pins down).
    #[test]
    fn magic_div_exact() {
        for (div, count) in [
            (35u32, 36u32),
            (15, 15),
            (255, 255),
            (9, 67),
            (1, 5),
            (1260, 225), // muse_144_132 quad split
            (90, 65025), // muse_80_70 quad split (w = 8)
            (4422, 225), // muse_268_256 quad split
        ] {
            let magic = MagicDiv::new(div, count).expect("domain verifiable");
            for d in 0..div.saturating_mul(count) {
                assert_eq!(magic.divmod(d), (d / div, d % div), "{d}/{div}");
            }
        }
        assert!(MagicDiv::new(0, 5).is_none(), "zero divisor");
        assert!(
            MagicDiv::new(1 << 16, 1 << 16).is_none(),
            "domain past the analytic exactness bound"
        );
        assert!(
            MagicDiv::new(1260, 65025).is_none(),
            "36-symbol 8-bit quad split exceeds the provable domain — \
             that geometry takes the scalar fallback"
        );
    }

    /// The packed affine check-span constants reproduce
    /// `apply_check_bits` exactly on every affine preset.
    #[test]
    fn affine_content_matches_apply_check_bits() {
        for code in [
            presets::muse_144_132(),
            presets::muse_144_128(),
            presets::muse_80_69(),
            presets::muse_80_70(),
            presets::muse_268_256(),
        ] {
            let kernel = code.kernel().expect("preset supports the kernel");
            let Some(lanes) = LaneKernel::new(kernel) else {
                continue;
            };
            let mut state = 0xA11E_5EEDu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for sym in 0..kernel.num_symbols() as u32 {
                for _ in 0..64 {
                    let raw = next() as u16;
                    let x = next() % kernel.modulus();
                    let expect = if kernel.needs_check_value(sym as usize) {
                        kernel.apply_check_bits(
                            sym as usize,
                            raw & kernel.payload_mask(sym as usize),
                            x,
                        )
                    } else {
                        raw & kernel.width_mask(sym as usize)
                    };
                    assert_eq!(lanes.content(sym, raw, x), expect, "symbol {sym}");
                }
            }
        }
    }

    /// Scattered (interleaved-map) check spans refuse the lane kernel —
    /// those layouts classify through the same-stream scalar oracle.
    #[test]
    fn interleaved_layouts_fall_back() {
        let code = presets::muse_80_67();
        let Some(kernel) = code.kernel() else {
            return;
        };
        assert!(
            LaneKernel::new(kernel).is_none(),
            "{} should defer to the scalar path",
            code.name()
        );
    }

    /// The portable fold matches per-lane scalar kernel calls exactly.
    #[test]
    fn fold_column_matches_flip_delta() {
        let code = presets::muse_144_132();
        let kernel = code.kernel().expect("preset supports the kernel");
        let lanes = LaneKernel::new(kernel).expect("uniform widths");
        let n = kernel.num_symbols() as u32;
        let wmask = ((1u32 << lanes.width) - 1) as u64;
        let mut state = 0x1357_9BDFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let len = 257;
        let syms: Vec<u32> = (0..len).map(|_| (next() % n as u64) as u32).collect();
        let pats: Vec<u32> = (0..len).map(|_| 1 + (next() % wmask) as u32).collect();
        let cnts: Vec<u32> = (0..len).map(|_| (next() & wmask) as u32).collect();
        let mut rems = vec![0u64; len];
        lanes.fold_column(&syms, &pats, &cnts, &mut rems, true);
        for t in 0..len {
            let expected = kernel.flip_delta(syms[t] as usize, cnts[t] as u16, pats[t] as u16);
            assert_eq!(rems[t], expected, "lane {t}");
        }
        // A second fold accumulates modularly.
        let snapshot = rems.clone();
        lanes.fold_column(&syms, &pats, &cnts, &mut rems, false);
        for t in 0..len {
            assert_eq!(rems[t], kernel.add_mod(snapshot[t], snapshot[t]));
        }
    }

    /// With the `simd` feature on an AVX2 host, the vector fold must be
    /// bit-identical to the portable one.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn simd_parity() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        for code in [presets::muse_144_132(), presets::muse_268_256()] {
            let kernel = code.kernel().expect("preset supports the kernel");
            let lanes = LaneKernel::new(kernel).expect("uniform widths");
            let n = kernel.num_symbols() as u32;
            let wmask = ((1u32 << lanes.width) - 1) as u64;
            let mut state = 0xFEED_F00Du64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            // Deliberately non-multiple-of-4 length to cover the tail.
            let len = 1023;
            let syms: Vec<u32> = (0..len).map(|_| (next() % n as u64) as u32).collect();
            let pats: Vec<u32> = (0..len).map(|_| 1 + (next() % wmask) as u32).collect();
            let cnts: Vec<u32> = (0..len).map(|_| (next() & wmask) as u32).collect();
            for init in [true, false] {
                let mut scalar = vec![7u64; len];
                let mut vector = vec![7u64; len];
                lanes.fold_column(&syms, &pats, &cnts, &mut scalar, init);
                unsafe {
                    simd_x86::fold_column_avx2(
                        lanes.residues,
                        lanes.m,
                        lanes.width,
                        &syms,
                        &pats,
                        &cnts,
                        &mut vector,
                        init,
                    );
                }
                assert_eq!(scalar, vector, "{} init={init}", code.name());
            }
        }
    }

    /// A full lane block agrees trial-for-trial with the scalar columnar
    /// oracle on identical draw columns (the whole-simulation counterpart
    /// lives in `tests/lane_equivalence.rs`).
    #[test]
    fn run_block_matches_scalar_oracle() {
        use crate::fastpath::msed_trial_k2_cols;
        for code in [
            presets::muse_144_132(),
            presets::muse_144_128(),
            presets::muse_80_70(),
        ] {
            let kernel = code.kernel().expect("preset supports the kernel");
            let lanes = LaneKernel::new(kernel).expect("uniform widths");
            let n = kernel.num_symbols() as u32;
            let pb = (1u32 << kernel.symbol_bits(0)) - 1;
            let len = 777; // deliberately not the engine block size
            let mut rng = Rng::seeded(0xB10C);
            let mut quad_col = vec![0u32; len];
            let mut cnt_col = vec![0u32; len];
            let mut x_col = vec![0u32; len];
            let mut extra_col = vec![0u32; len];
            Bounded32::new(n * (n - 1) * pb * pb).fill(&mut rng, &mut quad_col);
            rng.fill_u32s(&mut cnt_col);
            Bounded32::new(kernel.modulus() as u32).fill(&mut rng, &mut x_col);
            rng.fill_u32s(&mut extra_col);
            let mut lane_tally = [0u64; 5];
            let mut buf = LaneBuffers::default();
            lanes.run_block(
                &mut buf,
                len,
                &quad_col,
                &cnt_col,
                &x_col,
                &extra_col,
                |o, k| lane_tally[o as usize] += k,
            );
            let mut scalar_tally = [0u64; 5];
            for t in 0..len {
                let (o, _) = msed_trial_k2_cols(
                    kernel,
                    quad_col[t],
                    cnt_col[t],
                    x_col[t] as u64,
                    extra_col[t],
                );
                scalar_tally[o as usize] += 1;
            }
            assert_eq!(lane_tally, scalar_tally, "{}", code.name());
        }
    }
}
