//! Deterministic PRNG for the Monte-Carlo experiments.
//!
//! An in-tree xoshiro256++ keeps every experiment bit-reproducible across
//! library versions (DESIGN.md §3.5); `rand` remains available for
//! non-experiment conveniences.

/// xoshiro256++ PRNG, seeded through SplitMix64.
///
/// # Examples
///
/// ```
/// use muse_faultsim::Rng;
///
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so any
    /// seed — including 0 — yields a good state).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Counter-based stream derivation: the generator for `trial` under
    /// `seed`.
    ///
    /// Each trial index gets its own decorrelated stream, so a simulation
    /// that processes trials in any order — or splits them across any
    /// number of threads — produces bit-identical results.
    ///
    /// The state is expanded by four *independent* SplitMix64 finalizer
    /// chains over well-separated offsets of the mixed `(seed, trial)`
    /// pair. Unlike the sequential expansion in [`Self::seeded`] the four
    /// chains have no data dependency on each other, so they overlap in
    /// the pipeline — this constructor runs once per Monte-Carlo trial.
    pub fn for_trial(seed: u64, trial: u64) -> Self {
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Domain-separate from `seeded`: without the extra finalizer,
        // trial 0's state would reproduce `seeded(seed)` exactly (the four
        // offsets below are 1..4 SplitMix increments, the same expansion
        // `seeded` performs).
        let base = mix(seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            state: [
                mix(base.wrapping_add(0x9E37_79B9_7F4A_7C15)),
                mix(base.wrapping_add(0x3C6E_F372_FE94_F82A)),
                mix(base.wrapping_add(0xDAA6_6D2C_7DDF_4B3F)),
                mix(base.wrapping_add(0x78DD_E6A5_FD29_A654)),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)` (Lemire multiply-shift with rejection,
    /// bias-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[1, bound)` — a random *nonzero* corruption pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 2`.
    pub fn nonzero_below(&mut self, bound: u64) -> u64 {
        assert!(bound >= 2, "no nonzero values below {bound}");
        1 + self.below(bound - 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// `k` distinct indices drawn uniformly from `[0, n)` (partial
    /// Fisher-Yates), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_k(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seeded(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seeded(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn nonzero_below_never_zero() {
        let mut rng = Rng::seeded(2);
        for _ in 0..1000 {
            let v = rng.nonzero_below(16);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn choose_k_distinct() {
        let mut rng = Rng::seeded(3);
        for _ in 0..200 {
            let mut picks = rng.choose_k(36, 5);
            picks.sort_unstable();
            picks.dedup();
            assert_eq!(picks.len(), 5);
            assert!(picks.iter().all(|&p| p < 36));
        }
    }

    #[test]
    fn choose_all_is_permutation() {
        let mut rng = Rng::seeded(4);
        let mut picks = rng.choose_k(8, 8);
        picks.sort_unstable();
        assert_eq!(picks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seeded(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Rng::seeded(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn trial_zero_is_not_the_seeded_stream() {
        // Domain separation: engine trial 0 must not replay Rng::seeded's
        // stream for the same seed (cross-checks against seeded-based
        // references would silently correlate).
        for seed in [0u64, 7, 0x4D53_4544] {
            let mut trial0 = Rng::for_trial(seed, 0);
            let mut serial = Rng::seeded(seed);
            assert_ne!(trial0.next_u64(), serial.next_u64(), "seed {seed}");
        }
    }

    #[test]
    fn trial_streams_are_deterministic_and_distinct() {
        let mut a = Rng::for_trial(7, 123);
        let mut b = Rng::for_trial(7, 123);
        let mut c = Rng::for_trial(7, 124);
        let mut d = Rng::for_trial(8, 123);
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, c.next_u64());
            assert_ne!(x, d.next_u64());
        }
    }
}
