//! Deterministic PRNG for the Monte-Carlo experiments.
//!
//! An in-tree xoshiro256++ keeps every experiment bit-reproducible across
//! library versions (DESIGN.md §3.5); `rand` remains available for
//! non-experiment conveniences.

/// xoshiro256++ PRNG, seeded through SplitMix64.
///
/// # Examples
///
/// ```
/// use muse_faultsim::Rng;
///
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// assert!(a.below(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so any
    /// seed — including 0 — yields a good state).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Counter-based stream derivation: the generator for `trial` under
    /// `seed`.
    ///
    /// Each trial index gets its own decorrelated stream, so a simulation
    /// that processes trials in any order — or splits them across any
    /// number of threads — produces bit-identical results.
    ///
    /// The state is expanded by four *independent* SplitMix64 finalizer
    /// chains over well-separated offsets of the mixed `(seed, trial)`
    /// pair. Unlike the sequential expansion in [`Self::seeded`] the four
    /// chains have no data dependency on each other, so they overlap in
    /// the pipeline — this constructor runs once per Monte-Carlo trial.
    pub fn for_trial(seed: u64, trial: u64) -> Self {
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Domain-separate from `seeded`: without the extra finalizer,
        // trial 0's state would reproduce `seeded(seed)` exactly (the four
        // offsets below are 1..4 SplitMix increments, the same expansion
        // `seeded` performs).
        let base = mix(seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            state: [
                mix(base.wrapping_add(0x9E37_79B9_7F4A_7C15)),
                mix(base.wrapping_add(0x3C6E_F372_FE94_F82A)),
                mix(base.wrapping_add(0xDAA6_6D2C_7DDF_4B3F)),
                mix(base.wrapping_add(0x78DD_E6A5_FD29_A654)),
            ],
        }
    }

    /// Counter-based *two-dimensional* stream derivation: the generator for
    /// `(lane, step)` under `seed` — e.g. DIMM `lane` at epoch `step` in
    /// the fleet-lifetime simulator.
    ///
    /// Every cell of the grid gets its own decorrelated stream, so a
    /// simulation that walks lanes and steps in any order — or splits lanes
    /// across any number of threads — produces bit-identical results. The
    /// lane axis is folded through its own SplitMix64 finalizer before the
    /// step derivation, so `for_cell(s, a, b)` and `for_cell(s, b, a)`
    /// differ, and lane 0 does not collapse onto [`Self::for_trial`].
    pub fn for_cell(seed: u64, lane: u64, step: u64) -> Self {
        let mut z = lane.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xCE11_CE11_CE11_CE11;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::for_trial(seed ^ z ^ (z >> 31), step)
    }

    /// Counter-based *shard-supervision* stream derivation: the generator
    /// for `(shard, attempt)` under `seed` — e.g. the fault-injection
    /// decisions of shard `shard`'s `attempt`-th execution in the
    /// fleet-lifetime sharded runner.
    ///
    /// Supervision draws (kill-this-attempt?, completion delays) must be a
    /// pure function of `(seed, shard, attempt)` so injected failures
    /// reproduce exactly across reruns and resumes, and must never overlap
    /// the simulation's own [`Self::for_cell`] streams (a fault plan
    /// sharing the fleet seed must not perturb tallies). The shard axis is
    /// therefore salted into its own domain before the 2-D derivation.
    pub fn for_shard(seed: u64, shard: u64, attempt: u64) -> Self {
        Self::for_cell(seed ^ 0x5AAD_5AAD_5AAD_5AAD, shard, attempt)
    }

    /// Counter-based *importance-bias* stream derivation: the generator
    /// for the biasing decisions of `(lane, step)` under `seed` — e.g. the
    /// extra rate-inflated fault arrivals of DIMM `lane` at epoch `step`
    /// in the fleet-lifetime importance sampler.
    ///
    /// A biased run reuses the nominal per-cell draws of
    /// [`Self::for_cell`] verbatim and layers its *extra* draws (how many
    /// additional arrivals does the inflated rate contribute?) on this
    /// stream, so the two must never overlap: sharing the fleet seed, the
    /// bias decisions cannot perturb the nominal sample path, and a bias
    /// factor of 1.0 consumes nothing here — reproducing the naive run
    /// bit-identically. The cell domain is therefore salted before the
    /// 2-D derivation.
    pub fn for_bias(seed: u64, lane: u64, step: u64) -> Self {
        Self::for_cell(seed ^ 0xB1A5_B1A5_B1A5_B1A5, lane, step)
    }

    /// Counter-based *block* stream derivation: the generator for trial
    /// block `block` under `seed`.
    ///
    /// The blocked engine ([`SimEngine::run_blocked`](crate::SimEngine))
    /// amortizes one generator across a fixed-size block of trials instead
    /// of constructing a fresh state per trial. Block boundaries are a
    /// constant of the determinism contract, so results stay bit-identical
    /// at any thread count; the stream is domain-separated from both
    /// [`Self::seeded`] and [`Self::for_trial`] (a blocked simulator and a
    /// per-trial simulator sharing a seed never correlate).
    pub fn for_block(seed: u64, block: u64) -> Self {
        // Salt the trial-index domain with a distinct constant so
        // for_block(s, b) != for_trial(s, b).
        Self::for_trial(seed ^ 0xB10C_B10C_B10C_B10C, block)
    }

    /// Fills `out` with consecutive [`Self::next_u64`] draws.
    ///
    /// The batched form keeps the four state words in registers across the
    /// whole fill instead of spilling per call — use it to draw trial
    /// blocks of raw randomness in one go.
    pub fn fill_u64s(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        for slot in out.iter_mut() {
            *slot = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.state = [s0, s1, s2, s3];
    }

    /// Fills `out` with 32-bit halves of consecutive [`Self::next_u64`]
    /// draws, low half first. An odd tail costs a full draw whose high half
    /// is discarded — the mapping from generator steps to slots depends
    /// only on `out.len()`, keeping columnar streams reproducible.
    pub fn fill_u32s(&mut self, out: &mut [u32]) {
        let mut chunks = out.chunks_exact_mut(2);
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        for pair in &mut chunks {
            let raw = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            pair[0] = raw as u32;
            pair[1] = (raw >> 32) as u32;
        }
        self.state = [s0, s1, s2, s3];
        if let [slot] = chunks.into_remainder() {
            *slot = self.next_u64() as u32;
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)` (Lemire multiply-shift with rejection,
    /// bias-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[1, bound)` — a random *nonzero* corruption pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 2`.
    pub fn nonzero_below(&mut self, bound: u64) -> u64 {
        assert!(bound >= 2, "no nonzero values below {bound}");
        1 + self.below(bound - 1)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// `k` distinct indices drawn uniformly from `[0, n)` (partial
    /// Fisher-Yates), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_k(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// The classification backends in `muse-core`/`muse-rs` draw their lazily
/// sampled contents through this trait; the provided combinators mirror
/// [`Rng`]'s own derivations bit-for-bit, so classifying through a backend
/// consumes exactly the stream a hand-rolled loop would.
impl muse_core::Entropy for Rng {
    fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }

    fn fill_u64s(&mut self, out: &mut [u64]) {
        Rng::fill_u64s(self, out)
    }
}

/// Inverse-CDF sampler for a small discrete count distribution, with the
/// cumulative probabilities quantized to the full `u64` range.
///
/// Replaces long runs of per-cell Bernoulli draws with **one** raw draw per
/// aggregate: instead of asking "did cell `i` fault?" 136 times, sample the
/// *number* of faulted cells from its exact binomial CDF and then place
/// that many faults. Build once per configuration (the CDF needs `O(n)`
/// float work), sample per trial with a handful of compares.
///
/// # Examples
///
/// ```
/// use muse_faultsim::{CountCdf, Rng};
///
/// let counts = CountCdf::binomial(136, 1e-3);
/// let mut rng = Rng::seeded(5);
/// let k = counts.sample(rng.next_u64());
/// assert!(k <= 136);
/// ```
#[derive(Debug, Clone)]
pub struct CountCdf {
    /// `thresholds[i]` = `P(count ≤ i)` scaled to `2^64` (saturating); a
    /// raw draw below `thresholds[i]` but not `thresholds[i-1]` samples
    /// count `i`. Trailing counts of cumulative ≈ 1 are truncated.
    thresholds: Vec<u64>,
}

impl CountCdf {
    /// Builds a sampler from cumulative probabilities
    /// `cum[i] = P(count ≤ i)` (non-decreasing, in `[0, 1]`). Draws beyond
    /// the last entry sample `cum.len()` ("more than listed").
    ///
    /// # Panics
    ///
    /// Panics if `cum` is decreasing or leaves `[0, 1]`.
    pub fn from_cumulative(cum: &[f64]) -> Self {
        let mut thresholds = Vec::with_capacity(cum.len());
        let mut prev = 0.0f64;
        for &c in cum {
            assert!((0.0..=1.0).contains(&c) && c >= prev, "bad CDF {cum:?}");
            prev = c;
            let scaled = (c * 2f64.powi(64)).round();
            thresholds.push(if scaled >= 2f64.powi(64) {
                u64::MAX
            } else {
                scaled as u64
            });
        }
        Self { thresholds }
    }

    /// Builds the CDF of `Binomial(n, p)`, truncated once the cumulative
    /// mass is within `2⁻⁶⁴` of 1 (the truncated tail is unsampleable).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn binomial(n: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        if p >= 1.0 {
            // Degenerate: every cell faults (the odds recurrence would NaN).
            let mut cum = vec![0.0; n as usize];
            cum.push(1.0);
            return Self::from_cumulative(&cum);
        }
        let mut cum = Vec::new();
        // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p), seeded at (1−p)^n.
        let mut pmf = (1.0 - p).powi(n as i32);
        let mut total = pmf;
        let odds = p / (1.0 - p);
        for k in 0..=n {
            cum.push(total.min(1.0));
            if total >= 1.0 - 2f64.powi(-64) || k == n {
                break;
            }
            pmf *= (n - k) as f64 / (k + 1) as f64 * odds;
            total += pmf;
        }
        Self::from_cumulative(&cum)
    }

    /// Maps one raw 64-bit draw to a count.
    #[inline]
    pub fn sample(&self, raw: u64) -> u32 {
        for (i, &t) in self.thresholds.iter().enumerate() {
            if raw < t {
                return i as u32;
            }
        }
        self.thresholds.len() as u32
    }

    /// `P(count = 0)` in the sampler's quantized arithmetic, as a raw-draw
    /// threshold (a draw below this samples zero).
    pub fn zero_threshold(&self) -> u64 {
        self.thresholds.first().copied().unwrap_or(0)
    }
}

/// The precomputed-Lemire bounded sampler, shared with the classification
/// backends (defined next to the [`muse_core::Entropy`] trait so both
/// crates draw from one implementation — and one stream).
///
/// [`Rng::below`] recomputes `2^64 mod bound` (a 64-bit division) on every
/// rejection check; a `Bounded32` pays that division once at configuration
/// time and then draws from 32-bit halves, so one raw `u64` usually yields
/// two bounded samples. Build these in a trial plan (once per simulator
/// config), not per trial.
///
/// # Examples
///
/// ```
/// use muse_faultsim::{Bounded32, Rng};
///
/// let mut rng = Rng::seeded(1);
/// let device = Bounded32::new(36);
/// assert!(device.sample(&mut rng) < 36);
///
/// let mut batch = [0u32; 100];
/// device.fill(&mut rng, &mut batch);
/// assert!(batch.iter().all(|&v| v < 36));
/// ```
pub use muse_core::Bounded32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seeded(7);
        let mut b = Rng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seeded(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seeded(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn nonzero_below_never_zero() {
        let mut rng = Rng::seeded(2);
        for _ in 0..1000 {
            let v = rng.nonzero_below(16);
            assert!((1..16).contains(&v));
        }
    }

    #[test]
    fn choose_k_distinct() {
        let mut rng = Rng::seeded(3);
        for _ in 0..200 {
            let mut picks = rng.choose_k(36, 5);
            picks.sort_unstable();
            picks.dedup();
            assert_eq!(picks.len(), 5);
            assert!(picks.iter().all(|&p| p < 36));
        }
    }

    #[test]
    fn choose_all_is_permutation() {
        let mut rng = Rng::seeded(4);
        let mut picks = rng.choose_k(8, 8);
        picks.sort_unstable();
        assert_eq!(picks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seeded(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Rng::seeded(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn trial_zero_is_not_the_seeded_stream() {
        // Domain separation: engine trial 0 must not replay Rng::seeded's
        // stream for the same seed (cross-checks against seeded-based
        // references would silently correlate).
        for seed in [0u64, 7, 0x4D53_4544] {
            let mut trial0 = Rng::for_trial(seed, 0);
            let mut serial = Rng::seeded(seed);
            assert_ne!(trial0.next_u64(), serial.next_u64(), "seed {seed}");
        }
    }

    #[test]
    fn fill_matches_sequential_draws() {
        let mut a = Rng::seeded(11);
        let mut b = Rng::seeded(11);
        let mut buf = [0u64; 67];
        a.fill_u64s(&mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, b.next_u64(), "draw {i}");
        }
        // And the states stay in sync afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn block_streams_are_domain_separated() {
        for seed in [0u64, 7, 0x4D53_4544] {
            let mut block = Rng::for_block(seed, 3);
            let mut trial = Rng::for_trial(seed, 3);
            let mut serial = Rng::seeded(seed);
            let x = block.next_u64();
            assert_ne!(x, trial.next_u64(), "seed {seed}");
            assert_ne!(x, serial.next_u64(), "seed {seed}");
        }
        let mut a = Rng::for_block(5, 9);
        let mut b = Rng::for_block(5, 9);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cell_streams_are_distinct_and_deterministic() {
        let mut a = Rng::for_cell(7, 3, 5);
        let mut b = Rng::for_cell(7, 3, 5);
        let mut swapped = Rng::for_cell(7, 5, 3);
        let mut lane0 = Rng::for_cell(7, 0, 5);
        let mut trial = Rng::for_trial(7, 5);
        let mut block = Rng::for_block(7, 5);
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, swapped.next_u64(), "axes must not commute");
        }
        // Lane 0 is domain-separated from the 1-D derivations.
        let x = lane0.next_u64();
        assert_ne!(x, trial.next_u64());
        assert_ne!(x, block.next_u64());
    }

    #[test]
    fn shard_streams_are_domain_separated() {
        // Supervision streams must not collapse onto the simulation's own
        // derivations for the same seed, and must be deterministic per
        // (shard, attempt).
        let mut a = Rng::for_shard(7, 3, 1);
        let mut b = Rng::for_shard(7, 3, 1);
        let mut cell = Rng::for_cell(7, 3, 1);
        let mut other_attempt = Rng::for_shard(7, 3, 2);
        let mut other_shard = Rng::for_shard(7, 4, 1);
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, cell.next_u64(), "must not overlap for_cell");
            assert_ne!(x, other_attempt.next_u64());
            assert_ne!(x, other_shard.next_u64());
        }
    }

    #[test]
    fn bias_streams_are_domain_separated() {
        // Importance-bias streams must not collapse onto the simulation's
        // per-cell draws (or the shard-supervision domain) for the same
        // seed, and must be deterministic per (lane, step).
        let mut a = Rng::for_bias(7, 3, 1);
        let mut b = Rng::for_bias(7, 3, 1);
        let mut cell = Rng::for_cell(7, 3, 1);
        let mut shard = Rng::for_shard(7, 3, 1);
        let mut other_step = Rng::for_bias(7, 3, 2);
        let mut other_lane = Rng::for_bias(7, 4, 1);
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, cell.next_u64(), "must not overlap for_cell");
            assert_ne!(x, shard.next_u64(), "must not overlap for_shard");
            assert_ne!(x, other_step.next_u64());
            assert_ne!(x, other_lane.next_u64());
        }
    }

    #[test]
    fn count_cdf_matches_bernoulli_statistics() {
        // Binomial(20, 0.3): mean 6, sampled over many draws.
        let cdf = CountCdf::binomial(20, 0.3);
        let mut rng = Rng::seeded(77);
        let mut sum = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = cdf.sample(rng.next_u64());
            assert!(k <= 20);
            sum += k as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn count_cdf_edges() {
        // p = 0: always zero faults; the zero threshold saturates.
        let zero = CountCdf::binomial(136, 0.0);
        assert_eq!(zero.sample(0), 0);
        assert_eq!(zero.sample(u64::MAX - 1), 0);
        assert_eq!(zero.zero_threshold(), u64::MAX);
        // p = 1: always n faults.
        let one = CountCdf::binomial(5, 1.0);
        assert_eq!(one.sample(0), 5);
        assert_eq!(one.zero_threshold(), 0);
        // Explicit three-way split.
        let tri = CountCdf::from_cumulative(&[0.25, 0.75]);
        assert_eq!(tri.sample(0), 0);
        assert_eq!(tri.sample(1 << 63), 1);
        assert_eq!(tri.sample(u64::MAX), 2);
    }

    #[test]
    fn bounded32_range_and_coverage() {
        let pick = Bounded32::new(10);
        assert_eq!(pick.bound(), 10);
        let mut rng = Rng::seeded(21);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[pick.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        let mut batch = [0u32; 300];
        pick.fill(&mut rng, &mut batch);
        assert!(batch.iter().all(|&v| v < 10));
        let mut seen = [false; 10];
        for &v in &batch {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "batch covers all residues");
    }

    #[test]
    fn bounded32_rejection_threshold_is_exact() {
        // The precomputed threshold must equal the one `below` derives:
        // map() accepts exactly when the scaled low half clears it.
        for bound in [1u32, 2, 3, 15, 16, 35, 36, 1000, u32::MAX] {
            let pick = Bounded32::new(bound);
            for half in [0u32, 1, bound - 1, bound, u32::MAX / 2, u32::MAX] {
                let m = half as u64 * bound as u64;
                let expected = (m as u32) >= bound.wrapping_neg() % bound;
                assert_eq!(pick.map(half).is_some(), expected, "b={bound} h={half}");
                if let Some(v) = pick.map(half) {
                    assert!(v < bound);
                    assert_eq!(v, (m >> 32) as u32);
                }
            }
        }
    }

    #[test]
    fn trial_streams_are_deterministic_and_distinct() {
        let mut a = Rng::for_trial(7, 123);
        let mut b = Rng::for_trial(7, 123);
        let mut c = Rng::for_trial(7, 124);
        let mut d = Rng::for_trial(8, 123);
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, c.next_u64());
            assert_ne!(x, d.next_u64());
        }
    }
}
