//! Rowhammer detection with spare-bit hashes (paper Section VI-A).
//!
//! MUSE(80,69) leaves five spare bits per 64-bit word — 40 bits per
//! 64-byte cache line. Storing a keyed 40-bit hash of the line there means
//! a Rowhammer attacker must corrupt data *and* forge the matching hash:
//! a blind flip pattern survives with probability ≈ 2⁻⁴⁰.
//!
//! The paper calls for a cryptographic hash; this module uses SipHash-2-4
//! (keyed, 64-bit output folded to 40 bits) — the standard short-input PRF
//! for exactly this setting.

use muse_core::{Decoded, FastDecode, MuseCode, SyndromeKernel, Word};

use crate::engine::{SimEngine, Tally};

/// Words per cache line (64 bytes / 8-byte words).
pub const WORDS_PER_LINE: usize = 8;

/// Hash width available from 8 × 5 spare bits.
pub const HASH_BITS: u32 = 40;

/// A keyed 40-bit line hash (SipHash-2-4 folded).
#[derive(Debug, Clone, Copy)]
pub struct LineHasher {
    k0: u64,
    k1: u64,
}

impl LineHasher {
    /// Creates a hasher with a 128-bit key.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Hashes a cache line's eight words down to 40 bits.
    pub fn hash(&self, words: &[u64; WORDS_PER_LINE]) -> u64 {
        let mut bytes = [0u8; WORDS_PER_LINE * 8];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        siphash24(self.k0, self.k1, &bytes) & ((1u64 << HASH_BITS) - 1)
    }
}

/// SipHash-2-4 (Aumasson–Bernstein), public-domain reference construction.
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f_6d65_7073_6575u64 ^ k0;
    let mut v1 = 0x646f_7261_6e64_6f6du64 ^ k1;
    let mut v2 = 0x6c79_6765_6e65_7261u64 ^ k0;
    let mut v3 = 0x7465_6462_7974_6573u64 ^ k1;

    let round = |v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64| {
        *v0 = v0.wrapping_add(*v1);
        *v1 = v1.rotate_left(13) ^ *v0;
        *v0 = v0.rotate_left(32);
        *v2 = v2.wrapping_add(*v3);
        *v3 = v3.rotate_left(16) ^ *v2;
        *v0 = v0.wrapping_add(*v3);
        *v3 = v3.rotate_left(21) ^ *v0;
        *v2 = v2.wrapping_add(*v1);
        *v1 = v1.rotate_left(17) ^ *v2;
        *v2 = v2.rotate_left(32);
    };

    let len = data.len();
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        v3 ^= m;
        round(&mut v0, &mut v1, &mut v2, &mut v3);
        round(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
    }
    let mut last = [0u8; 8];
    let rem = chunks.remainder();
    last[..rem.len()].copy_from_slice(rem);
    last[7] = (len & 0xFF) as u8;
    let m = u64::from_le_bytes(last);
    v3 ^= m;
    round(&mut v0, &mut v1, &mut v2, &mut v3);
    round(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= m;
    v2 ^= 0xFF;
    for _ in 0..4 {
        round(&mut v0, &mut v1, &mut v2, &mut v3);
    }
    v0 ^ v1 ^ v2 ^ v3
}

/// A 64-byte cache line stored as eight MUSE codewords whose spare bits
/// carry a 40-bit line hash.
///
/// # Examples
///
/// ```
/// use muse_core::presets;
/// use muse_faultsim::{HashedLine, LineHasher};
///
/// let code = presets::muse_80_69();
/// let hasher = LineHasher::new(7, 11);
/// let line = HashedLine::store(&code, &hasher, [0xAA55; 8]);
///
/// // In-model error: device failure in one word — corrected, hash intact.
/// let mut attacked = line.clone();
/// attacked.flip_storage_bit(0, 17);
/// assert_eq!(attacked.verify(&code, &hasher), Ok([0xAA55; 8]));
/// ```
#[derive(Debug, Clone)]
pub struct HashedLine {
    codewords: [Word; WORDS_PER_LINE],
}

/// Why a hashed-line read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineError {
    /// ECC reported an uncorrectable word.
    Uncorrectable {
        /// Which word failed.
        word: usize,
    },
    /// All words decoded but the line hash did not match — Rowhammer (or
    /// multi-word corruption) detected.
    HashMismatch,
}

impl HashedLine {
    /// Encodes eight data words, splitting the 40-bit line hash across the
    /// spare bits (5 per word).
    pub fn store(code: &MuseCode, hasher: &LineHasher, data: [u64; WORDS_PER_LINE]) -> Self {
        assert!(code.spare_bits() >= 5, "need 5 spare bits per word");
        let hash = hasher.hash(&data);
        let mut codewords = [Word::ZERO; WORDS_PER_LINE];
        for (i, cw) in codewords.iter_mut().enumerate() {
            let slice = (hash >> (5 * i as u32)) & 0x1F;
            *cw = code.encode(&code.pack_metadata(data[i], slice));
        }
        Self { codewords }
    }

    /// Flips one stored bit (`word` ∈ [0,8), `bit` < n).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn flip_storage_bit(&mut self, word: usize, bit: u32) {
        self.codewords[word].toggle_bit(bit);
    }

    /// Applies an arbitrary XOR pattern to one stored word.
    pub fn xor_word(&mut self, word: usize, pattern: Word) {
        self.codewords[word] = self.codewords[word] ^ pattern;
    }

    /// Decodes all eight words and checks the line hash.
    ///
    /// # Errors
    ///
    /// [`LineError::Uncorrectable`] if ECC flags a word,
    /// [`LineError::HashMismatch`] if the reassembled hash disagrees.
    pub fn verify(
        &self,
        code: &MuseCode,
        hasher: &LineHasher,
    ) -> Result<[u64; WORDS_PER_LINE], LineError> {
        let mut data = [0u64; WORDS_PER_LINE];
        let mut hash = 0u64;
        for (i, cw) in self.codewords.iter().enumerate() {
            match code.decode(cw) {
                Decoded::Detected => return Err(LineError::Uncorrectable { word: i }),
                d => {
                    let payload = d.payload().expect("clean or corrected");
                    let (word, meta) = code.unpack_metadata(&payload);
                    data[i] = word;
                    hash |= (meta & 0x1F) << (5 * i as u32);
                }
            }
        }
        if hash == hasher.hash(&data) {
            Ok(data)
        } else {
            Err(LineError::HashMismatch)
        }
    }
}

/// Result of a Rowhammer attack campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackStats {
    /// Attacks stopped by ECC (uncorrectable word).
    pub blocked_by_ecc: u64,
    /// Attacks stopped by the hash check.
    pub blocked_by_hash: u64,
    /// Attacks that corrupted data without detection.
    pub successful: u64,
    /// Flip patterns that left the data intact (harmless).
    pub harmless: u64,
}

impl AttackStats {
    /// Total attacks simulated.
    pub fn total(&self) -> u64 {
        self.blocked_by_ecc + self.blocked_by_hash + self.successful + self.harmless
    }
}

impl Tally for AttackStats {
    fn merge(&mut self, other: Self) {
        self.blocked_by_ecc += other.blocked_by_ecc;
        self.blocked_by_hash += other.blocked_by_hash;
        self.successful += other.successful;
        self.harmless += other.harmless;
    }
}

/// Simulates `trials` Rowhammer episodes: each flips `flips` random stored
/// bits across a hashed line (the attacker cannot target the hash slices
/// separately — they live inside the same codewords).
///
/// Episodes run batched on the [`SimEngine`] (one worker per CPU); results
/// are bit-identical at any thread count — see
/// [`simulate_attacks_threaded`].
pub fn simulate_attacks(
    code: &MuseCode,
    hasher: &LineHasher,
    flips: usize,
    trials: u64,
    seed: u64,
) -> AttackStats {
    simulate_attacks_threaded(code, hasher, flips, trials, seed, 0)
}

/// [`simulate_attacks`] with an explicit worker count (0 ⇒ all CPUs).
///
/// The line hash is content-dependent (SipHash over the real data bytes),
/// so the data words are genuinely materialized — but the ECC step runs in
/// residue space: each of the line's eight codewords is classified through
/// the [`SyndromeKernel`] (check-value fold, per-symbol flip deltas, fused
/// ELC transition) instead of a wide encode/decode, and the read-back
/// payload is reassembled from the flip/correction deltas alone. Draw
/// order, outcomes, and tallies are bit-identical to the wide pipeline,
/// which survives as the fallback for kernel-less codes (pinned by
/// `fast_attacks_match_wide_pipeline` below).
pub fn simulate_attacks_threaded(
    code: &MuseCode,
    hasher: &LineHasher,
    flips: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> AttackStats {
    assert!(code.spare_bits() >= 5, "need 5 spare bits per word");
    let Some(kernel) = code.kernel() else {
        return simulate_attacks_wide(code, hasher, flips, trials, seed, threads);
    };
    let n_bits = code.n_bits();
    SimEngine::new(threads).run_with(
        seed,
        trials,
        || vec![Vec::<(usize, u16)>::new(); WORDS_PER_LINE],
        |_, rng, word_flips, stats: &mut AttackStats| {
            let mut data = [0u64; WORDS_PER_LINE];
            for d in &mut data {
                *d = rng.next_u64();
            }
            let hash = hasher.hash(&data);
            for flips in word_flips.iter_mut() {
                flips.clear();
            }
            for _ in 0..flips {
                let word = rng.below(WORDS_PER_LINE as u64) as usize;
                let bit = rng.below(n_bits as u64) as u32;
                push_flip(code, &mut word_flips[word], bit);
            }
            stats.merge(classify_line_fast(
                code, kernel, hasher, &data, hash, word_flips,
            ));
        },
    )
}

/// Folds one storage-bit flip into a word's per-symbol XOR patterns.
fn push_flip(code: &MuseCode, flips: &mut Vec<(usize, u16)>, bit: u32) {
    let map = code.symbol_map();
    let sym = map.symbol_of_bit(bit);
    let idx = map
        .bits_of(sym)
        .iter()
        .position(|&b| b == bit)
        .expect("bit belongs to its symbol");
    match flips.iter_mut().find(|(s, _)| *s == sym) {
        Some(entry) => entry.1 ^= 1 << idx,
        None => flips.push((sym, 1 << idx)),
    }
}

/// Residue-space read-back of one attacked line: decodes all eight words on
/// the kernel, reassembles data + hash slices from the flip/correction
/// deltas, and verifies the hash — the exact outcome of
/// [`HashedLine::verify`] on the equivalent wide line.
fn classify_line_fast(
    code: &MuseCode,
    kernel: &SyndromeKernel,
    hasher: &LineHasher,
    data: &[u64; WORDS_PER_LINE],
    hash: u64,
    word_flips: &[Vec<(usize, u16)>],
) -> AttackStats {
    let map = code.symbol_map();
    let r_bits = code.r_bits();
    // Toggles the payload bits named by a symbol-content diff.
    let apply_sym_diff = |out: &mut [u64; 5], sym: usize, diff: u16| {
        for (bit_idx, &b) in map.bits_of(sym).iter().enumerate() {
            if diff >> bit_idx & 1 == 1 && b >= r_bits {
                let pb = (b - r_bits) as usize;
                out[pb >> 6] ^= 1u64 << (pb & 63);
            }
        }
    };
    let mut stats = AttackStats::default();
    let mut read_data = [0u64; WORDS_PER_LINE];
    let mut read_hash = 0u64;
    for (i, flips) in word_flips.iter().enumerate() {
        let limbs = code
            .pack_metadata(data[i], (hash >> (5 * i as u32)) & 0x1F)
            .to_limbs();
        let x = kernel.check_value(&limbs);
        let mut rem = 0u64;
        for &(sym, pattern) in flips {
            if pattern != 0 {
                let content = kernel.encoded_content(sym, &limbs, x);
                rem = kernel.add_mod(rem, kernel.flip_delta(sym, content, pattern));
            }
        }
        let mut out = limbs;
        if rem == 0 {
            // Zero syndrome: the word reads back as stored (flips and all).
            for &(sym, pattern) in flips {
                apply_sym_diff(&mut out, sym, pattern);
            }
        } else {
            match kernel.classify(rem) {
                FastDecode::Clean => unreachable!("nonzero remainder"),
                FastDecode::Detected => {
                    stats.blocked_by_ecc += 1;
                    return stats;
                }
                FastDecode::Correct { symbol } => {
                    let content = kernel.encoded_content(symbol, &limbs, x);
                    let injected = flips
                        .iter()
                        .find(|&&(s, _)| s == symbol)
                        .map_or(0, |&(_, p)| p);
                    match kernel.correct(rem, content ^ injected) {
                        None => {
                            stats.blocked_by_ecc += 1;
                            return stats;
                        }
                        Some(corrected) => {
                            for &(sym, pattern) in flips {
                                if sym != symbol {
                                    apply_sym_diff(&mut out, sym, pattern);
                                }
                            }
                            apply_sym_diff(&mut out, symbol, corrected ^ content);
                        }
                    }
                }
            }
        }
        read_data[i] = out[0];
        read_hash |= (out[1] & 0x1F) << (5 * i as u32);
    }
    if read_hash != hasher.hash(&read_data) {
        stats.blocked_by_hash += 1;
    } else if read_data == *data {
        stats.harmless += 1;
    } else {
        stats.successful += 1;
    }
    stats
}

/// The wide-word reference pipeline: encode the line, flip storage bits,
/// decode through [`HashedLine::verify`]. The fallback for kernel-less
/// codes and the property-tested oracle for the residue-space path.
fn simulate_attacks_wide(
    code: &MuseCode,
    hasher: &LineHasher,
    flips: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> AttackStats {
    let n_bits = code.n_bits();
    SimEngine::new(threads).run(seed, trials, |_, rng, stats: &mut AttackStats| {
        let mut data = [0u64; WORDS_PER_LINE];
        for d in &mut data {
            *d = rng.next_u64();
        }
        let mut line = HashedLine::store(code, hasher, data);
        for _ in 0..flips {
            let word = rng.below(WORDS_PER_LINE as u64) as usize;
            let bit = rng.below(n_bits as u64) as u32;
            line.flip_storage_bit(word, bit);
        }
        match line.verify(code, hasher) {
            Err(LineError::Uncorrectable { .. }) => stats.blocked_by_ecc += 1,
            Err(LineError::HashMismatch) => stats.blocked_by_hash += 1,
            Ok(read) if read == data => stats.harmless += 1,
            Ok(_) => stats.successful += 1,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    #[test]
    fn siphash_reference_vector() {
        // The SipHash-2-4 reference test vector (key 0x0F0E...0100, input
        // 0x00..0E) from the SipHash paper.
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let data: Vec<u8> = (0..15).collect();
        assert_eq!(siphash24(k0, k1, &data), 0xa129ca6149be45e5);
    }

    #[test]
    fn hash_is_keyed_and_40_bits() {
        let words = [0x1234u64; 8];
        let h1 = LineHasher::new(1, 2).hash(&words);
        let h2 = LineHasher::new(3, 4).hash(&words);
        assert_ne!(h1, h2);
        assert!(h1 < (1 << 40) && h2 < (1 << 40));
    }

    #[test]
    fn clean_line_roundtrip() {
        let code = presets::muse_80_69();
        let hasher = LineHasher::new(0xAA, 0xBB);
        let data = [0, 1, u64::MAX, 42, 0xDEAD_BEEF, 5, 6, 7];
        let line = HashedLine::store(&code, &hasher, data);
        assert_eq!(line.verify(&code, &hasher), Ok(data));
    }

    #[test]
    fn ecc_heals_in_model_errors_hash_intact() {
        let code = presets::muse_80_69();
        let hasher = LineHasher::new(9, 9);
        let data = [7u64; 8];
        let mut line = HashedLine::store(&code, &hasher, data);
        // Kill an entire device in word 3.
        line.xor_word(3, *code.symbol_map().mask(10));
        assert_eq!(line.verify(&code, &hasher), Ok(data));
    }

    #[test]
    fn valid_codeword_forgery_without_hash_is_caught() {
        // An attacker who replaces a word with a DIFFERENT valid codeword
        // defeats plain ECC (remainder 0) but not the hash.
        let code = presets::muse_80_69();
        let hasher = LineHasher::new(5, 6);
        let data = [3u64; 8];
        let mut line = HashedLine::store(&code, &hasher, data);
        let forged = code.encode(&code.pack_metadata(0x6666, 0));
        line.codewords[2] = forged;
        assert_eq!(line.verify(&code, &hasher), Err(LineError::HashMismatch));
    }

    #[test]
    fn fast_attacks_match_wide_pipeline() {
        // The residue-space ECC step must reproduce the wide pipeline's
        // tallies exactly: same seed, kernel on vs kernel dropped.
        let mut wide_code = presets::muse_80_69();
        wide_code.disable_syndrome_kernel();
        let fast_code = presets::muse_80_69();
        let hasher = LineHasher::new(0xFA57, 0x31DE);
        for (flips, seed) in [(1usize, 7u64), (4, 8), (9, 9), (23, 10)] {
            let fast = simulate_attacks(&fast_code, &hasher, flips, 300, seed);
            let wide = simulate_attacks(&wide_code, &hasher, flips, 300, seed);
            assert_eq!(
                (
                    fast.blocked_by_ecc,
                    fast.blocked_by_hash,
                    fast.successful,
                    fast.harmless
                ),
                (
                    wide.blocked_by_ecc,
                    wide.blocked_by_hash,
                    wide.successful,
                    wide.harmless
                ),
                "flips={flips}"
            );
        }
    }

    #[test]
    fn attack_campaign_never_succeeds_blind() {
        // 2⁻⁴⁰ per attempt: thousands of blind attacks all fail.
        let code = presets::muse_80_69();
        let hasher = LineHasher::new(0x5117, 0x1d3a);
        for flips in [3usize, 8, 17] {
            let stats = simulate_attacks(&code, &hasher, flips, 400, 99);
            assert_eq!(stats.successful, 0, "flips={flips}");
            assert_eq!(stats.total(), 400);
            assert!(stats.blocked_by_ecc + stats.blocked_by_hash > 0);
        }
    }
}
