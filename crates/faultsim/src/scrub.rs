//! Memory scrubbing vs fault accumulation (extension experiment).
//!
//! A single-symbol-correcting code only fails when a *second* device
//! develops a fault in the same codeword before the first is repaired.
//! Patrol scrubbing bounds that window: every `scrub_interval_hours` the
//! scrubber reads, corrects, and rewrites each word, clearing accumulated
//! (transient) single-device damage.
//!
//! The simulation walks time in scrub intervals: faults arrive per device
//! per interval as Bernoulli events with probability
//! `rate_fit × hours / 10⁹`; a word dies when two or more devices carry
//! faults within one interval (the paper's "two DRAMs at the same time"
//! condition, bounded by scrubbing instead of luck).

use muse_core::MuseCode;

use crate::engine::{SimEngine, Tally};

/// Parameters of a scrubbing study.
#[derive(Debug, Clone, Copy)]
pub struct ScrubConfig {
    /// Per-device transient fault rate, FIT (failures / 10⁹ device-hours).
    pub device_fit: f64,
    /// Scrub interval in hours.
    pub scrub_interval_hours: f64,
    /// Total simulated time in hours.
    pub horizon_hours: f64,
    /// Number of codewords tracked (a proxy for a memory region).
    pub words: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        Self {
            device_fit: 50.0,
            scrub_interval_hours: 24.0,
            horizon_hours: 5.0 * 365.0 * 24.0, // five years
            words: 10_000,
            seed: 0x5C2B,
        }
    }
}

/// Result of a scrubbing simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScrubStats {
    /// Words that accumulated ≥2 faulty devices in one interval.
    pub overlap_failures: u64,
    /// Single-device faults healed by scrub passes.
    pub scrubbed_faults: u64,
}

impl Tally for ScrubStats {
    fn merge(&mut self, other: Self) {
        self.overlap_failures += other.overlap_failures;
        self.scrubbed_faults += other.scrubbed_faults;
    }
}

/// Simulates fault accumulation under periodic scrubbing.
///
/// Faults are transient (scrub-repairable); the code's ChipKill correction
/// masks any single faulty device between scrubs, so only same-interval
/// overlaps count as failures.
///
/// Each word's full timeline is one engine trial, batched across workers
/// (bit-identical results at any thread count).
pub fn simulate_scrubbing(code: &MuseCode, config: &ScrubConfig) -> ScrubStats {
    simulate_scrubbing_threaded(code, config, 0)
}

/// [`simulate_scrubbing`] with an explicit worker count (0 ⇒ all CPUs).
///
/// An interval only ever contributes one of three outcomes — no fault, one
/// faulty device (scrubbed), or an overlap (≥ 2) — so instead of `devices`
/// Bernoulli draws per interval, each interval maps one raw `u64` draw
/// through the exact three-way binomial CDF, branchlessly, with the raw
/// draws batch-filled per trial ([`crate::Rng::fill_u64s`]). The full
/// 64-bit draw keeps ~`2⁻⁶⁴` probability resolution: overlap rates at
/// field-realistic FIT inputs are far below `2⁻³²`, so narrower draws
/// would floor exactly the rare events this study measures.
pub fn simulate_scrubbing_threaded(
    code: &MuseCode,
    config: &ScrubConfig,
    threads: usize,
) -> ScrubStats {
    let devices = code.symbol_map().num_symbols();
    let p_fault = (config.device_fit * config.scrub_interval_hours / 1e9).min(1.0);
    let intervals = (config.horizon_hours / config.scrub_interval_hours).ceil() as u64;
    // Cumulative thresholds of P(0 of d) and P(≤1 of d), on the u64 scale.
    let d = devices as f64;
    let p0 = (1.0 - p_fault).powf(d);
    let p1 = d * p_fault * (1.0 - p_fault).powf(d - 1.0);
    let threshold = |p: f64| {
        let scaled = (p * 2f64.powi(64)).round();
        if scaled >= 2f64.powi(64) {
            u64::MAX
        } else {
            scaled as u64
        }
    };
    let t0 = threshold(p0);
    let t1 = threshold((p0 + p1).min(1.0));
    SimEngine::new(threads).run_blocked(
        config.seed,
        config.words,
        || vec![0u64; 256],
        |range, rng, raws, stats: &mut ScrubStats| {
            for _ in range {
                let (mut scrubbed, mut overlap) = (0u64, 0u64);
                let mut remaining = intervals;
                while remaining > 0 {
                    let chunk = remaining.min(raws.len() as u64) as usize;
                    rng.fill_u64s(&mut raws[..chunk]);
                    for &u in &raws[..chunk] {
                        let at_least_one = (u >= t0) as u64;
                        let at_least_two = (u >= t1) as u64;
                        scrubbed += at_least_one - at_least_two;
                        overlap += at_least_two;
                    }
                    remaining -= chunk as u64;
                }
                stats.scrubbed_faults += scrubbed;
                stats.overlap_failures += overlap;
            }
        },
    )
}

/// Closed-form expectation of overlap failures for cross-checking the
/// simulation: per word-interval, `P(≥2 of d) = 1 − (1−p)^d − d·p(1−p)^(d−1)`.
pub fn analytic_overlap_probability(devices: usize, device_fit: f64, interval_hours: f64) -> f64 {
    let p = (device_fit * interval_hours / 1e9).min(1.0);
    let d = devices as f64;
    1.0 - (1.0 - p).powf(d) - d * p * (1.0 - p).powf(d - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    #[test]
    fn shorter_scrub_intervals_reduce_failures() {
        // Accelerated rates so the effect is visible in small runs.
        let code = presets::muse_80_69();
        let base = ScrubConfig {
            device_fit: 2e6, // grossly accelerated for the test
            words: 400,
            horizon_hours: 10_000.0,
            ..ScrubConfig::default()
        };
        let slow = simulate_scrubbing(
            &code,
            &ScrubConfig {
                scrub_interval_hours: 100.0,
                ..base
            },
        );
        let fast = simulate_scrubbing(
            &code,
            &ScrubConfig {
                scrub_interval_hours: 10.0,
                ..base
            },
        );
        assert!(
            fast.overlap_failures < slow.overlap_failures,
            "fast {fast:?} vs slow {slow:?}"
        );
    }

    #[test]
    fn analytic_matches_simulation() {
        let code = presets::muse_144_132();
        let config = ScrubConfig {
            device_fit: 5e6,
            scrub_interval_hours: 50.0,
            horizon_hours: 50_000.0,
            words: 300,
            seed: 9,
        };
        let stats = simulate_scrubbing(&code, &config);
        let intervals = (config.horizon_hours / config.scrub_interval_hours).ceil();
        let expect = analytic_overlap_probability(
            code.symbol_map().num_symbols(),
            config.device_fit,
            config.scrub_interval_hours,
        ) * intervals
            * config.words as f64;
        let measured = stats.overlap_failures as f64;
        assert!(
            measured > expect * 0.7 && measured < expect * 1.3,
            "measured {measured} vs expected {expect}"
        );
    }

    #[test]
    fn realistic_rates_see_no_failures() {
        // At field-realistic FIT rates and daily scrubs, five years of
        // 10k words produce essentially zero overlap failures.
        let code = presets::muse_80_69();
        let stats = simulate_scrubbing(
            &code,
            &ScrubConfig {
                words: 1_000,
                ..ScrubConfig::default()
            },
        );
        assert_eq!(stats.overlap_failures, 0);
    }
}
