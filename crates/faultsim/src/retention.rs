//! DRAM retention-error modelling for the asymmetric-code use case
//! (paper Sections III-C and IV).
//!
//! Retention failures are one-directional: a leaky cell discharges, so a
//! stored charge reads as the *discharged* level — modelled here as 1→0
//! flips (the paper: "without loss of generality, we assume 1→0 errors
//! only"). Refreshing less often saves power but raises the per-cell
//! failure probability; an asymmetric MUSE code like MUSE(80,67) corrects
//! any such pattern confined to one device, letting the system hold the
//! same reliability at a longer refresh interval.

use muse_core::MuseCode;

use crate::engine::{SimEngine, Tally};
use crate::fastpath::{classify, CodewordScratch, HalfDraws, TrialOutcome, TrialPlan};
use crate::rng::CountCdf;

/// Per-cell retention-failure model.
///
/// The probability that a weak cell loses its charge within a refresh
/// interval `t` (ms) follows an exponential tail:
/// `p(t) = weak_fraction · (1 − exp(−max(t − t_nominal, 0) / tau))`.
/// At the nominal 64 ms interval every cell holds (p = 0), matching the
/// observation that retention errors only appear when refresh is relaxed.
#[derive(Debug, Clone, Copy)]
pub struct RetentionModel {
    /// Fraction of cells that are retention-weak (typ. ~1e-6..1e-4).
    pub weak_fraction: f64,
    /// Nominal (safe) refresh interval in ms (DDR4: 64 ms).
    pub nominal_ms: f64,
    /// Tail time-constant in ms.
    pub tau_ms: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        Self {
            weak_fraction: 1e-4,
            nominal_ms: 64.0,
            tau_ms: 512.0,
        }
    }
}

impl RetentionModel {
    /// Per-cell failure probability at refresh interval `t_ms`.
    pub fn cell_failure_probability(&self, t_ms: f64) -> f64 {
        let overtime = (t_ms - self.nominal_ms).max(0.0);
        self.weak_fraction * (1.0 - (-overtime / self.tau_ms).exp())
    }
}

/// Outcome tallies of a retention Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetentionStats {
    /// Words read back with no failing cell.
    pub clean: u64,
    /// Words healed by the asymmetric code.
    pub corrected: u64,
    /// Words with detected-but-uncorrectable loss.
    pub uncorrectable: u64,
    /// Beyond-model (multi-device) losses "corrected" to wrong data.
    pub miscorrected: u64,
    /// Words whose corruption aliased to a zero remainder (truly silent).
    pub silent_corruptions: u64,
}

impl RetentionStats {
    /// Total words simulated.
    pub fn total(&self) -> u64 {
        self.clean
            + self.corrected
            + self.uncorrectable
            + self.miscorrected
            + self.silent_corruptions
    }

    /// Words read back wrong without any flag (miscorrected or silent).
    pub fn undetected_corruptions(&self) -> u64 {
        self.miscorrected + self.silent_corruptions
    }

    /// Uncorrectable-word rate.
    pub fn uber(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.uncorrectable as f64 / self.total() as f64
    }
}

impl Tally for RetentionStats {
    fn merge(&mut self, other: Self) {
        self.clean += other.clean;
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
        self.miscorrected += other.miscorrected;
        self.silent_corruptions += other.silent_corruptions;
    }
}

/// Simulates `words` stored words at refresh interval `t_ms`: every stored
/// 1-bit independently discharges with the model's probability; each word is
/// then decoded.
///
/// Runs on the [`SimEngine`] (one worker per CPU) with residue-space
/// decoding — see [`simulate_retention_threaded`] for explicit thread
/// control. Results are bit-identical at any thread count.
pub fn simulate_retention(
    code: &MuseCode,
    model: &RetentionModel,
    t_ms: f64,
    words: u64,
    seed: u64,
) -> RetentionStats {
    simulate_retention_threaded(code, model, t_ms, words, seed, 0)
}

/// [`simulate_retention`] with an explicit worker count (0 ⇒ all CPUs).
pub fn simulate_retention_threaded(
    code: &MuseCode,
    model: &RetentionModel,
    t_ms: f64,
    words: u64,
    seed: u64,
    threads: usize,
) -> RetentionStats {
    let p = model.cell_failure_probability(t_ms);
    let engine = SimEngine::new(threads);
    let kernel = crate::require_kernel(code, "retention");
    // Per-symbol *candidate* counts: a cell is a leak candidate with
    // probability `p` independent of its stored value; only candidates over
    // stored 1-bits actually flip (`mask & content`). Sampling the count
    // from its binomial CDF and then placing it costs one raw draw for the
    // common zero case, instead of `width` Bernoulli draws per symbol —
    // and symbols without candidates never observe their content, so most
    // trials draw no payload limbs at all.
    let n_sym = kernel.num_symbols();
    let plan = TrialPlan::new(kernel, 1);
    let max_width = (0..n_sym).map(|s| kernel.symbol_bits(s)).max().unwrap_or(0);
    let candidate_counts: Vec<CountCdf> =
        (0..=max_width).map(|w| CountCdf::binomial(w, p)).collect();
    let widths: Vec<u32> = (0..n_sym).map(|s| kernel.symbol_bits(s)).collect();
    engine.run_blocked(
        seed,
        words,
        || CodewordScratch::new(kernel),
        |range, rng, scratch, stats: &mut RetentionStats| {
            for _ in range {
                scratch.begin_trial();
                for sym in 0..n_sym {
                    let k = candidate_counts[widths[sym] as usize].sample(rng.next_u64());
                    if k == 0 {
                        continue;
                    }
                    // k distinct candidate positions within the symbol.
                    let mut halves = HalfDraws::default();
                    let mut mask = 0u16;
                    for _ in 0..k {
                        loop {
                            let bit = plan.pick_bit(rng, &mut halves, sym);
                            if mask & (1 << bit) == 0 {
                                mask |= 1 << bit;
                                break;
                            }
                        }
                    }
                    // A leaked bit is a 1→0 flip: candidates only bite on
                    // stored 1-bits.
                    let pattern = mask & scratch.content(kernel, rng, sym);
                    if pattern != 0 {
                        scratch.injected.push((sym, pattern));
                    }
                }
                if scratch.injected.is_empty() {
                    stats.clean += 1;
                    continue;
                }
                match classify(kernel, scratch, rng) {
                    // Flips confined to check bits read back as the right
                    // payload; a nonzero pattern aliasing to remainder 0
                    // over payload bits is a silent corruption.
                    TrialOutcome::CleanIntact => stats.clean += 1,
                    TrialOutcome::CleanCorrupted => stats.silent_corruptions += 1,
                    TrialOutcome::CorrectedRight => stats.corrected += 1,
                    TrialOutcome::Miscorrected => stats.miscorrected += 1,
                    TrialOutcome::Detected => stats.uncorrectable += 1,
                }
            }
        },
    )
}

/// Relative refresh power at interval `t_ms` versus the nominal interval
/// (refresh power scales with refresh frequency).
pub fn relative_refresh_power(model: &RetentionModel, t_ms: f64) -> f64 {
    model.nominal_ms / t_ms
}

/// One row of a refresh-interval sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Refresh interval in ms.
    pub t_ms: f64,
    /// Per-cell failure probability at this interval.
    pub cell_p: f64,
    /// Measured stats.
    pub stats: RetentionStats,
    /// Refresh power relative to nominal.
    pub refresh_power: f64,
}

/// Sweeps refresh intervals, measuring correction coverage and refresh
/// power (the Section III-C trade-off).
pub fn sweep_refresh_intervals(
    code: &MuseCode,
    model: &RetentionModel,
    intervals_ms: &[f64],
    words: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    intervals_ms
        .iter()
        .enumerate()
        .map(|(i, &t_ms)| SweepPoint {
            t_ms,
            cell_p: model.cell_failure_probability(t_ms),
            stats: simulate_retention(code, model, t_ms, words, seed ^ (i as u64) << 32),
            refresh_power: relative_refresh_power(model, t_ms),
        })
        .collect()
}

/// Word-level uncorrectable probability predicted analytically: at least two
/// devices each losing at least one stored 1-bit (per-word expectation,
/// assuming half the bits store 1s).
pub fn analytic_uncorrectable_probability(code: &MuseCode, cell_p: f64) -> f64 {
    let s = code.symbol_map().bits_of(0).len() as f64;
    // P(device has >= 1 failing stored one) with ~s/2 ones per device.
    let p_dev = 1.0 - (1.0 - cell_p).powf(s / 2.0);
    let n = code.symbol_map().num_symbols() as f64;
    // 1 - P(0 devices) - P(exactly 1 device)
    let p0 = (1.0 - p_dev).powf(n);
    let p1 = n * p_dev * (1.0 - p_dev).powf(n - 1.0);
    (1.0 - p0 - p1).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    #[test]
    fn model_is_zero_at_nominal() {
        let m = RetentionModel::default();
        assert_eq!(m.cell_failure_probability(64.0), 0.0);
        assert_eq!(m.cell_failure_probability(32.0), 0.0);
        assert!(m.cell_failure_probability(256.0) > 0.0);
        // Monotone in t.
        assert!(m.cell_failure_probability(512.0) > m.cell_failure_probability(128.0));
        // Bounded by the weak fraction.
        assert!(m.cell_failure_probability(1e9) <= m.weak_fraction * 1.0001);
    }

    #[test]
    fn nominal_interval_is_error_free() {
        let code = presets::muse_80_67();
        let stats = simulate_retention(&code, &RetentionModel::default(), 64.0, 200, 3);
        assert_eq!(stats.clean, 200);
        assert_eq!(stats.uber(), 0.0);
    }

    #[test]
    fn relaxed_refresh_errors_are_healed() {
        // Crank the weak fraction so errors are common, then verify the
        // asymmetric code corrects all single-device patterns and never
        // corrupts silently.
        let code = presets::muse_80_67();
        let model = RetentionModel {
            weak_fraction: 2e-3,
            ..RetentionModel::default()
        };
        let stats = simulate_retention(&code, &model, 2048.0, 2_000, 7);
        assert!(stats.corrected > 50, "expected many corrected words");
        // Single-device losses always heal; only the rare multi-device
        // coincidences may miscorrect, and nothing slips through silently.
        assert!(stats.undetected_corruptions() * 100 < stats.total());
        assert_eq!(stats.silent_corruptions, 0);
    }

    #[test]
    fn sweep_is_monotone_in_power() {
        let code = presets::muse_80_67();
        let model = RetentionModel::default();
        let points = sweep_refresh_intervals(&code, &model, &[64.0, 128.0, 256.0, 512.0], 100, 11);
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            assert!(pair[1].refresh_power < pair[0].refresh_power);
            assert!(pair[1].cell_p >= pair[0].cell_p);
        }
        assert!((points[0].refresh_power - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_matches_simulation_order_of_magnitude() {
        let code = presets::muse_80_67();
        let model = RetentionModel {
            weak_fraction: 5e-3,
            ..RetentionModel::default()
        };
        let t = 4096.0;
        let cell_p = model.cell_failure_probability(t);
        let analytic = analytic_uncorrectable_probability(&code, cell_p);
        let stats = simulate_retention(&code, &model, t, 4_000, 13);
        let measured = stats.uber();
        assert!(
            measured <= analytic * 4.0 + 0.01 && analytic <= measured * 4.0 + 0.01,
            "analytic {analytic} vs measured {measured}"
        );
    }
}
