//! Parallel Monte-Carlo fault injection for MUSE and Reed-Solomon memory
//! codes.
//!
//! # Architecture
//!
//! All simulators run on a shared three-layer engine:
//!
//! 1. **[`SimEngine`] — batched parallel trial execution.** A run's
//!    `trials` are split into contiguous ranges over scoped worker
//!    threads. In per-trial mode ([`SimEngine::run`]) trial `i` draws
//!    randomness exclusively from the counter-based stream
//!    [`Rng::for_trial`]`(seed, i)`; in blocked mode
//!    ([`SimEngine::run_blocked`]) a fixed 1024-trial block `b` draws from
//!    [`Rng::for_block`]`(seed, b)`, amortizing generator state across the
//!    block. Either way, outcomes are a pure function of the seed and the
//!    fixed trial/block boundaries, and per-worker tallies merge
//!    associatively — **results are bit-identical at any thread count**
//!    (the determinism contract, pinned by `tests/determinism.rs`).
//! 2. **Content-space trial generation.** A trial never materializes a
//!    codeword — or even a payload: it samples only what it observes. The
//!    contents of touched symbols are uniform bits; the check value `X` is
//!    sampled lazily over `[0, m)`; corruption is a short
//!    `(symbol, xor-pattern)` list. Sampling constants (Lemire rejection
//!    thresholds via [`Bounded32`], binomial count CDFs via [`CountCdf`])
//!    are precomputed per configuration, and hot loops bulk-fill whole
//!    blocks of raw draws ([`Rng::fill_u64s`], [`Bounded32::fill`]) and
//!    replay them per trial.
//! 3. **Incremental syndromes.** `muse-core` precomputes per-symbol residue
//!    tables and fused fast-ELC content transitions
//!    ([`muse_core::SyndromeKernel`]) at code construction, so classifying
//!    a MUSE trial is a few table lookups and small modular adds; the
//!    Reed-Solomon baseline has the matching error-domain GF-syndrome path
//!    (`muse_rs::RsMemoryCode::error_syndromes`), and the on-die SEC stack
//!    reduces to flip-position algebra over parity-check columns. Every
//!    wide encode/decode path survives as the reference implementation and
//!    is cross-validated against its fast path by property tests that
//!    reconstruct wide-word trials from the content-space observations.
//!
//! # Simulators
//!
//! * [`muse_msed`] / [`rs_msed`] — the multi-symbol error detection (MSED)
//!   simulator behind the paper's Table IV.
//! * [`simulate_attacks`] — the Section VI-A case study: 40-bit line hashes
//!   in MUSE spare bits vs blind bit-flip attacks. SipHash runs over the
//!   real line bytes (legitimately content-dependent); the ECC step of the
//!   8 codewords per line runs on the residue kernel.
//! * [`simulate_retention`] — the Section III-C asymmetric (1→0)
//!   retention-error model and refresh-interval sweeps.
//! * [`simulate_stack`] — on-die SEC × rank-level MUSE co-design.
//! * [`simulate_scrubbing`] — patrol-scrub interval studies.
//! * [`measure_mode`] / [`project_fit`] — field FIT-rate projection.
//!
//! # Examples
//!
//! ```
//! use muse_core::presets;
//! use muse_faultsim::{muse_msed, MsedConfig};
//!
//! // Reproduce one Table IV cell (reduced trial count for speed):
//! let stats = muse_msed(&presets::muse_144_132(), MsedConfig {
//!     trials: 1_000,
//!     ..MsedConfig::default()
//! });
//! println!("MSED = {:.2}%", stats.detection_rate()); // paper: 86.71%
//!
//! // The same run is reproducible at any worker count:
//! let serial = muse_msed(&presets::muse_144_132(), MsedConfig {
//!     trials: 1_000, threads: 1, ..MsedConfig::default()
//! });
//! assert_eq!(stats, serial);
//! ```

#![deny(missing_docs)]

mod engine;
mod fastpath;
mod fit;
mod lanes;
mod msed;
mod ondie;
mod retention;
mod rng;
mod rowhammer;
mod scrub;

pub use engine::{trials_completed, SimEngine, Tally};

/// The syndrome kernel of `code`, or a panic naming the subsystem — the
/// wide-word fallbacks are retired, so a kernel-less code (outside
/// [`muse_core::SyndromeKernel::supports`]) is a caller error everywhere
/// classification runs in the syndrome domain.
pub(crate) fn require_kernel<'a>(
    code: &'a muse_core::MuseCode,
    what: &str,
) -> &'a muse_core::SyndromeKernel {
    code.kernel().unwrap_or_else(|| {
        panic!(
            "{} carries no syndrome kernel (outside SyndromeKernel::supports); \
             {what} classification runs in the syndrome domain only",
            code.name()
        )
    })
}
pub use fit::{
    measure_mode, measure_mode_threaded, project_fit, FailureMode, FitProjection, ModeOutcome,
};
#[doc(hidden)]
pub use msed::muse_msed_scalar;
pub use msed::{muse_msed, random_payload, rs_msed, MsedConfig, MsedStats, Outcome, RsDetectMode};
pub use ondie::{simulate_stack, simulate_stack_threaded, OndieStats, Stack};
pub use retention::{
    analytic_uncorrectable_probability, relative_refresh_power, simulate_retention,
    simulate_retention_threaded, sweep_refresh_intervals, RetentionModel, RetentionStats,
    SweepPoint,
};
pub use rng::{Bounded32, CountCdf, Rng};
pub use rowhammer::{
    simulate_attacks, simulate_attacks_threaded, AttackStats, HashedLine, LineError, LineHasher,
    HASH_BITS, WORDS_PER_LINE,
};
pub use scrub::{
    analytic_overlap_probability, simulate_scrubbing, simulate_scrubbing_threaded, ScrubConfig,
    ScrubStats,
};
