//! Monte-Carlo fault injection for MUSE and Reed-Solomon memory codes.
//!
//! Four pieces:
//!
//! * [`Rng`] — a deterministic in-tree xoshiro256++ so every experiment is
//!   reproducible bit-for-bit.
//! * [`muse_msed`] / [`rs_msed`] — the multi-symbol error detection (MSED)
//!   simulator behind the paper's Table IV.
//! * [`simulate_attacks`] — the Section VI-A case study: 40-bit line hashes in
//!   MUSE spare bits vs blind bit-flip attacks.
//! * [`simulate_retention`] — the Section III-C asymmetric (1→0) retention-error
//!   model and refresh-interval sweeps.
//!
//! # Examples
//!
//! ```
//! use muse_core::presets;
//! use muse_faultsim::{muse_msed, MsedConfig};
//!
//! // Reproduce one Table IV cell (reduced trial count for speed):
//! let stats = muse_msed(&presets::muse_144_132(), MsedConfig {
//!     trials: 1_000,
//!     ..MsedConfig::default()
//! });
//! println!("MSED = {:.2}%", stats.detection_rate()); // paper: 86.71%
//! ```

mod fit;
mod msed;
mod ondie;
mod retention;
mod rng;
mod scrub;
mod rowhammer;

pub use fit::{measure_mode, project_fit, FailureMode, FitProjection, ModeOutcome};
pub use ondie::{simulate_stack, OndieStats, Stack};
pub use msed::{
    muse_msed, random_payload, rs_msed, MsedConfig, MsedStats, Outcome, RsDetectMode,
};
pub use retention::{
    analytic_uncorrectable_probability, relative_refresh_power, simulate_retention,
    sweep_refresh_intervals, RetentionModel, RetentionStats, SweepPoint,
};
pub use rng::Rng;
pub use scrub::{analytic_overlap_probability, simulate_scrubbing, ScrubConfig, ScrubStats};
pub use rowhammer::{
    simulate_attacks, AttackStats, HashedLine, LineError, LineHasher, HASH_BITS,
    WORDS_PER_LINE,
};
