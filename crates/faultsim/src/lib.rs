//! Parallel Monte-Carlo fault injection for MUSE and Reed-Solomon memory
//! codes.
//!
//! # Architecture
//!
//! All simulators run on a shared two-layer engine:
//!
//! 1. **[`SimEngine`] — batched parallel trial execution.** A run's
//!    `trials` are split into contiguous ranges over scoped worker threads.
//!    Trial `i` draws randomness exclusively from the counter-based stream
//!    [`Rng::for_trial`]`(seed, i)`, so outcomes are a pure function of
//!    `(seed, i)` and per-worker tallies merge associatively — **results
//!    are bit-identical at any thread count** (the determinism contract,
//!    pinned by `tests/determinism.rs`).
//! 2. **Incremental residue syndromes.** The MUSE-code simulators never
//!    build a 320-bit codeword per trial: `muse-core` precomputes
//!    per-symbol residue tables and fast-ELC content transitions
//!    ([`muse_core::SyndromeKernel`]) at code construction, so a trial is a
//!    payload draw, a few table lookups, and small modular adds. The wide
//!    encode/decode path survives as the reference implementation and is
//!    cross-validated against the kernel by property tests.
//!
//! # Simulators
//!
//! * [`muse_msed`] / [`rs_msed`] — the multi-symbol error detection (MSED)
//!   simulator behind the paper's Table IV.
//! * [`simulate_attacks`] — the Section VI-A case study: 40-bit line hashes
//!   in MUSE spare bits vs blind bit-flip attacks.
//! * [`simulate_retention`] — the Section III-C asymmetric (1→0)
//!   retention-error model and refresh-interval sweeps.
//! * [`simulate_stack`] — on-die SEC × rank-level MUSE co-design.
//! * [`simulate_scrubbing`] — patrol-scrub interval studies.
//! * [`measure_mode`] / [`project_fit`] — field FIT-rate projection.
//!
//! # Examples
//!
//! ```
//! use muse_core::presets;
//! use muse_faultsim::{muse_msed, MsedConfig};
//!
//! // Reproduce one Table IV cell (reduced trial count for speed):
//! let stats = muse_msed(&presets::muse_144_132(), MsedConfig {
//!     trials: 1_000,
//!     ..MsedConfig::default()
//! });
//! println!("MSED = {:.2}%", stats.detection_rate()); // paper: 86.71%
//!
//! // The same run is reproducible at any worker count:
//! let serial = muse_msed(&presets::muse_144_132(), MsedConfig {
//!     trials: 1_000, threads: 1, ..MsedConfig::default()
//! });
//! assert_eq!(stats, serial);
//! ```

mod engine;
mod fastpath;
mod fit;
mod msed;
mod ondie;
mod retention;
mod rng;
mod rowhammer;
mod scrub;

pub use engine::{SimEngine, Tally};
pub use fit::{
    measure_mode, measure_mode_threaded, project_fit, FailureMode, FitProjection, ModeOutcome,
};
pub use msed::{muse_msed, random_payload, rs_msed, MsedConfig, MsedStats, Outcome, RsDetectMode};
pub use ondie::{simulate_stack, simulate_stack_threaded, OndieStats, Stack};
pub use retention::{
    analytic_uncorrectable_probability, relative_refresh_power, simulate_retention,
    simulate_retention_threaded, sweep_refresh_intervals, RetentionModel, RetentionStats,
    SweepPoint,
};
pub use rng::Rng;
pub use rowhammer::{
    simulate_attacks, simulate_attacks_threaded, AttackStats, HashedLine, LineError, LineHasher,
    HASH_BITS, WORDS_PER_LINE,
};
pub use scrub::{
    analytic_overlap_probability, simulate_scrubbing, simulate_scrubbing_threaded, ScrubConfig,
    ScrubStats,
};
