//! Field-reliability projection: FIT-rate accounting over published DRAM
//! failure modes (an extension beyond the paper's evaluation; the per-mode
//! rates follow the shape of large-scale field studies à la Sridharan et
//! al., not any specific deployment).
//!
//! A failure mode is a *pattern generator* (how a fault corrupts a
//! codeword) plus a *rate* (FIT per device = failures per 10⁹ device-
//! hours). For each mode the Monte-Carlo engine measures the probability
//! that the code corrects / detects / miscorrects the resulting word
//! errors, and the projection combines them into DIMM-level rates of
//! detected-uncorrectable errors (DUE) and silent data corruptions (SDC).

use muse_core::MuseCode;

use crate::engine::{SimEngine, Tally};
use crate::fastpath::{classify, CodewordScratch, HalfDraws, TrialOutcome, TrialPlan};
use crate::rng::Bounded32;

/// A DRAM device failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// One stuck/flipped bit in one device.
    SingleBit,
    /// A multi-bit fault confined to one device (row/column/sense-amp).
    SingleDeviceMultiBit,
    /// An entire device returns garbage (chip kill).
    WholeDevice,
    /// Two independent devices fault in the same word (the rare
    /// overlapping-fault case a single-symbol-correct code cannot fix).
    TwoDevices,
}

impl FailureMode {
    /// Representative field rate, FIT per device.
    ///
    /// Shaped after published field studies: single-bit faults dominate;
    /// whole-chip faults are rare; overlapping faults are derived from the
    /// others (see [`FitProjection`]) and given here as a per-word residual.
    pub fn fit_per_device(self) -> f64 {
        match self {
            Self::SingleBit => 35.0,
            Self::SingleDeviceMultiBit => 20.0,
            Self::WholeDevice => 5.0,
            Self::TwoDevices => 0.05,
        }
    }

    /// All modes.
    pub fn all() -> [FailureMode; 4] {
        [
            Self::SingleBit,
            Self::SingleDeviceMultiBit,
            Self::WholeDevice,
            Self::TwoDevices,
        ]
    }
}

/// Measured per-mode outcome probabilities.
#[derive(Debug, Clone, Copy)]
pub struct ModeOutcome {
    /// The mode.
    pub mode: FailureMode,
    /// P(corrected back to the right data).
    pub p_correct: f64,
    /// P(detected uncorrectable).
    pub p_due: f64,
    /// P(silent corruption or miscorrection).
    pub p_sdc: f64,
}

/// Internal tally for one mode measurement.
#[derive(Debug, Clone, Copy, Default)]
struct ModeTally {
    correct: u64,
    due: u64,
    sdc: u64,
}

impl Tally for ModeTally {
    fn merge(&mut self, other: Self) {
        self.correct += other.correct;
        self.due += other.due;
        self.sdc += other.sdc;
    }
}

/// Monte-Carlo per-mode outcome measurement for a MUSE code.
///
/// Trials run in residue space on the [`SimEngine`] (one worker per CPU);
/// results are bit-identical at any thread count.
pub fn measure_mode(code: &MuseCode, mode: FailureMode, trials: u64, seed: u64) -> ModeOutcome {
    measure_mode_threaded(code, mode, trials, seed, 0)
}

/// [`measure_mode`] with an explicit worker count (0 ⇒ all CPUs).
pub fn measure_mode_threaded(
    code: &MuseCode,
    mode: FailureMode,
    trials: u64,
    seed: u64,
    threads: usize,
) -> ModeOutcome {
    let kernel = crate::require_kernel(code, "FIT");
    let plan = TrialPlan::new(kernel, 2);
    // Multi-bit mode samples a pattern *value* in [2, 2^w): excludes only
    // the lowest single-bit flip, matching the seed's sampling (some
    // single-bit patterns remain).
    let multibit: Vec<Bounded32> = (0..kernel.num_symbols())
        .map(|s| Bounded32::new(((1u32 << kernel.symbol_bits(s)) - 2).max(1)))
        .collect();
    let tally: ModeTally = SimEngine::new(threads).run_blocked(
        seed ^ 0xF17,
        trials,
        || CodewordScratch::new(kernel),
        |range, rng, scratch, tally: &mut ModeTally| {
            for _ in range {
                scratch.begin_trial();
                let mut halves = HalfDraws::default();
                match mode {
                    FailureMode::SingleBit => {
                        let sym = plan.pick_symbol(rng, &mut halves);
                        let bit = plan.pick_bit(rng, &mut halves, sym) as u16;
                        scratch.injected.push((sym, 1 << bit));
                    }
                    FailureMode::WholeDevice => {
                        let sym = plan.pick_symbol(rng, &mut halves);
                        let pattern = plan.pick_pattern(rng, &mut halves, sym);
                        scratch.injected.push((sym, pattern));
                    }
                    FailureMode::SingleDeviceMultiBit => {
                        let sym = plan.pick_symbol(rng, &mut halves);
                        let half = halves.next(rng);
                        let pattern = 2 + multibit[sym].of_half(rng, half) as u16;
                        scratch.injected.push((sym, pattern));
                    }
                    FailureMode::TwoDevices => {
                        plan.inject_distinct(scratch, rng, 2);
                    }
                }
                match classify(kernel, scratch, rng) {
                    TrialOutcome::Detected => tally.due += 1,
                    TrialOutcome::CleanIntact | TrialOutcome::CorrectedRight => tally.correct += 1,
                    TrialOutcome::CleanCorrupted | TrialOutcome::Miscorrected => tally.sdc += 1,
                }
            }
        },
    );
    let t = trials as f64;
    ModeOutcome {
        mode,
        p_correct: tally.correct as f64 / t,
        p_due: tally.due as f64 / t,
        p_sdc: tally.sdc as f64 / t,
    }
}

/// DIMM-level projection.
#[derive(Debug, Clone)]
pub struct FitProjection {
    /// Per-mode measured outcomes.
    pub outcomes: Vec<ModeOutcome>,
    /// Detected-uncorrectable FIT per DIMM.
    pub due_fit: f64,
    /// Silent-corruption FIT per DIMM.
    pub sdc_fit: f64,
}

/// Projects DIMM-level DUE/SDC FIT rates for a code with `devices` DRAM
/// chips, weighting each mode's measured outcome by its field rate.
pub fn project_fit(code: &MuseCode, devices: u32, trials: u64, seed: u64) -> FitProjection {
    let mut outcomes = Vec::new();
    let mut due_fit = 0.0;
    let mut sdc_fit = 0.0;
    for mode in FailureMode::all() {
        let outcome = measure_mode(code, mode, trials, seed ^ mode as u64);
        let rate = mode.fit_per_device() * devices as f64;
        due_fit += rate * outcome.p_due;
        sdc_fit += rate * outcome.p_sdc;
        outcomes.push(outcome);
    }
    FitProjection {
        outcomes,
        due_fit,
        sdc_fit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    #[test]
    fn in_model_modes_always_correct() {
        let code = presets::muse_144_132();
        for mode in [
            FailureMode::SingleBit,
            FailureMode::SingleDeviceMultiBit,
            FailureMode::WholeDevice,
        ] {
            let o = measure_mode(&code, mode, 400, 11);
            assert_eq!(o.p_correct, 1.0, "{mode:?}");
            assert_eq!(o.p_due + o.p_sdc, 0.0, "{mode:?}");
        }
    }

    #[test]
    fn two_device_mode_splits_due_and_sdc() {
        let code = presets::muse_144_132();
        let o = measure_mode(&code, FailureMode::TwoDevices, 2_000, 13);
        assert_eq!(o.p_correct, 0.0, "two-device errors never restore data");
        assert!(o.p_due > 0.8, "most are detected: {}", o.p_due);
        assert!(o.p_sdc < 0.2);
        assert!((o.p_due + o.p_sdc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_dominated_by_overlap_residual() {
        // A ChipKill code's DUE/SDC FIT comes only from the overlap mode.
        let proj = project_fit(&presets::muse_144_132(), 36, 800, 17);
        assert!(proj.due_fit > 0.0);
        assert!(
            proj.due_fit < 36.0 * 0.05 * 1.01,
            "bounded by the overlap rate"
        );
        assert!(proj.sdc_fit < proj.due_fit);
        assert_eq!(proj.outcomes.len(), 4);
    }

    #[test]
    fn stronger_code_has_lower_sdc_fit() {
        let weak = project_fit(&presets::muse_144_132(), 36, 2_000, 23);
        let strong = project_fit(&presets::muse_144_128(), 36, 2_000, 23);
        assert!(
            strong.sdc_fit < weak.sdc_fit,
            "m=65519 detects more than m=4065"
        );
    }
}
