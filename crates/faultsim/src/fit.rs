//! Field-reliability projection: FIT-rate accounting over published DRAM
//! failure modes (an extension beyond the paper's evaluation; the per-mode
//! rates follow the shape of large-scale field studies à la Sridharan et
//! al., not any specific deployment).
//!
//! A failure mode is a *pattern generator* (how a fault corrupts a
//! codeword) plus a *rate* (FIT per device = failures per 10⁹ device-
//! hours). For each mode the Monte-Carlo engine measures the probability
//! that the code corrects / detects / miscorrects the resulting word
//! errors, and the projection combines them into DIMM-level rates of
//! detected-uncorrectable errors (DUE) and silent data corruptions (SDC).

use muse_core::{Decoded, MuseCode};

use crate::{random_payload, Rng};

/// A DRAM device failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// One stuck/flipped bit in one device.
    SingleBit,
    /// A multi-bit fault confined to one device (row/column/sense-amp).
    SingleDeviceMultiBit,
    /// An entire device returns garbage (chip kill).
    WholeDevice,
    /// Two independent devices fault in the same word (the rare
    /// overlapping-fault case a single-symbol-correct code cannot fix).
    TwoDevices,
}

impl FailureMode {
    /// Representative field rate, FIT per device.
    ///
    /// Shaped after published field studies: single-bit faults dominate;
    /// whole-chip faults are rare; overlapping faults are derived from the
    /// others (see [`FitProjection`]) and given here as a per-word residual.
    pub fn fit_per_device(self) -> f64 {
        match self {
            Self::SingleBit => 35.0,
            Self::SingleDeviceMultiBit => 20.0,
            Self::WholeDevice => 5.0,
            Self::TwoDevices => 0.05,
        }
    }

    /// All modes.
    pub fn all() -> [FailureMode; 4] {
        [Self::SingleBit, Self::SingleDeviceMultiBit, Self::WholeDevice, Self::TwoDevices]
    }
}

/// Measured per-mode outcome probabilities.
#[derive(Debug, Clone, Copy)]
pub struct ModeOutcome {
    /// The mode.
    pub mode: FailureMode,
    /// P(corrected back to the right data).
    pub p_correct: f64,
    /// P(detected uncorrectable).
    pub p_due: f64,
    /// P(silent corruption or miscorrection).
    pub p_sdc: f64,
}

/// Monte-Carlo per-mode outcome measurement for a MUSE code.
pub fn measure_mode(code: &MuseCode, mode: FailureMode, trials: u64, seed: u64) -> ModeOutcome {
    let mut rng = Rng::seeded(seed ^ 0xF17);
    let n_sym = code.symbol_map().num_symbols();
    let mut correct = 0u64;
    let mut due = 0u64;
    let mut sdc = 0u64;
    for _ in 0..trials {
        let payload = random_payload(&mut rng, code.k_bits());
        let cw = code.encode(&payload);
        let mut corrupted = cw;
        match mode {
            FailureMode::SingleBit => {
                let sym = rng.below(n_sym as u64) as usize;
                let bits = code.symbol_map().bits_of(sym);
                corrupted.toggle_bit(bits[rng.below(bits.len() as u64) as usize]);
            }
            FailureMode::SingleDeviceMultiBit | FailureMode::WholeDevice => {
                let sym = rng.below(n_sym as u64) as usize;
                let bits = code.symbol_map().bits_of(sym);
                let pattern = if mode == FailureMode::WholeDevice {
                    rng.nonzero_below(1 << bits.len())
                } else {
                    // 2..all bits of the device
                    rng.nonzero_below((1 << bits.len()) - 1) + 1
                };
                for (i, &bit) in bits.iter().enumerate() {
                    if pattern >> i & 1 == 1 {
                        corrupted.toggle_bit(bit);
                    }
                }
            }
            FailureMode::TwoDevices => {
                for sym in rng.choose_k(n_sym, 2) {
                    let bits = code.symbol_map().bits_of(sym);
                    let pattern = rng.nonzero_below(1 << bits.len());
                    for (i, &bit) in bits.iter().enumerate() {
                        if pattern >> i & 1 == 1 {
                            corrupted.toggle_bit(bit);
                        }
                    }
                }
            }
        }
        match code.decode(&corrupted) {
            Decoded::Detected => due += 1,
            Decoded::Clean { payload: p } | Decoded::Corrected { payload: p, .. } => {
                if p == payload {
                    correct += 1;
                } else {
                    sdc += 1;
                }
            }
        }
    }
    let t = trials as f64;
    ModeOutcome {
        mode,
        p_correct: correct as f64 / t,
        p_due: due as f64 / t,
        p_sdc: sdc as f64 / t,
    }
}

/// DIMM-level projection.
#[derive(Debug, Clone)]
pub struct FitProjection {
    /// Per-mode measured outcomes.
    pub outcomes: Vec<ModeOutcome>,
    /// Detected-uncorrectable FIT per DIMM.
    pub due_fit: f64,
    /// Silent-corruption FIT per DIMM.
    pub sdc_fit: f64,
}

/// Projects DIMM-level DUE/SDC FIT rates for a code with `devices` DRAM
/// chips, weighting each mode's measured outcome by its field rate.
pub fn project_fit(code: &MuseCode, devices: u32, trials: u64, seed: u64) -> FitProjection {
    let mut outcomes = Vec::new();
    let mut due_fit = 0.0;
    let mut sdc_fit = 0.0;
    for mode in FailureMode::all() {
        let outcome = measure_mode(code, mode, trials, seed ^ mode as u64);
        let rate = mode.fit_per_device() * devices as f64;
        due_fit += rate * outcome.p_due;
        sdc_fit += rate * outcome.p_sdc;
        outcomes.push(outcome);
    }
    FitProjection { outcomes, due_fit, sdc_fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    #[test]
    fn in_model_modes_always_correct() {
        let code = presets::muse_144_132();
        for mode in [
            FailureMode::SingleBit,
            FailureMode::SingleDeviceMultiBit,
            FailureMode::WholeDevice,
        ] {
            let o = measure_mode(&code, mode, 400, 11);
            assert_eq!(o.p_correct, 1.0, "{mode:?}");
            assert_eq!(o.p_due + o.p_sdc, 0.0, "{mode:?}");
        }
    }

    #[test]
    fn two_device_mode_splits_due_and_sdc() {
        let code = presets::muse_144_132();
        let o = measure_mode(&code, FailureMode::TwoDevices, 2_000, 13);
        assert_eq!(o.p_correct, 0.0, "two-device errors never restore data");
        assert!(o.p_due > 0.8, "most are detected: {}", o.p_due);
        assert!(o.p_sdc < 0.2);
        assert!((o.p_due + o.p_sdc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_dominated_by_overlap_residual() {
        // A ChipKill code's DUE/SDC FIT comes only from the overlap mode.
        let proj = project_fit(&presets::muse_144_132(), 36, 800, 17);
        assert!(proj.due_fit > 0.0);
        assert!(proj.due_fit < 36.0 * 0.05 * 1.01, "bounded by the overlap rate");
        assert!(proj.sdc_fit < proj.due_fit);
        assert_eq!(proj.outcomes.len(), 4);
    }

    #[test]
    fn stronger_code_has_lower_sdc_fit() {
        let weak = project_fit(&presets::muse_144_132(), 36, 2_000, 23);
        let strong = project_fit(&presets::muse_144_128(), 36, 2_000, 23);
        assert!(strong.sdc_fit < weak.sdc_fit, "m=65519 detects more than m=4065");
    }
}
