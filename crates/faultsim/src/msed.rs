//! Multi-Symbol Error Detection (MSED) rate estimation — the Monte-Carlo
//! simulator behind Table IV.
//!
//! Following Section VII-A: sample `trials` random `k`-device error
//! patterns; corrupt each chosen device with a uniformly random non-identity
//! pattern; run the decoder; the error counts as *detected* when the decoder
//! reports an uncorrectable error. Clean decodes (syndrome aliased to zero)
//! and miscorrections are undetected.
//!
//! The MUSE path runs on the [`SimEngine`] with the incremental
//! residue-syndrome kernel: no codeword is ever built — a trial draws the
//! contents of the symbols it corrupts, accumulates the syndrome with
//! per-symbol table lookups, and finishes with a fast-ELC transition check
//! (see [`muse_core::SyndromeKernel`]). Results are bit-identical at any
//! `threads` setting.

use muse_core::{Decoded, MuseCode, Word};
use muse_rs::{RsMemoryCode, RsMemoryDecoded};

use crate::engine::{SimEngine, Tally};
use crate::fastpath::{classify, inject_random_symbols, CodewordScratch, TrialOutcome};
use crate::Rng;

/// Classification of one injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The decoder flagged an uncorrectable error (the good case for
    /// beyond-model errors).
    Detected,
    /// The decoder corrected the word back to the original payload (only
    /// possible for in-model errors, e.g. `failing_devices = 1`).
    Corrected,
    /// The decoder "corrected" the word — into the wrong data.
    Miscorrected,
    /// The syndrome aliased to zero; the corruption passed silently.
    Silent,
}

/// Aggregated Monte-Carlo tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsedStats {
    /// Errors flagged uncorrectable.
    pub detected: u64,
    /// In-model errors corrected back to the original data.
    pub corrected: u64,
    /// Errors miscorrected to wrong data.
    pub miscorrected: u64,
    /// Errors aliasing to a zero syndrome.
    pub silent: u64,
}

impl MsedStats {
    /// Total injected errors.
    pub fn total(&self) -> u64 {
        self.detected + self.corrected + self.miscorrected + self.silent
    }

    /// The multi-symbol error detection rate, in percent: detected out of
    /// all *beyond-model* outcomes (proper corrections excluded).
    pub fn detection_rate(&self) -> f64 {
        let beyond = self.detected + self.miscorrected + self.silent;
        if beyond == 0 {
            return 0.0;
        }
        100.0 * self.detected as f64 / beyond as f64
    }

    fn record(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Detected => self.detected += 1,
            Outcome::Corrected => self.corrected += 1,
            Outcome::Miscorrected => self.miscorrected += 1,
            Outcome::Silent => self.silent += 1,
        }
    }
}

impl Tally for MsedStats {
    fn merge(&mut self, other: Self) {
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.miscorrected += other.miscorrected;
        self.silent += other.silent;
    }
}

/// Configuration of one MSED experiment.
#[derive(Debug, Clone, Copy)]
pub struct MsedConfig {
    /// Number of simultaneously failing devices (the paper's `k`; 2 is the
    /// canonical "two DRAMs at the same time" case).
    pub failing_devices: usize,
    /// Monte-Carlo sample count (the paper uses 10 000).
    pub trials: u64,
    /// PRNG seed.
    pub seed: u64,
    /// Worker threads (0 ⇒ one per available CPU). Tallies are
    /// bit-identical at any value.
    pub threads: usize,
}

impl Default for MsedConfig {
    fn default() -> Self {
        Self {
            failing_devices: 2,
            trials: 10_000,
            seed: 0x4D53_4544,
            threads: 0,
        }
    }
}

/// Estimates the MSED rate of a MUSE code.
///
/// Devices are the code's symbols. Each trial corrupts `failing_devices`
/// distinct symbols with independent uniform non-identity bit patterns.
///
/// # Examples
///
/// ```
/// use muse_core::presets;
/// use muse_faultsim::{muse_msed, MsedConfig};
///
/// let stats = muse_msed(&presets::muse_144_132(), MsedConfig {
///     trials: 2_000, ..MsedConfig::default()
/// });
/// // Table IV reports 86.71% for this code; the estimate lands nearby.
/// assert!(stats.detection_rate() > 75.0 && stats.detection_rate() < 95.0);
/// ```
pub fn muse_msed(code: &MuseCode, config: MsedConfig) -> MsedStats {
    let engine = SimEngine::new(config.threads);
    let Some(kernel) = code.kernel() else {
        // Layout outside the kernel's tabulation limits: same experiment
        // through the wide encode/decode path, still engine-parallel.
        return engine.run(
            config.seed,
            config.trials,
            |_, rng, stats: &mut MsedStats| {
                let payload = random_payload(rng, code.k_bits());
                let cw = code.encode(&payload);
                let mut corrupted = cw;
                let map = code.symbol_map();
                for sym in rng.choose_k(map.num_symbols(), config.failing_devices) {
                    let pattern = rng.nonzero_below(1 << map.bits_of(sym).len());
                    map.apply_xor_pattern(&mut corrupted, sym, pattern);
                }
                stats.record(match code.decode(&corrupted) {
                    Decoded::Detected => Outcome::Detected,
                    Decoded::Clean { .. } => Outcome::Silent,
                    Decoded::Corrected { payload: p, .. } => {
                        if p == payload {
                            Outcome::Corrected
                        } else {
                            Outcome::Miscorrected
                        }
                    }
                });
            },
        );
    };
    engine.run_with(
        config.seed,
        config.trials,
        || CodewordScratch::new(code, kernel),
        |_, rng, scratch, stats: &mut MsedStats| {
            scratch.begin_trial(rng);
            inject_random_symbols(kernel, scratch, rng, config.failing_devices);
            stats.record(match classify(kernel, scratch) {
                // The decoder reads a zero syndrome as "no error": any
                // corruption landing there passes silently, payload-intact
                // or not.
                TrialOutcome::CleanIntact | TrialOutcome::CleanCorrupted => Outcome::Silent,
                TrialOutcome::Detected => Outcome::Detected,
                TrialOutcome::CorrectedRight => Outcome::Corrected,
                TrialOutcome::Miscorrected => Outcome::Miscorrected,
            });
        },
    )
}

/// How an RS "correction" of a beyond-model error is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsDetectMode {
    /// Any successful single-symbol correction counts as a (silent)
    /// miscorrection — the plain symbol-domain reading of the decoder.
    SymbolSyndromes,
    /// A correction only counts as a miscorrection when its error pattern is
    /// confined to a single physical device; otherwise the controller knows
    /// the correction is impossible under the ChipKill error model and
    /// flags it (the reading that matches the paper's Table IV numbers).
    DeviceConfined,
}

/// Estimates the MSED rate of a Reed-Solomon memory code against
/// `device_bits`-wide physical device failures (x4 ⇒ 4).
///
/// The RS decoder has no residue kernel, so trials run the full
/// encode/decode path — but still batched across the engine's workers.
pub fn rs_msed(
    code: &RsMemoryCode,
    device_bits: u32,
    mode: RsDetectMode,
    config: MsedConfig,
) -> MsedStats {
    let n_devices = (code.n_bits() / device_bits) as usize;
    SimEngine::new(config.threads).run(
        config.seed,
        config.trials,
        |_, rng, stats: &mut MsedStats| {
            let payload = random_payload(rng, code.data_bits());
            let cw = code.encode(&payload);
            let mut corrupted = cw;
            for dev in rng.choose_k(n_devices, config.failing_devices) {
                let pattern = rng.nonzero_below(1 << device_bits);
                corrupted = corrupted ^ (Word::from(pattern) << (dev as u32 * device_bits));
            }
            let outcome = match code.decode(&corrupted) {
                RsMemoryDecoded::Detected => Outcome::Detected,
                RsMemoryDecoded::Clean { .. } => Outcome::Silent,
                RsMemoryDecoded::Corrected {
                    payload: p,
                    ref errors,
                } => {
                    if p == payload {
                        Outcome::Corrected
                    } else {
                        match mode {
                            RsDetectMode::SymbolSyndromes => Outcome::Miscorrected,
                            RsDetectMode::DeviceConfined => {
                                if errors.iter().all(|&(sym, val)| {
                                    error_confined_to_device(code, device_bits, sym, val)
                                }) {
                                    Outcome::Miscorrected
                                } else {
                                    Outcome::Detected
                                }
                            }
                        }
                    }
                }
            };
            stats.record(outcome);
        },
    )
}

/// Whether an RS symbol-error value only touches bits of one
/// `device_bits`-wide physical device.
fn error_confined_to_device(
    code: &RsMemoryCode,
    device_bits: u32,
    symbol: usize,
    value: u16,
) -> bool {
    let base = symbol as u32 * code.symbol_bits();
    let mut devices = std::collections::HashSet::new();
    for bit in 0..code.symbol_bits() {
        if value >> bit & 1 == 1 {
            devices.insert((base + bit) / device_bits);
        }
    }
    devices.len() <= 1
}

/// A `Word` with uniformly random low `bits`.
pub fn random_payload(rng: &mut Rng, bits: u32) -> Word {
    let mut limbs = [0u64; 5];
    for limb in &mut limbs {
        *limb = rng.next_u64();
    }
    Word::from_limbs(limbs) & Word::mask(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    fn quick(trials: u64) -> MsedConfig {
        MsedConfig {
            trials,
            ..MsedConfig::default()
        }
    }

    #[test]
    fn stats_accounting() {
        let mut s = MsedStats::default();
        s.record(Outcome::Detected);
        s.record(Outcome::Detected);
        s.record(Outcome::Miscorrected);
        s.record(Outcome::Silent);
        s.record(Outcome::Corrected); // excluded from the rate
        assert_eq!(s.total(), 5);
        assert!((s.detection_rate() - 50.0).abs() < 1e-9);
        assert_eq!(MsedStats::default().detection_rate(), 0.0);
    }

    #[test]
    fn muse_single_device_never_counts() {
        // With k = 1 every injected error is in-model: corrected, never
        // detected as uncorrectable. (Sanity check on the harness itself.)
        let stats = muse_msed(
            &presets::muse_80_69(),
            MsedConfig {
                failing_devices: 1,
                trials: 300,
                seed: 1,
                threads: 0,
            },
        );
        assert_eq!(stats.corrected, 300);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.miscorrected, 0);
        assert_eq!(stats.silent, 0);
    }

    #[test]
    fn muse_double_device_rate_near_table4() {
        // Table IV: MUSE(144,132) (extra bits = 4) detects 86.71% of
        // double-device errors.
        let stats = muse_msed(&presets::muse_144_132(), quick(4_000));
        let rate = stats.detection_rate();
        assert!((80.0..93.0).contains(&rate), "rate {rate}");
        assert_eq!(stats.total(), 4_000);
        assert_eq!(
            stats.silent, 0,
            "odd multipliers cannot alias nibble sums to zero"
        );
    }

    #[test]
    fn muse_large_multiplier_detects_more() {
        // Table IV's headline trade-off: MUSE(144,128) with m = 65519
        // detects ~99.17%, far above MUSE(144,132)'s ~86.71%.
        let big = muse_msed(&presets::muse_144_128(), quick(3_000));
        let small = muse_msed(&presets::muse_144_132(), quick(3_000));
        assert!(big.detection_rate() > small.detection_rate() + 5.0);
        assert!(big.detection_rate() > 97.0, "got {}", big.detection_rate());
    }

    #[test]
    fn rs_device_confined_beats_symbol_mode() {
        let code = RsMemoryCode::new(8, 144, 1).unwrap();
        let symbol = rs_msed(&code, 4, RsDetectMode::SymbolSyndromes, quick(3_000));
        let device = rs_msed(&code, 4, RsDetectMode::DeviceConfined, quick(3_000));
        assert!(device.detection_rate() >= symbol.detection_rate());
        // Long-run estimate is ~96.8%; leave ~4σ of Monte-Carlo headroom.
        assert!(
            device.detection_rate() > 95.5,
            "got {}",
            device.detection_rate()
        );
    }

    #[test]
    fn rs_small_symbols_detect_much_less() {
        // The Table IV trend: 5-bit-symbol RS loses most of its detection.
        let rs8 = rs_msed(
            &RsMemoryCode::new(8, 144, 1).unwrap(),
            4,
            RsDetectMode::DeviceConfined,
            quick(2_000),
        );
        let rs5 = rs_msed(
            &RsMemoryCode::new(5, 144, 1).unwrap(),
            4,
            RsDetectMode::DeviceConfined,
            quick(2_000),
        );
        assert!(
            rs5.detection_rate() < rs8.detection_rate() - 10.0,
            "rs5 {} vs rs8 {}",
            rs5.detection_rate(),
            rs8.detection_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = muse_msed(&presets::muse_80_69(), quick(500));
        let b = muse_msed(&presets::muse_80_69(), quick(500));
        assert_eq!(a, b);
    }

    #[test]
    fn triple_device_errors_still_mostly_detected() {
        let stats = muse_msed(
            &presets::muse_144_128(),
            MsedConfig {
                failing_devices: 3,
                trials: 2_000,
                seed: 9,
                threads: 0,
            },
        );
        assert!(stats.detection_rate() > 95.0);
    }
}
