//! Multi-Symbol Error Detection (MSED) rate estimation — the Monte-Carlo
//! simulator behind Table IV.
//!
//! Following Section VII-A: sample `trials` random `k`-device error
//! patterns; corrupt each chosen device with a uniformly random non-identity
//! pattern; run the decoder; the error counts as *detected* when the decoder
//! reports an uncorrectable error. Clean decodes (syndrome aliased to zero)
//! and miscorrections are undetected.
//!
//! The MUSE path runs on the [`SimEngine`] with the incremental
//! residue-syndrome kernel: no codeword is ever built — a trial draws the
//! contents of the symbols it corrupts, accumulates the syndrome with
//! per-symbol table lookups, and finishes with a fast-ELC transition check
//! (see [`muse_core::SyndromeKernel`]). The dominant `k = 2` case is
//! fully columnar: each engine block pre-fills four flat draw columns —
//! one *quad* draw packing both distinct symbol indices and both nonzero
//! patterns into a single bounded integer, two raw contents, an
//! unconditional check value, and an outside-strike correction content —
//! so a trial's outcome is a pure function of its column entries with no
//! live PRNG in the hot loop. On uniform affine layouts those columns
//! feed the structure-of-arrays lane kernel ([`crate::lanes`], with an
//! optional AVX2 specialization behind the `simd` feature); everywhere
//! else a scalar walk consumes the *same* columns, so the stream — and
//! therefore every tally — is identical on both paths and bit-identical
//! at any `threads` setting.

use muse_core::{MuseCode, Word};
use muse_rs::RsMemoryCode;
#[cfg(test)]
use muse_rs::RsMemoryDecoded;

use crate::engine::{SimEngine, Tally};
use crate::fastpath::{
    self, classify, msed_inline_trial, msed_trial_k2_cols, place_distinct, CodewordScratch,
    InlineTrial, TrialOutcome, TrialPlan,
};
use crate::lanes::{LaneBuffers, LaneKernel};
use crate::rng::Bounded32;
use crate::Rng;

/// Classification of one injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The decoder flagged an uncorrectable error (the good case for
    /// beyond-model errors).
    Detected,
    /// The decoder corrected the word back to the original payload (only
    /// possible for in-model errors, e.g. `failing_devices = 1`).
    Corrected,
    /// The decoder "corrected" the word — into the wrong data.
    Miscorrected,
    /// The syndrome aliased to zero; the corruption passed silently.
    Silent,
}

/// Aggregated Monte-Carlo tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsedStats {
    /// Errors flagged uncorrectable.
    pub detected: u64,
    /// In-model errors corrected back to the original data.
    pub corrected: u64,
    /// Errors miscorrected to wrong data.
    pub miscorrected: u64,
    /// Errors aliasing to a zero syndrome.
    pub silent: u64,
}

impl MsedStats {
    /// Total injected errors.
    pub fn total(&self) -> u64 {
        self.detected + self.corrected + self.miscorrected + self.silent
    }

    /// The multi-symbol error detection rate, in percent: detected out of
    /// all *beyond-model* outcomes (proper corrections excluded).
    pub fn detection_rate(&self) -> f64 {
        let beyond = self.detected + self.miscorrected + self.silent;
        if beyond == 0 {
            return 0.0;
        }
        100.0 * self.detected as f64 / beyond as f64
    }

    fn record(&mut self, outcome: Outcome) {
        self.record_many(outcome, 1);
    }

    /// Tallies a batch of identical outcomes in one addition — the lane
    /// kernel delivers its bulk-Detected majority this way.
    fn record_many(&mut self, outcome: Outcome, count: u64) {
        match outcome {
            Outcome::Detected => self.detected += count,
            Outcome::Corrected => self.corrected += count,
            Outcome::Miscorrected => self.miscorrected += count,
            Outcome::Silent => self.silent += count,
        }
    }
}

impl Tally for MsedStats {
    fn merge(&mut self, other: Self) {
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.miscorrected += other.miscorrected;
        self.silent += other.silent;
    }
}

/// Configuration of one MSED experiment.
#[derive(Debug, Clone, Copy)]
pub struct MsedConfig {
    /// Number of simultaneously failing devices (the paper's `k`; 2 is the
    /// canonical "two DRAMs at the same time" case).
    pub failing_devices: usize,
    /// Monte-Carlo sample count (the paper uses 10 000).
    pub trials: u64,
    /// PRNG seed.
    pub seed: u64,
    /// Worker threads (0 ⇒ one per available CPU). Tallies are
    /// bit-identical at any value.
    pub threads: usize,
}

impl Default for MsedConfig {
    fn default() -> Self {
        Self {
            failing_devices: 2,
            trials: 10_000,
            seed: 0x4D53_4544,
            threads: 0,
        }
    }
}

/// Estimates the MSED rate of a MUSE code.
///
/// Devices are the code's symbols. Each trial corrupts `failing_devices`
/// distinct symbols with independent uniform non-identity bit patterns.
///
/// # Examples
///
/// ```
/// use muse_core::presets;
/// use muse_faultsim::{muse_msed, MsedConfig};
///
/// let stats = muse_msed(&presets::muse_144_132(), MsedConfig {
///     trials: 2_000, ..MsedConfig::default()
/// });
/// // Table IV reports 86.71% for this code; the estimate lands nearby.
/// assert!(stats.detection_rate() > 75.0 && stats.detection_rate() < 95.0);
/// ```
pub fn muse_msed(code: &MuseCode, config: MsedConfig) -> MsedStats {
    let engine = SimEngine::new(config.threads);
    let kernel = crate::require_kernel(code, "MSED");
    if config.failing_devices > fastpath::MAX_STRIKES {
        // Beyond the fixed-capacity inline arrays: draws go through the
        // Vec-based distinct sampler instead of the columnar fills, but
        // classification stays in the syndrome domain — no codeword is
        // ever materialized on any strike count.
        let n_sym = kernel.num_symbols();
        assert!(
            config.failing_devices <= n_sym,
            "cannot corrupt {} of {n_sym} devices",
            config.failing_devices
        );
        return engine.run_blocked(
            config.seed,
            config.trials,
            || CodewordScratch::new(kernel),
            |range, rng, scratch, stats: &mut MsedStats| {
                for _ in range {
                    scratch.begin_trial();
                    for sym in rng.choose_k(n_sym, config.failing_devices) {
                        let pattern = rng.nonzero_below(1 << kernel.symbol_bits(sym)) as u16;
                        scratch.injected.push((sym, pattern));
                    }
                    stats.record(match classify(kernel, scratch, rng) {
                        TrialOutcome::CleanIntact | TrialOutcome::CleanCorrupted => Outcome::Silent,
                        TrialOutcome::Detected => Outcome::Detected,
                        TrialOutcome::CorrectedRight => Outcome::Corrected,
                        TrialOutcome::Miscorrected => Outcome::Miscorrected,
                    });
                }
            },
        );
    }
    let k = config.failing_devices;
    let plan = TrialPlan::new(kernel, k);
    let Some(uniform_pattern) = plan.uniform_pattern() else {
        // Mixed symbol widths: patterns cannot be column-filled ahead of
        // the symbol draw, so run the generic content-space path.
        return engine.run_blocked(
            config.seed,
            config.trials,
            || CodewordScratch::new(kernel),
            |range, rng, scratch, stats: &mut MsedStats| {
                for _ in range {
                    scratch.begin_trial();
                    plan.inject_distinct(scratch, rng, k);
                    stats.record(match classify(kernel, scratch, rng) {
                        TrialOutcome::CleanIntact | TrialOutcome::CleanCorrupted => Outcome::Silent,
                        TrialOutcome::Detected => Outcome::Detected,
                        TrialOutcome::CorrectedRight => Outcome::Corrected,
                        TrialOutcome::Miscorrected => Outcome::Miscorrected,
                    });
                }
            },
        );
    };
    if k == 2 {
        if let Some(quad_bound) = k2_quad_bound(kernel) {
            // The canonical double-symbol experiment: the fully-columnar
            // quad-packed draw scheme, lane-kernel accelerated where the
            // layout allows.
            return muse_msed_columnar_k2(kernel, quad_bound, config, false);
        }
    }
    muse_msed_columnar_scalar(kernel, &plan, uniform_pattern, k, config)
}

/// The k = 2 quad-draw bound `n(n−1)·(2^w−1)²` when it fits a `u32` — the
/// applicability gate of the fully-columnar scheme. `None` (a geometry far
/// past any real preset) sends k = 2 down the generic per-strike columnar
/// path instead.
fn k2_quad_bound(kernel: &muse_core::SyndromeKernel) -> Option<u32> {
    let n = kernel.num_symbols() as u64;
    let pb = (1u64 << kernel.symbol_bits(0)) - 1;
    u32::try_from(n * (n - 1) * pb * pb).ok()
}

/// The k = 2 columnar path: four bulk-filled draw columns per engine block
/// (see [`msed_trial_k2_cols`] for the scheme), classified by the lane
/// kernel when the layout supports it — or by the draw-for-draw scalar
/// oracle (`force_scalar`, or a layout the lanes refuse). Both consume the
/// same fills and no live randomness, so the draw stream — and therefore
/// every tally — is identical either way, at any thread count.
fn muse_msed_columnar_k2(
    kernel: &muse_core::SyndromeKernel,
    quad_bound: u32,
    config: MsedConfig,
    force_scalar: bool,
) -> MsedStats {
    const BLOCK: usize = SimEngine::TRIAL_BLOCK as usize;
    let quad_pick = Bounded32::new(quad_bound);
    let x_pick = Bounded32::new(u32::try_from(kernel.modulus()).expect("kernel moduli fit u32"));
    let lanes = if force_scalar {
        None
    } else {
        LaneKernel::new(kernel)
    };
    SimEngine::new(config.threads).run_blocked(
        config.seed,
        config.trials,
        || {
            (
                vec![0u32; 4 * BLOCK], // the four draw columns, back to back
                LaneBuffers::default(),
            )
        },
        |range, rng, (cols, buf), stats: &mut MsedStats| {
            let len = (range.end - range.start) as usize;
            let (quad_col, rest) = cols.split_at_mut(len);
            let (cnt_col, rest) = rest.split_at_mut(len);
            let (x_col, rest) = rest.split_at_mut(len);
            let extra_col = &mut rest[..len];
            quad_pick.fill(rng, quad_col);
            rng.fill_u32s(cnt_col);
            x_pick.fill(rng, x_col);
            rng.fill_u32s(extra_col);
            match &lanes {
                Some(lanes) => lanes.run_block(
                    buf,
                    len,
                    quad_col,
                    cnt_col,
                    x_col,
                    extra_col,
                    |outcome, count| stats.record_many(outcome_of(outcome), count),
                ),
                None => {
                    for t in 0..len {
                        let (outcome, _) = msed_trial_k2_cols(
                            kernel,
                            quad_col[t],
                            cnt_col[t],
                            x_col[t] as u64,
                            extra_col[t],
                        );
                        stats.record(outcome_of(outcome));
                    }
                }
            }
        },
    )
}

/// Maps a fast-path trial outcome onto the MSED tally class. The decoder
/// reads a zero syndrome as "no error": any corruption landing there passes
/// silently, payload-intact or not.
#[inline]
fn outcome_of(outcome: TrialOutcome) -> Outcome {
    match outcome {
        TrialOutcome::CleanIntact | TrialOutcome::CleanCorrupted => Outcome::Silent,
        TrialOutcome::Detected => Outcome::Detected,
        TrialOutcome::CorrectedRight => Outcome::Corrected,
        TrialOutcome::Miscorrected => Outcome::Miscorrected,
    }
}

/// The scalar columnar path for strike counts other than 2: per-strike
/// column fills consumed one trial at a time through
/// [`msed_inline_trial`], with lazily drawn check values. (The k = 2 hot
/// path uses the pair-packed fully-columnar scheme in
/// [`muse_msed_columnar_k2`] instead.)
fn muse_msed_columnar_scalar(
    kernel: &muse_core::SyndromeKernel,
    plan: &TrialPlan,
    uniform_pattern: Bounded32,
    k: usize,
    config: MsedConfig,
) -> MsedStats {
    const BLOCK: usize = SimEngine::TRIAL_BLOCK as usize;
    let content16 = crate::rng::Bounded32::new(1 << 16);
    SimEngine::new(config.threads).run_blocked(
        config.seed,
        config.trials,
        || {
            (
                vec![0u32; k * BLOCK],
                vec![0u32; k * BLOCK],
                vec![0u32; k * BLOCK],
            )
        },
        |range, rng, (sym_col, pat_col, cnt_col), stats: &mut MsedStats| {
            let len = (range.end - range.start) as usize;
            for i in 0..k {
                plan.pick(i).fill(rng, &mut sym_col[i * len..(i + 1) * len]);
            }
            uniform_pattern.fill(rng, &mut pat_col[..k * len]);
            content16.fill(rng, &mut cnt_col[..k * len]);
            let mut draws = [(0u32, 0u16, 0u16); fastpath::MAX_STRIKES];
            for t in 0..len {
                for (i, draw) in draws[..k].iter_mut().enumerate() {
                    *draw = (
                        sym_col[i * len + t],
                        1 + pat_col[i * len + t] as u16,
                        cnt_col[i * len + t] as u16,
                    );
                }
                // A fresh trial record per trial: local and non-escaping,
                // so its stores stay in registers.
                let mut trial = InlineTrial::default();
                stats.record(outcome_of(msed_inline_trial(
                    kernel,
                    plan.x_pick(),
                    rng,
                    &mut trial,
                    &draws[..k],
                )));
            }
        },
    )
}

/// [`muse_msed`] forced down the draw-for-draw scalar columnar path — the
/// lane kernel's bit-exactness oracle. Not part of the public API; exposed
/// for the `lane_equivalence` integration suite (and anyone auditing the
/// SIMD path), which asserts `muse_msed == muse_msed_scalar` tally-for-tally
/// on every preset, trial count, and thread count.
#[doc(hidden)]
pub fn muse_msed_scalar(code: &MuseCode, config: MsedConfig) -> MsedStats {
    let kernel = crate::require_kernel(code, "MSED");
    let k = config.failing_devices;
    assert!(
        k <= fastpath::MAX_STRIKES,
        "the scalar reference covers the fixed-capacity path only"
    );
    let plan = TrialPlan::new(kernel, k);
    match plan.uniform_pattern() {
        // Mixed-width layouts never take the lane kernel; the public entry
        // point already runs the scalar path.
        None => muse_msed(code, config),
        Some(_) if k == 2 && k2_quad_bound(kernel).is_some() => {
            muse_msed_columnar_k2(kernel, k2_quad_bound(kernel).unwrap(), config, true)
        }
        Some(uniform_pattern) => {
            muse_msed_columnar_scalar(kernel, &plan, uniform_pattern, k, config)
        }
    }
}

/// How an RS "correction" of a beyond-model error is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsDetectMode {
    /// Any successful single-symbol correction counts as a (silent)
    /// miscorrection — the plain symbol-domain reading of the decoder.
    SymbolSyndromes,
    /// A correction only counts as a miscorrection when its error pattern is
    /// confined to a single physical device; otherwise the controller knows
    /// the correction is impossible under the ChipKill error model and
    /// flags it (the reading that matches the paper's Table IV numbers).
    DeviceConfined,
}

/// Estimates the MSED rate of a Reed-Solomon memory code against
/// `device_bits`-wide physical device failures (x4 ⇒ 4).
///
/// Both `t` values run in the error-value domain: a trial folds the device
/// patterns into per-RS-symbol error values, accumulates the `2t` GF
/// syndromes from the incremental table
/// ([`RsMemoryCode::error_syndromes`]), and classifies through the
/// syndrome-domain PGZ location
/// ([`muse_rs::RsCode::locate_errors_fixed`]) without ever encoding a
/// codeword — symbol contents are only sampled in the rare
/// shortened-top-symbol range check. The wide encode/decode pipeline
/// survives as the property-test oracle only.
pub fn rs_msed(
    code: &RsMemoryCode,
    device_bits: u32,
    mode: RsDetectMode,
    config: MsedConfig,
) -> MsedStats {
    let n_devices = (code.n_bits() / device_bits) as usize;
    let ctx = RsFastMsed::new(code, device_bits, mode);
    let k = config.failing_devices;
    assert!(k <= n_devices, "cannot corrupt {k} of {n_devices} devices");
    if k > fastpath::MAX_STRIKES {
        // Beyond the fixed-capacity arrays: Vec-based distinct sampling,
        // same error-domain classification backend.
        return SimEngine::new(config.threads).run_blocked(
            config.seed,
            config.trials,
            || (Vec::new(), Vec::new()),
            |range, rng, (strikes, errors), stats: &mut MsedStats| {
                for _ in range {
                    strikes.clear();
                    for dev in rng.choose_k(n_devices, k) {
                        strikes.push((dev, rng.nonzero_below(1 << device_bits) as u16));
                    }
                    errors.clear();
                    ctx.fold_into(strikes, errors);
                    stats.record(ctx.classify_errors(rng, errors).0);
                }
            },
        );
    }
    // Structure-of-arrays draws, like the MUSE fast path: whole columns of
    // device picks and patterns fill per 1024-trial block, and the live
    // block RNG is touched per trial only by the rare shortened-top
    // content check inside `classify_errors`.
    let picks: Vec<Bounded32> = (0..k)
        .map(|i| Bounded32::new((ctx.n_devices - i) as u32))
        .collect();
    let pattern_pick = Bounded32::new((1u32 << device_bits) - 1);
    const BLOCK: usize = SimEngine::TRIAL_BLOCK as usize;
    SimEngine::new(config.threads).run_blocked(
        config.seed,
        config.trials,
        || (vec![0u32; k * BLOCK], vec![0u32; k * BLOCK]),
        |range, rng, (dev_col, pat_col), stats: &mut MsedStats| {
            let len = (range.end - range.start) as usize;
            for (i, pick) in picks.iter().enumerate() {
                pick.fill(rng, &mut dev_col[i * len..(i + 1) * len]);
            }
            pattern_pick.fill(rng, &mut pat_col[..k * len]);
            for t in 0..len {
                let mut chosen = [0usize; fastpath::MAX_STRIKES];
                let mut strikes = [(0usize, 0u16); fastpath::MAX_STRIKES];
                for (i, strike) in strikes[..k].iter_mut().enumerate() {
                    let dev = place_distinct(&mut chosen, i, dev_col[i * len + t] as usize);
                    *strike = (dev, 1 + pat_col[i * len + t] as u16);
                }
                stats.record(ctx.classify(rng, &strikes[..k]).0);
            }
        },
    )
}

/// Error-domain MSED classification context for RS memory codes (both `t`
/// values — the `t = 2` wide-PGZ-per-trial fallback is retired).
struct RsFastMsed<'a> {
    code: &'a RsMemoryCode,
    device_bits: u32,
    mode: RsDetectMode,
    n_devices: usize,
    /// Per-device `(first RS symbol, bit offset within it)`.
    splits: Vec<(usize, u32)>,
    /// Whether every device lies inside a single RS symbol (device width
    /// divides symbol width): the straddle-free fold fast path.
    nested: bool,
    symbol_bits: u32,
    /// `2t` — syndromes consumed / first data symbol.
    parity: usize,
    top: usize,
    top_mask: u16,
}

impl<'a> RsFastMsed<'a> {
    fn new(code: &'a RsMemoryCode, device_bits: u32, mode: RsDetectMode) -> Self {
        let n_devices = (code.n_bits() / device_bits) as usize;
        let symbol_bits = code.symbol_bits();
        Self {
            code,
            device_bits,
            mode,
            n_devices,
            splits: (0..n_devices as u32)
                .map(|dev| {
                    let base = dev * device_bits;
                    ((base / symbol_bits) as usize, base % symbol_bits)
                })
                .collect(),
            nested: symbol_bits.is_multiple_of(device_bits),
            symbol_bits,
            parity: 2 * code.inner().t(),
            top: code.n_symbols() - 1,
            top_mask: ((1u32 << code.top_symbol_bits()) - 1) as u16,
        }
    }

    /// Folds device strikes into per-RS-symbol error chunks, emitting each
    /// nonzero `(symbol, value)` chunk through `sink` (a device may
    /// straddle several symbols — e.g. x8 devices on 5-bit symbols span
    /// three; adjacent devices may share one, so sinks XOR-merge by
    /// symbol).
    #[inline]
    fn fold(&self, strikes: &[(usize, u16)], mut sink: impl FnMut(usize, u16)) {
        let sym_mask = (1u32 << self.symbol_bits) - 1;
        for &(dev, pattern) in strikes {
            let (mut sym, shift) = self.splits[dev];
            let mut bits = (pattern as u32) << shift;
            while bits != 0 {
                let val = (bits & sym_mask) as u16;
                if val != 0 {
                    sink(sym, val);
                }
                bits >>= self.symbol_bits;
                sym += 1;
            }
        }
    }

    /// [`Self::fold`] into a `Vec` sink (the arbitrary-`k` path).
    fn fold_into(&self, strikes: &[(usize, u16)], errors: &mut Vec<(usize, u16)>) {
        self.fold(strikes, |sym, val| {
            match errors.iter_mut().find(|e| e.0 == sym) {
                Some(e) => e.1 ^= val,
                None => errors.push((sym, val)),
            }
        });
    }

    /// Classifies one trial given its device strikes (fixed-capacity fold:
    /// `MAX_STRIKES` devices of ≤ 16 bits over ≥ 2-bit symbols touch at
    /// most 64 symbols).
    fn classify(&self, rng: &mut Rng, strikes: &[(usize, u16)]) -> (Outcome, Option<u16>) {
        if self.nested {
            // Devices nest inside symbols: each strike lands in exactly one
            // symbol, so `MAX_STRIKES` entries suffice and the per-trial
            // scratch shrinks from 64 slots (1 KiB of zeroing) to 8.
            let mut errors = [(0usize, 0u16); fastpath::MAX_STRIKES];
            let mut n_errors = 0usize;
            for &(dev, pattern) in strikes {
                let (sym, shift) = self.splits[dev];
                let val = pattern << shift;
                if let Some(e) = errors[..n_errors].iter_mut().find(|e| e.0 == sym) {
                    e.1 ^= val;
                } else {
                    errors[n_errors] = (sym, val);
                    n_errors += 1;
                }
            }
            return self.classify_errors(rng, &errors[..n_errors]);
        }
        let mut errors = [(0usize, 0u16); 64];
        let mut n_errors = 0usize;
        self.fold(strikes, |sym, val| {
            if let Some(e) = errors[..n_errors].iter_mut().find(|e| e.0 == sym) {
                e.1 ^= val;
            } else {
                errors[n_errors] = (sym, val);
                n_errors += 1;
            }
        });
        self.classify_errors(rng, &errors[..n_errors])
    }

    /// Classifies one trial from its folded per-symbol error values,
    /// reproducing the wide `encode → corrupt → decode` classification
    /// exactly (property-tested against it below). Symbol contents never
    /// enter the decision except through the shortened-top range check,
    /// where the top content is sampled uniformly on demand — the sampled
    /// value (if any) is returned for reference reconstruction.
    fn classify_errors(&self, rng: &mut Rng, errors: &[(usize, u16)]) -> (Outcome, Option<u16>) {
        let synd = self.code.error_syndromes(errors);
        let synd = &synd[..self.parity];
        if synd.iter().all(|&s| s == 0) {
            return (Outcome::Silent, None);
        }
        let Some(located) = self.code.inner().locate_errors_fixed(synd) else {
            return (Outcome::Detected, None);
        };
        let corrections = located.corrections();
        let injected_at = |pos: usize| {
            errors
                .iter()
                .find(|&&(s, _)| s == pos)
                .map_or(0, |&(_, e)| e)
        };
        let mut top_content = None;
        for &(symbol, value) in corrections {
            if symbol == self.top {
                // Shortened-code check: sample the top symbol's stored
                // content and reject corrections escaping its width.
                let original = rng.next_u64() as u16 & self.top_mask;
                top_content = Some(original);
                if original ^ injected_at(symbol) ^ value > self.top_mask {
                    return (Outcome::Detected, top_content);
                }
            }
        }
        // The read is right iff the corrections cancel the injected
        // corruption on every data symbol (positions ≥ 2t).
        let corrected_at = |pos: usize| {
            corrections
                .iter()
                .find(|&&(s, _)| s == pos)
                .map_or(0, |&(_, v)| v)
        };
        let wrong = errors
            .iter()
            .map(|&(s, _)| s)
            .chain(corrections.iter().map(|&(s, _)| s))
            .filter(|&s| s >= self.parity)
            .any(|s| injected_at(s) ^ corrected_at(s) != 0);
        let outcome = if !wrong {
            Outcome::Corrected
        } else {
            match self.mode {
                RsDetectMode::SymbolSyndromes => Outcome::Miscorrected,
                RsDetectMode::DeviceConfined => {
                    if corrections.iter().all(|&(symbol, value)| {
                        error_confined_to_device(self.code, self.device_bits, symbol, value)
                    }) {
                        Outcome::Miscorrected
                    } else {
                        Outcome::Detected
                    }
                }
            }
        };
        (outcome, top_content)
    }
}

/// Wide-decode outcome classification: the property-test oracle the
/// error-domain path is validated against (the retired runtime fallback).
#[cfg(test)]
fn classify_rs_wide(
    code: &RsMemoryCode,
    device_bits: u32,
    mode: RsDetectMode,
    payload: &Word,
    corrupted: &Word,
) -> Outcome {
    match code.decode(corrupted) {
        RsMemoryDecoded::Detected => Outcome::Detected,
        RsMemoryDecoded::Clean { .. } => Outcome::Silent,
        RsMemoryDecoded::Corrected {
            payload: p,
            ref errors,
        } => {
            if p == *payload {
                Outcome::Corrected
            } else {
                match mode {
                    RsDetectMode::SymbolSyndromes => Outcome::Miscorrected,
                    RsDetectMode::DeviceConfined => {
                        if errors.iter().all(|&(sym, val)| {
                            error_confined_to_device(code, device_bits, sym, val)
                        }) {
                            Outcome::Miscorrected
                        } else {
                            Outcome::Detected
                        }
                    }
                }
            }
        }
    }
}

/// Whether an RS symbol-error value only touches bits of one
/// `device_bits`-wide physical device.
fn error_confined_to_device(
    code: &RsMemoryCode,
    device_bits: u32,
    symbol: usize,
    value: u16,
) -> bool {
    let base = symbol as u32 * code.symbol_bits();
    let mut devices = std::collections::HashSet::new();
    for bit in 0..code.symbol_bits() {
        if value >> bit & 1 == 1 {
            devices.insert((base + bit) / device_bits);
        }
    }
    devices.len() <= 1
}

/// A `Word` with uniformly random low `bits`.
pub fn random_payload(rng: &mut Rng, bits: u32) -> Word {
    let mut limbs = [0u64; 5];
    for limb in &mut limbs {
        *limb = rng.next_u64();
    }
    Word::from_limbs(limbs) & Word::mask(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    fn quick(trials: u64) -> MsedConfig {
        MsedConfig {
            trials,
            ..MsedConfig::default()
        }
    }

    #[test]
    fn stats_accounting() {
        let mut s = MsedStats::default();
        s.record(Outcome::Detected);
        s.record(Outcome::Detected);
        s.record(Outcome::Miscorrected);
        s.record(Outcome::Silent);
        s.record(Outcome::Corrected); // excluded from the rate
        assert_eq!(s.total(), 5);
        assert!((s.detection_rate() - 50.0).abs() < 1e-9);
        assert_eq!(MsedStats::default().detection_rate(), 0.0);
    }

    #[test]
    fn muse_single_device_never_counts() {
        // With k = 1 every injected error is in-model: corrected, never
        // detected as uncorrectable. (Sanity check on the harness itself.)
        let stats = muse_msed(
            &presets::muse_80_69(),
            MsedConfig {
                failing_devices: 1,
                trials: 300,
                seed: 1,
                threads: 0,
            },
        );
        assert_eq!(stats.corrected, 300);
        assert_eq!(stats.detected, 0);
        assert_eq!(stats.miscorrected, 0);
        assert_eq!(stats.silent, 0);
    }

    #[test]
    fn muse_double_device_rate_near_table4() {
        // Table IV: MUSE(144,132) (extra bits = 4) detects 86.71% of
        // double-device errors.
        let stats = muse_msed(&presets::muse_144_132(), quick(4_000));
        let rate = stats.detection_rate();
        assert!((80.0..93.0).contains(&rate), "rate {rate}");
        assert_eq!(stats.total(), 4_000);
        assert_eq!(
            stats.silent, 0,
            "odd multipliers cannot alias nibble sums to zero"
        );
    }

    #[test]
    fn muse_large_multiplier_detects_more() {
        // Table IV's headline trade-off: MUSE(144,128) with m = 65519
        // detects ~99.17%, far above MUSE(144,132)'s ~86.71%.
        let big = muse_msed(&presets::muse_144_128(), quick(3_000));
        let small = muse_msed(&presets::muse_144_132(), quick(3_000));
        assert!(big.detection_rate() > small.detection_rate() + 5.0);
        assert!(big.detection_rate() > 97.0, "got {}", big.detection_rate());
    }

    #[test]
    fn rs_device_confined_beats_symbol_mode() {
        let code = RsMemoryCode::new(8, 144, 1).unwrap();
        let symbol = rs_msed(&code, 4, RsDetectMode::SymbolSyndromes, quick(3_000));
        let device = rs_msed(&code, 4, RsDetectMode::DeviceConfined, quick(3_000));
        assert!(device.detection_rate() >= symbol.detection_rate());
        // Long-run estimate is ~96.8%; leave ~4σ of Monte-Carlo headroom.
        assert!(
            device.detection_rate() > 95.5,
            "got {}",
            device.detection_rate()
        );
    }

    #[test]
    fn rs_small_symbols_detect_much_less() {
        // The Table IV trend: 5-bit-symbol RS loses most of its detection.
        let rs8 = rs_msed(
            &RsMemoryCode::new(8, 144, 1).unwrap(),
            4,
            RsDetectMode::DeviceConfined,
            quick(2_000),
        );
        let rs5 = rs_msed(
            &RsMemoryCode::new(5, 144, 1).unwrap(),
            4,
            RsDetectMode::DeviceConfined,
            quick(2_000),
        );
        assert!(
            rs5.detection_rate() < rs8.detection_rate() - 10.0,
            "rs5 {} vs rs8 {}",
            rs5.detection_rate(),
            rs8.detection_rate()
        );
    }

    /// The error-domain RS classification against the wide reference: a
    /// trial's device strikes plus its (lazily sampled) top-symbol content
    /// fully determine the outcome, so reconstruct a payload consistent
    /// with the observation, run the real encode → corrupt → decode
    /// pipeline, and compare — across geometries, shortened tops, both
    /// detect modes, and both `t` values (the `t = 2` wide fallback is
    /// retired; this oracle is all that remains of it).
    #[test]
    fn rs_fast_classification_matches_wide() {
        for (sym_bits, device_bits, t) in [
            (8u32, 4u32, 1usize),
            (5, 4, 1),
            (8, 8, 1),
            (6, 4, 1),
            (5, 8, 1), // x8 device straddles THREE 5-bit symbols
            (8, 4, 2),
            (8, 8, 2),
            (5, 4, 2),
            (5, 8, 2),
        ] {
            let code = RsMemoryCode::new(sym_bits, 144, t).unwrap();
            for mode in [RsDetectMode::SymbolSyndromes, RsDetectMode::DeviceConfined] {
                let ctx = RsFastMsed::new(&code, device_bits, mode);
                let mut rng = Rng::seeded(0x5EED ^ sym_bits as u64 ^ (t as u64) << 32);
                for trial in 0..400u64 {
                    let k = 1 + (trial % 4) as usize;
                    let mut strikes: Vec<(usize, u16)> = Vec::new();
                    while strikes.len() < k {
                        let dev = rng.below(ctx.n_devices as u64) as usize;
                        if strikes.iter().any(|&(d, _)| d == dev) {
                            continue;
                        }
                        let pattern = rng.nonzero_below(1 << device_bits) as u16;
                        strikes.push((dev, pattern));
                    }
                    let (fast, top_content) = ctx.classify(&mut rng, &strikes);

                    // A payload consistent with the observation: the top
                    // symbol holds the sampled content (or anything, when
                    // none was sampled), everything else zero.
                    let top_offset = code.data_bits() - code.top_symbol_bits();
                    let payload = Word::from(top_content.unwrap_or(0) as u64) << top_offset;
                    let cw = code.encode(&payload);
                    let mut corrupted = cw;
                    for &(dev, pattern) in &strikes {
                        corrupted =
                            corrupted ^ (Word::from(pattern as u64) << (dev as u32 * device_bits));
                    }
                    let wide = classify_rs_wide(&code, device_bits, mode, &payload, &corrupted);
                    assert_eq!(
                        fast, wide,
                        "s={sym_bits} db={device_bits} t={t} {mode:?} trial {trial}: {strikes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn many_failing_devices_take_the_generic_content_path() {
        // k beyond the fixed-capacity inline arrays routes through the
        // Vec-based distinct sampler — still syndrome-domain, no wide
        // words, no panic.
        let config = MsedConfig {
            failing_devices: 10,
            trials: 200,
            seed: 3,
            threads: 1,
        };
        let stats = muse_msed(&presets::muse_144_132(), config);
        assert_eq!(stats.total(), 200);
        // ~1080/4065 ≈ 27% of random syndromes alias into the ELC; the
        // rest are detected.
        let rate = stats.detection_rate();
        assert!((60.0..95.0).contains(&rate), "rate {rate}");
        for t in [1usize, 2] {
            let rs = RsMemoryCode::new(8, 144, t).unwrap();
            let stats = rs_msed(&rs, 4, RsDetectMode::DeviceConfined, config);
            assert_eq!(stats.total(), 200, "t={t}");
        }
    }

    #[test]
    fn rs_t2_corrects_double_device_errors_in_syndrome_space() {
        // A t = 2 code corrects any two-device strike nested inside two RS
        // symbols — the case the retired wide-PGZ fallback used to decode
        // per trial.
        let code = RsMemoryCode::new(8, 144, 2).unwrap();
        let stats = rs_msed(
            &code,
            8, // x8 devices == whole symbols: every 2-device error in-model
            RsDetectMode::SymbolSyndromes,
            quick(2_000),
        );
        assert_eq!(stats.corrected, 2_000, "{stats:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = muse_msed(&presets::muse_80_69(), quick(500));
        let b = muse_msed(&presets::muse_80_69(), quick(500));
        assert_eq!(a, b);
    }

    #[test]
    fn triple_device_errors_still_mostly_detected() {
        let stats = muse_msed(
            &presets::muse_144_128(),
            MsedConfig {
                failing_devices: 3,
                trials: 2_000,
                seed: 9,
                threads: 0,
            },
        );
        assert!(stats.detection_rate() > 95.0);
    }
}
