//! The shared Monte-Carlo execution engine: batched trials over scoped
//! worker threads with counter-based per-trial RNG streams.
//!
//! # Determinism contract
//!
//! Every trial `i` of a run seeded with `s` draws randomness exclusively
//! from [`Rng::for_trial`]`(s, i)` — a pure function of `(s, i)`. Trial
//! outcomes therefore do not depend on which worker executes them or in
//! what order, and per-worker tallies are merged in ascending trial-range
//! order. A simulation produces **bit-identical results at any thread
//! count**, including `threads = 1`; `faultsim/tests/determinism.rs` pins
//! this property for every simulator.
//!
//! This generalizes the chunked `std::thread::scope` pattern proven in
//! `muse-core`'s multiplier search to stateful Monte-Carlo loops: workers
//! own a scratch value (built per worker by `init`) and a local tally, and
//! the engine merges the tallies at join time.

use crate::Rng;

/// A mergeable accumulation of trial outcomes.
pub trait Tally: Default + Send {
    /// Folds another tally (from a later trial range) into this one.
    fn merge(&mut self, other: Self);
}

/// Trial scheduler: splits `trials` across scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEngine {
    threads: usize,
}

impl Default for SimEngine {
    /// One worker per available CPU.
    fn default() -> Self {
        Self::new(0)
    }
}

impl SimEngine {
    /// An engine with a fixed worker count (`0` ⇒ one per available CPU).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Runs `trials` scratchless trials and merges their tallies.
    pub fn run<T, F>(&self, seed: u64, trials: u64, trial: F) -> T
    where
        T: Tally,
        F: Fn(u64, &mut Rng, &mut T) + Sync,
    {
        self.run_with(
            seed,
            trials,
            || (),
            |i, rng, (), tally| trial(i, rng, tally),
        )
    }

    /// Runs `trials` trials with per-worker scratch state and merges their
    /// tallies.
    ///
    /// `init` builds one scratch value per worker (reused across that
    /// worker's trials — allocate buffers here, not per trial); `trial`
    /// receives the global trial index, the trial's private RNG stream, the
    /// scratch, and the worker-local tally.
    pub fn run_with<T, S, I, F>(&self, seed: u64, trials: u64, init: I, trial: F) -> T
    where
        T: Tally,
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut Rng, &mut S, &mut T) + Sync,
    {
        let run_range = |lo: u64, hi: u64| -> T {
            let mut scratch = init();
            let mut tally = T::default();
            for i in lo..hi {
                let mut rng = Rng::for_trial(seed, i);
                trial(i, &mut rng, &mut scratch, &mut tally);
            }
            tally
        };

        let threads = self.threads().min(trials.max(1) as usize);
        // Below this, thread spawn overhead outweighs the work split.
        if threads <= 1 || trials < 256 {
            return run_range(0, trials);
        }
        let chunk = trials.div_ceil(threads as u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|w| {
                    let run_range = &run_range;
                    let lo = w * chunk;
                    let hi = (lo + chunk).min(trials);
                    scope.spawn(move || run_range(lo, hi))
                })
                .collect();
            let mut total = T::default();
            for handle in handles {
                total.merge(handle.join().expect("simulation worker panicked"));
            }
            total
        })
    }
}

impl Tally for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl<A: Tally, B: Tally> Tally for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_across_thread_counts() {
        let run = |threads| {
            SimEngine::new(threads).run::<u64, _>(99, 10_000, |_, rng, acc| {
                *acc += rng.below(1000);
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
        assert_eq!(serial, run(0));
    }

    #[test]
    fn trial_index_streams_are_independent_of_chunking() {
        // Sum of f(i, rng_i) must equal the serial fold in index order.
        let expected: u64 = (0..5_000u64)
            .map(|i| Rng::for_trial(5, i).below(i + 1))
            .sum();
        let engine = SimEngine::new(3);
        let measured = engine.run::<u64, _>(5, 5_000, |i, rng, acc| {
            *acc += rng.below(i + 1);
        });
        assert_eq!(measured, expected);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // The scratch buffer must not be rebuilt per trial: count inits.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let engine = SimEngine::new(2);
        let total: u64 = engine.run_with(
            1,
            4_096,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::with_capacity(16)
            },
            |_, _, scratch, acc: &mut u64| {
                scratch.clear();
                scratch.push(1);
                *acc += scratch.len() as u64;
            },
        );
        assert_eq!(total, 4_096);
        assert_eq!(inits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn small_runs_stay_serial() {
        // Fewer trials than the parallel threshold: still correct.
        let engine = SimEngine::new(8);
        let total = engine.run::<u64, _>(3, 10, |_, _, acc| *acc += 1);
        assert_eq!(total, 10);
    }

    #[test]
    fn zero_trials() {
        let engine = SimEngine::default();
        assert_eq!(engine.run::<u64, _>(1, 0, |_, _, acc| *acc += 1), 0);
        assert!(engine.threads() >= 1);
    }
}
