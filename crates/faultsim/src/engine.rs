//! The shared Monte-Carlo execution engine: batched trials over scoped
//! worker threads with counter-based per-trial RNG streams.
//!
//! # Determinism contract
//!
//! Every trial `i` of a run seeded with `s` draws randomness exclusively
//! from [`Rng::for_trial`]`(s, i)` — a pure function of `(s, i)`. Trial
//! outcomes therefore do not depend on which worker executes them or in
//! what order, and per-worker tallies are merged in ascending trial-range
//! order. A simulation produces **bit-identical results at any thread
//! count**, including `threads = 1`; `faultsim/tests/determinism.rs` pins
//! this property for every simulator.
//!
//! This generalizes the chunked `std::thread::scope` pattern proven in
//! `muse-core`'s multiplier search to stateful Monte-Carlo loops: workers
//! own a scratch value (built per worker by `init`) and a local tally, and
//! the engine merges the tallies at join time.

use crate::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of completed trials across every [`SimEngine`] run.
///
/// Workers add their whole chunk once at chunk completion — never inside
/// the trial loop — so the counter costs one relaxed atomic add per
/// worker-chunk and cannot perturb trial outcomes (it touches no RNG
/// stream). Observability consumers (the `muse-telemetry` metrics
/// registry) snapshot it to derive trials/s.
static TRIALS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Total trials completed by every engine run in this process so far.
///
/// Monotone; read it twice around a workload to get a delta for a
/// throughput estimate.
pub fn trials_completed() -> u64 {
    TRIALS_COMPLETED.load(Ordering::Relaxed)
}

/// A mergeable accumulation of trial outcomes.
pub trait Tally: Default + Send {
    /// Folds another tally (from a later trial range) into this one.
    fn merge(&mut self, other: Self);
}

/// Trial scheduler: splits `trials` across scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEngine {
    threads: usize,
}

impl Default for SimEngine {
    /// One worker per available CPU.
    fn default() -> Self {
        Self::new(0)
    }
}

impl SimEngine {
    /// Trials per block in [`Self::run_blocked`].
    ///
    /// A fixed constant of the determinism contract: block `b` always covers
    /// trials `[b·TRIAL_BLOCK, (b+1)·TRIAL_BLOCK)` regardless of worker
    /// count, and draws exclusively from [`Rng::for_block`]`(seed, b)`.
    pub const TRIAL_BLOCK: u64 = 1024;

    /// An engine with a fixed worker count (`0` ⇒ one per available CPU).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Runs `trials` scratchless trials and merges their tallies.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_faultsim::SimEngine;
    ///
    /// // Estimate P(two dice agree) from 10 000 trials on all CPUs.
    /// let roll = |_i: u64, rng: &mut muse_faultsim::Rng, hits: &mut u64| {
    ///     if rng.below(6) == rng.below(6) {
    ///         *hits += 1;
    ///     }
    /// };
    /// let hits: u64 = SimEngine::default().run(7, 10_000, roll);
    /// // The determinism contract: bit-identical at any worker count.
    /// assert_eq!(hits, SimEngine::new(1).run(7, 10_000, roll));
    /// assert!((hits as f64 / 10_000.0 - 1.0 / 6.0).abs() < 0.02);
    /// ```
    pub fn run<T, F>(&self, seed: u64, trials: u64, trial: F) -> T
    where
        T: Tally,
        F: Fn(u64, &mut Rng, &mut T) + Sync,
    {
        self.run_with(
            seed,
            trials,
            || (),
            |i, rng, (), tally| trial(i, rng, tally),
        )
    }

    /// Runs `trials` trials in fixed-size blocks sharing one RNG stream per
    /// block, and merges the per-block tallies.
    ///
    /// This is the engine's *batched-draw* mode: where [`Self::run_with`]
    /// constructs a fresh [`Rng::for_trial`] state per trial, a blocked run
    /// constructs one [`Rng::for_block`] stream per [`Self::TRIAL_BLOCK`]
    /// trials and lets the block body draw from it sequentially (including
    /// variable-length rejection sampling — consumption may differ per
    /// trial). Because block boundaries are a fixed constant and workers are
    /// assigned whole blocks, results remain **bit-identical at any thread
    /// count**.
    ///
    /// `block` receives the global trial-index range of the block, the
    /// block's private RNG stream, the worker scratch, and the worker-local
    /// tally; it must process the trials of `range` in ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_faultsim::SimEngine;
    ///
    /// let heads: u64 = SimEngine::new(2).run_blocked(
    ///     7,
    ///     10_000,
    ///     || (),
    ///     |range, rng, (), tally| {
    ///         for _ in range {
    ///             *tally += rng.next_u64() & 1;
    ///         }
    ///     },
    /// );
    /// assert_eq!(heads, SimEngine::new(1).run_blocked(7, 10_000, || (), |range, rng, (), tally: &mut u64| {
    ///     for _ in range { *tally += rng.next_u64() & 1; }
    /// }));
    /// ```
    pub fn run_blocked<T, S, I, F>(&self, seed: u64, trials: u64, init: I, block: F) -> T
    where
        T: Tally,
        I: Fn() -> S + Sync,
        F: Fn(std::ops::Range<u64>, &mut Rng, &mut S, &mut T) + Sync,
    {
        const B: u64 = SimEngine::TRIAL_BLOCK;
        let run_blocks = |lo_block: u64, hi_block: u64| -> T {
            let mut scratch = init();
            let mut tally = T::default();
            for b in lo_block..hi_block {
                let mut rng = Rng::for_block(seed, b);
                let range = b * B..((b + 1) * B).min(trials);
                block(range, &mut rng, &mut scratch, &mut tally);
            }
            let lo = lo_block * B;
            let hi = (hi_block * B).min(trials);
            TRIALS_COMPLETED.fetch_add(hi.saturating_sub(lo), Ordering::Relaxed);
            tally
        };

        let blocks = trials.div_ceil(B);
        let threads = self.threads().min(blocks.max(1) as usize);
        if threads <= 1 {
            return run_blocks(0, blocks);
        }
        let chunk = blocks.div_ceil(threads as u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|w| {
                    let run_blocks = &run_blocks;
                    let lo = w * chunk;
                    let hi = (lo + chunk).min(blocks);
                    scope.spawn(move || run_blocks(lo, hi))
                })
                .collect();
            let mut total = T::default();
            for handle in handles {
                total.merge(handle.join().expect("simulation worker panicked"));
            }
            total
        })
    }

    /// Runs `trials` trials with per-worker scratch state and merges their
    /// tallies.
    ///
    /// `init` builds one scratch value per worker (reused across that
    /// worker's trials — allocate buffers here, not per trial); `trial`
    /// receives the global trial index, the trial's private RNG stream, the
    /// scratch, and the worker-local tally.
    pub fn run_with<T, S, I, F>(&self, seed: u64, trials: u64, init: I, trial: F) -> T
    where
        T: Tally,
        I: Fn() -> S + Sync,
        F: Fn(u64, &mut Rng, &mut S, &mut T) + Sync,
    {
        let run_range = |lo: u64, hi: u64| -> T {
            let mut scratch = init();
            let mut tally = T::default();
            for i in lo..hi {
                let mut rng = Rng::for_trial(seed, i);
                trial(i, &mut rng, &mut scratch, &mut tally);
            }
            TRIALS_COMPLETED.fetch_add(hi - lo, Ordering::Relaxed);
            tally
        };

        let threads = self.threads().min(trials.max(1) as usize);
        // Below this, thread spawn overhead outweighs the work split.
        if threads <= 1 || trials < 256 {
            return run_range(0, trials);
        }
        let chunk = trials.div_ceil(threads as u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads as u64)
                .map(|w| {
                    let run_range = &run_range;
                    let lo = w * chunk;
                    let hi = (lo + chunk).min(trials);
                    scope.spawn(move || run_range(lo, hi))
                })
                .collect();
            let mut total = T::default();
            for handle in handles {
                total.merge(handle.join().expect("simulation worker panicked"));
            }
            total
        })
    }
}

impl Tally for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

impl<A: Tally, B: Tally> Tally for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_across_thread_counts() {
        let run = |threads| {
            SimEngine::new(threads).run::<u64, _>(99, 10_000, |_, rng, acc| {
                *acc += rng.below(1000);
            })
        };
        let serial = run(1);
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(7));
        assert_eq!(serial, run(0));
    }

    #[test]
    fn trial_index_streams_are_independent_of_chunking() {
        // Sum of f(i, rng_i) must equal the serial fold in index order.
        let expected: u64 = (0..5_000u64)
            .map(|i| Rng::for_trial(5, i).below(i + 1))
            .sum();
        let engine = SimEngine::new(3);
        let measured = engine.run::<u64, _>(5, 5_000, |i, rng, acc| {
            *acc += rng.below(i + 1);
        });
        assert_eq!(measured, expected);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // The scratch buffer must not be rebuilt per trial: count inits.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let engine = SimEngine::new(2);
        let total: u64 = engine.run_with(
            1,
            4_096,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::with_capacity(16)
            },
            |_, _, scratch, acc: &mut u64| {
                scratch.clear();
                scratch.push(1);
                *acc += scratch.len() as u64;
            },
        );
        assert_eq!(total, 4_096);
        assert_eq!(inits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn blocked_runs_identical_across_thread_counts() {
        // Variable per-trial draw consumption (rejection-style) must not
        // break thread-count invariance: blocks are fixed.
        let run = |threads| {
            SimEngine::new(threads).run_blocked::<u64, _, _, _>(
                42,
                10_000,
                || (),
                |range, rng, (), acc| {
                    for i in range {
                        let mut draws = 1 + (i % 3);
                        while draws > 0 {
                            *acc += rng.below(100);
                            draws -= 1;
                        }
                    }
                },
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
        assert_eq!(serial, run(0));
    }

    #[test]
    fn blocked_ranges_cover_all_trials_exactly_once() {
        let trials = 2 * SimEngine::TRIAL_BLOCK + 137;
        let count: u64 = SimEngine::new(3).run_blocked(
            1,
            trials,
            || (),
            |range, _, (), acc: &mut u64| {
                assert!(range.end <= trials);
                assert!(range.start < range.end);
                *acc += range.end - range.start;
            },
        );
        assert_eq!(count, trials);
        // Zero trials: no blocks at all.
        let none: u64 = SimEngine::new(3).run_blocked(1, 0, || (), |_, _, (), acc| *acc += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn blocked_scratch_is_reused_within_a_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let total: u64 = SimEngine::new(2).run_blocked(
            1,
            4 * SimEngine::TRIAL_BLOCK,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |range, _, (), acc| *acc += range.end - range.start,
        );
        assert_eq!(total, 4 * SimEngine::TRIAL_BLOCK);
        assert_eq!(inits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn small_runs_stay_serial() {
        // Fewer trials than the parallel threshold: still correct.
        let engine = SimEngine::new(8);
        let total = engine.run::<u64, _>(3, 10, |_, _, acc| *acc += 1);
        assert_eq!(total, 10);
    }

    #[test]
    fn zero_trials() {
        let engine = SimEngine::default();
        assert_eq!(engine.run::<u64, _>(1, 0, |_, _, acc| *acc += 1), 0);
        assert!(engine.threads() >= 1);
    }
}
