//! Reproducibility pins: exact Monte-Carlo tallies for fixed seeds.
//!
//! These values are not "correct" in any absolute sense — they pin the
//! composed behaviour of the PRNG, the error injection, and the decoder so
//! that any unintended change to one of them is caught immediately. If you
//! change the PRNG stream or injection order *on purpose*, update the pins
//! and say so in the changelog.
//!
//! (The pins were re-baselined when the simulators moved to the parallel
//! engine's counter-based per-trial streams, again when trial generation
//! moved to content space on blocked streams, and again when the k = 2
//! MSED path moved to the fully-columnar quad-packed draw scheme for the
//! lane kernel — see CHANGES.md.)

use muse_core::presets;
use muse_faultsim::{muse_msed, MsedConfig, Rng};

#[test]
fn rng_stream_pin() {
    let mut rng = Rng::seeded(0);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    // xoshiro256++ seeded through SplitMix64(0): a fixed, documented stream.
    assert_eq!(
        first,
        vec![
            5987356902031041503,
            7051070477665621255,
            6633766593972829180,
            211316841551650330
        ]
    );
}

#[test]
fn trial_stream_pin() {
    // The engine's counter-based derivation is part of the reproducibility
    // contract: every simulator's results are a pure function of it.
    let mut rng = Rng::for_trial(0x4D53_4544, 7);
    let first: Vec<u64> = (0..2).map(|_| rng.next_u64()).collect();
    assert_eq!(first, vec![12351991322932307205, 9471953404896583451]);
}

#[test]
fn block_stream_pin() {
    // The blocked engine's per-block stream derivation is part of the
    // reproducibility contract, and must stay domain-separated from the
    // per-trial streams.
    let mut rng = Rng::for_block(0x4D53_4544, 7);
    let first: Vec<u64> = (0..2).map(|_| rng.next_u64()).collect();
    assert_eq!(first, vec![2424275038829968809, 17581779019344070349]);
    let mut trial = Rng::for_trial(0x4D53_4544, 7);
    assert_ne!(rng.next_u64(), trial.next_u64());
}

#[test]
fn msed_tally_pin_muse_144_132() {
    let stats = muse_msed(
        &presets::muse_144_132(),
        MsedConfig {
            failing_devices: 2,
            trials: 2_000,
            seed: 0x4D53_4544,
            threads: 0,
        },
    );
    assert_eq!(stats.total(), 2_000);
    assert_eq!(stats.silent, 0);
    assert_eq!(
        (stats.detected, stats.miscorrected),
        (1_746, 254),
        "pinned Monte-Carlo tally changed: PRNG, injection, or decoder drifted"
    );
}

#[test]
fn msed_tally_pin_muse_80_69() {
    let stats = muse_msed(
        &presets::muse_80_69(),
        MsedConfig {
            failing_devices: 2,
            trials: 2_000,
            seed: 0x4D53_4544,
            threads: 0,
        },
    );
    assert_eq!(stats.silent, 0);
    assert_eq!(stats.detected + stats.miscorrected, 2_000);
    let rate = stats.detection_rate();
    assert!(
        (80.0..90.0).contains(&rate),
        "rate {rate} left the plausible band"
    );
}
