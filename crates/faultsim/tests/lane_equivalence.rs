//! Lane kernel ⇄ scalar oracle equivalence: `muse_msed` (lane-parallel
//! where the layout allows, AVX2 under `--features simd`) must produce
//! tallies identical to `muse_msed_scalar` (the draw-for-draw scalar
//! reference) on every preset, trial count, and thread count. Both consume
//! the same pre-filled draw columns, so any divergence is a lane-kernel
//! bug, never a sampling difference. CI runs this suite with the `simd`
//! feature both off and on; on AVX2 hosts the feature run additionally
//! proves the vector fold bit-identical through whole simulations.

use muse_core::{presets, MuseCode};
use muse_faultsim::{muse_msed, muse_msed_scalar, MsedConfig};
use proptest::prelude::*;

fn all_presets() -> Vec<MuseCode> {
    vec![
        presets::muse_144_132(),
        presets::muse_144_128(),
        presets::muse_80_67(),
        presets::muse_80_69(),
        presets::muse_80_70(),
        presets::muse_268_256(),
    ]
}

#[test]
fn lane_matches_scalar_on_every_preset() {
    for code in all_presets() {
        if code.kernel().is_none() {
            continue;
        }
        // 2500 is deliberately not a multiple of the engine block (1024):
        // two full blocks plus a 452-trial tail exercise the partial-block
        // path through the lanes.
        for trials in [1, 1024, 2500] {
            let config = MsedConfig {
                trials,
                threads: 1,
                ..MsedConfig::default()
            };
            assert_eq!(
                muse_msed(&code, config),
                muse_msed_scalar(&code, config),
                "{} trials={trials}",
                code.name()
            );
        }
    }
}

#[test]
fn lane_matches_scalar_across_thread_counts() {
    let code = presets::muse_144_132();
    for threads in [1, 2, 5] {
        let config = MsedConfig {
            trials: 5_000,
            threads,
            ..MsedConfig::default()
        };
        assert_eq!(
            muse_msed(&code, config),
            muse_msed_scalar(&code, config),
            "threads={threads}"
        );
    }
}

#[test]
fn lane_matches_scalar_beyond_double_strikes() {
    // k ≠ 2 rides the per-strike columnar path on both sides; the contract
    // (same stream, same tallies) must hold there too.
    let code = presets::muse_144_132();
    for k in [1, 3] {
        let config = MsedConfig {
            failing_devices: k,
            trials: 2_048,
            threads: 1,
            ..MsedConfig::default()
        };
        assert_eq!(
            muse_msed(&code, config),
            muse_msed_scalar(&code, config),
            "k={k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random seeds and deliberately awkward trial counts (block
    /// fractions, off-by-ones around the block size) never separate the
    /// lane kernel from its scalar oracle.
    #[test]
    fn lane_matches_scalar_on_random_workloads(
        seed in any::<u64>(),
        trials in 1u64..4_200,
        threads in 1usize..4,
    ) {
        let code = presets::muse_144_128();
        let config = MsedConfig {
            trials,
            seed,
            threads,
            ..MsedConfig::default()
        };
        prop_assert_eq!(muse_msed(&code, config), muse_msed_scalar(&code, config));
    }
}
