//! The engine's determinism contract: every simulator produces
//! bit-identical tallies at any worker count, because randomness comes
//! exclusively from counter-based streams over fixed boundaries —
//! `Rng::for_trial(seed, i)` for per-trial runs, `Rng::for_block(seed, b)`
//! for blocked runs.

use muse_core::presets;
use muse_faultsim::{
    measure_mode_threaded, muse_msed, rs_msed, simulate_attacks_threaded,
    simulate_retention_threaded, simulate_scrubbing_threaded, simulate_stack_threaded, FailureMode,
    LineHasher, MsedConfig, RetentionModel, RsDetectMode, ScrubConfig, Stack,
};
use muse_rs::RsMemoryCode;

#[test]
fn msed_identical_across_thread_counts() {
    let code = presets::muse_144_132();
    let config = |threads| MsedConfig {
        trials: 3_000,
        threads,
        ..MsedConfig::default()
    };
    let serial = muse_msed(&code, config(1));
    assert_eq!(serial.total(), 3_000);
    for threads in [2, 4, 7] {
        assert_eq!(
            serial,
            muse_msed(&code, config(threads)),
            "threads={threads}"
        );
    }
}

#[test]
fn msed_identical_with_auto_threads() {
    let code = presets::muse_80_69();
    let serial = muse_msed(
        &code,
        MsedConfig {
            trials: 2_000,
            threads: 1,
            ..MsedConfig::default()
        },
    );
    let auto = muse_msed(
        &code,
        MsedConfig {
            trials: 2_000,
            threads: 0,
            ..MsedConfig::default()
        },
    );
    assert_eq!(serial, auto);
}

#[test]
fn msed_lane_path_identical_across_thread_counts() {
    // The k = 2 lane kernel (SIMD path under `--features simd`) consumes
    // pre-filled per-block draw columns, so worker count must never show:
    // exercise a non-multiple-of-block trial count (4 blocks + 904-trial
    // tail) on a lane-eligible preset and on the interleaved layout that
    // falls back to the scalar oracle.
    for code in [
        presets::muse_144_132(),
        presets::muse_80_70(),
        presets::muse_80_67(),
    ] {
        if code.kernel().is_none() {
            continue;
        }
        let config = |threads| MsedConfig {
            trials: 5_000,
            seed: 0x51D,
            threads,
            ..MsedConfig::default()
        };
        let serial = muse_msed(&code, config(1));
        assert_eq!(serial.total(), 5_000);
        for threads in [2, 5] {
            assert_eq!(
                serial,
                muse_msed(&code, config(threads)),
                "{} threads={threads}",
                code.name()
            );
        }
    }
}

#[test]
fn rs_msed_identical_across_thread_counts() {
    let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
    let config = |threads| MsedConfig {
        trials: 1_000,
        threads,
        ..MsedConfig::default()
    };
    let serial = rs_msed(&code, 4, RsDetectMode::DeviceConfined, config(1));
    let parallel = rs_msed(&code, 4, RsDetectMode::DeviceConfined, config(4));
    assert_eq!(serial, parallel);
}

#[test]
fn retention_identical_across_thread_counts() {
    let code = presets::muse_80_67();
    let model = RetentionModel {
        weak_fraction: 2e-3,
        ..RetentionModel::default()
    };
    let run = |threads| simulate_retention_threaded(&code, &model, 2048.0, 3_000, 7, threads);
    let serial = run(1);
    assert!(serial.corrected > 0, "exercise the correction path");
    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(
            (serial.clean, serial.corrected, serial.uncorrectable),
            (parallel.clean, parallel.corrected, parallel.uncorrectable),
            "threads={threads}"
        );
        assert_eq!(serial.miscorrected, parallel.miscorrected);
        assert_eq!(serial.silent_corruptions, parallel.silent_corruptions);
    }
}

#[test]
fn rowhammer_identical_across_thread_counts() {
    let code = presets::muse_80_69();
    let hasher = LineHasher::new(0x5117, 0x1d3a);
    let run = |threads| simulate_attacks_threaded(&code, &hasher, 8, 1_500, 99, threads);
    let serial = run(1);
    assert_eq!(serial.total(), 1_500);
    for threads in [3, 4] {
        let parallel = run(threads);
        assert_eq!(
            serial.blocked_by_ecc, parallel.blocked_by_ecc,
            "threads={threads}"
        );
        assert_eq!(serial.blocked_by_hash, parallel.blocked_by_hash);
        assert_eq!(serial.harmless, parallel.harmless);
        assert_eq!(serial.successful, parallel.successful);
    }
}

#[test]
fn ondie_identical_across_thread_counts() {
    let code = presets::muse_144_132();
    let run =
        |threads| simulate_stack_threaded(Stack::Stacked, Some(&code), 2e-3, 3_000, 5, threads);
    let serial = run(1);
    assert_eq!(serial.total(), 3_000);
    assert!(serial.due + serial.sdc > 0, "exercise failure paths");
    for threads in [2, 4, 7] {
        let parallel = run(threads);
        assert_eq!(
            (serial.intact, serial.due, serial.sdc),
            (parallel.intact, parallel.due, parallel.sdc),
            "threads={threads}"
        );
    }
    // The rank-less fast path too.
    let serial = simulate_stack_threaded(Stack::OnDieOnly, None, 2e-3, 2_000, 6, 1);
    let parallel = simulate_stack_threaded(Stack::OnDieOnly, None, 2e-3, 2_000, 6, 4);
    assert_eq!(
        (serial.intact, serial.due, serial.sdc),
        (parallel.intact, parallel.due, parallel.sdc)
    );
}

#[test]
fn scrub_identical_across_thread_counts() {
    let code = presets::muse_80_69();
    let config = ScrubConfig {
        device_fit: 2e6,
        words: 3_000,
        horizon_hours: 10_000.0,
        ..ScrubConfig::default()
    };
    let run = |threads| simulate_scrubbing_threaded(&code, &config, threads);
    let serial = run(1);
    assert!(serial.scrubbed_faults > 0 && serial.overlap_failures > 0);
    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(
            (serial.overlap_failures, serial.scrubbed_faults),
            (parallel.overlap_failures, parallel.scrubbed_faults),
            "threads={threads}"
        );
    }
}

#[test]
fn fit_identical_across_thread_counts() {
    let code = presets::muse_144_132();
    let run = |threads| measure_mode_threaded(&code, FailureMode::TwoDevices, 3_000, 17, threads);
    let serial = run(1);
    for threads in [2, 4] {
        let parallel = run(threads);
        assert_eq!(
            (serial.p_correct, serial.p_due, serial.p_sdc),
            (parallel.p_correct, parallel.p_due, parallel.p_sdc),
            "threads={threads}"
        );
    }
}

#[test]
fn beyond_capacity_strike_counts_stay_deterministic() {
    // Strike counts beyond the fixed-capacity inline arrays route through
    // the Vec-based distinct sampler (the wide-word fallbacks are retired):
    // still syndrome-domain, still bit-identical across thread counts.
    let muse = presets::muse_144_132();
    let config = |threads| MsedConfig {
        failing_devices: 10,
        trials: 2_000,
        seed: 0xB16,
        threads,
    };
    let serial = muse_msed(&muse, config(1));
    assert_eq!(serial, muse_msed(&muse, config(4)));
    assert_eq!(serial.total(), 2_000);

    for t in [1usize, 2] {
        let rs = RsMemoryCode::new(8, 144, t).expect("geometry");
        let serial = rs_msed(&rs, 4, RsDetectMode::DeviceConfined, config(1));
        assert_eq!(
            serial,
            rs_msed(&rs, 4, RsDetectMode::DeviceConfined, config(4)),
            "t={t}"
        );
        assert_eq!(serial.total(), 2_000);
    }
}

#[test]
fn rs_t2_msed_identical_across_thread_counts() {
    // The t = 2 syndrome-domain path (the retired wide-PGZ fallback's
    // replacement) obeys the same determinism contract as everything else.
    let code = RsMemoryCode::new(8, 144, 2).expect("geometry");
    let config = |threads| MsedConfig {
        trials: 1_500,
        threads,
        ..MsedConfig::default()
    };
    let serial = rs_msed(&code, 4, RsDetectMode::DeviceConfined, config(1));
    for threads in [2, 4] {
        assert_eq!(
            serial,
            rs_msed(&code, 4, RsDetectMode::DeviceConfined, config(threads)),
            "threads={threads}"
        );
    }
}
