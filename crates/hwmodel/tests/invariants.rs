//! Model-level invariants of the VLSI cost estimator: the analytical model
//! must behave monotonically and consistently or Table V comparisons are
//! meaningless.

use muse_hw::{wallace_levels, BoothEncoding, ConstMultiplier, TechParams};
use muse_wideint::U320;
use proptest::prelude::*;

proptest! {
    #[test]
    fn booth_reconstructs_any_u64(c in 1u64..) {
        let enc = BoothEncoding::of(&U320::from(c));
        prop_assert_eq!(enc.reconstruct(), c as i128);
        // Digit count formula.
        let bits = 64 - c.leading_zeros();
        prop_assert_eq!(enc.partial_products() as u32, (bits + 2) / 2);
    }

    #[test]
    fn booth_nonzero_digits_at_most_half_plus_one(c in 1u64..) {
        // Radix-4 Booth guarantees ≤ ⌈(bits+1)/2⌉ digits, each possibly
        // nonzero; the zero count never exceeds the total.
        let enc = BoothEncoding::of(&U320::from(c));
        prop_assert!(enc.nonzero_partial_products() <= enc.partial_products());
        prop_assert!(enc.nonzero_partial_products() >= 1);
    }

    #[test]
    fn wallace_levels_monotone(a in 1usize..500, b in 1usize..500) {
        prop_assume!(a <= b);
        prop_assert!(wallace_levels(a) <= wallace_levels(b));
    }

    #[test]
    fn multiplier_cost_monotone_in_operand_width(w1 in 8u32..120, w2 in 8u32..120, c in 3u64..) {
        prop_assume!(w1 < w2);
        let tech = TechParams::default();
        let constant = U320::from(c);
        let small = ConstMultiplier::new(w1, &constant).cost(&tech);
        let big = ConstMultiplier::new(w2, &constant).cost(&tech);
        prop_assert!(big.cells >= small.cells);
        prop_assert!(big.delay_ps >= small.delay_ps);
        prop_assert!(big.area_um2 >= small.area_um2);
    }

    #[test]
    fn cost_fields_consistent(w in 8u32..200, c in 3u64..) {
        let tech = TechParams::default();
        let cost = ConstMultiplier::new(w, &U320::from(c)).cost(&tech);
        prop_assert!(cost.delay_ps > 0.0);
        prop_assert!(cost.cells > 0);
        // Area is cells × cell area by construction.
        prop_assert!((cost.area_um2 - cost.cells as f64 * tech.cell_area_um2).abs() < 1e-6);
        prop_assert!(cost.power_mw > 0.0);
    }
}

#[test]
fn table5_is_deterministic() {
    let tech = TechParams::default();
    let a = muse_hw::table5(&tech);
    let b = muse_hw::table5(&tech);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.encoder.cells, y.encoder.cells);
        assert_eq!(x.corrector.delay_ps, y.corrector.delay_ps);
    }
}

#[test]
fn faster_clock_means_more_cycles() {
    let slow = TechParams {
        clock_ghz: 1.0,
        ..TechParams::default()
    };
    let fast = TechParams {
        clock_ghz: 4.8,
        ..TechParams::default()
    };
    let code = muse_core::presets::muse_144_132();
    let hw_slow = muse_hw::muse_hardware(&code, &slow);
    let hw_fast = muse_hw::muse_hardware(&code, &fast);
    assert!(hw_fast.encode_cycles >= hw_slow.encode_cycles);
}
