//! Analytical VLSI cost model for MUSE and Reed-Solomon ECC circuits
//! (the paper's Table V, substituted for Synopsys DC + NanGate 15 nm —
//! see DESIGN.md §3.2).
//!
//! The model builds the exact circuit structures Section V describes —
//! Radix-4 Booth constant multipliers with zero-partial-product
//! elimination, Wallace trees of 3:2 compressors, parallel-prefix final
//! adders, the two-multiplier Lemire modulo unit, the ELC match CAM, and
//! the Reed-Solomon XOR forests + GF lookup tables — and prices them with
//! 15 nm-class per-gate constants.
//!
//! # Examples
//!
//! ```
//! use muse_core::presets;
//! use muse_hw::{muse_hardware, TechParams};
//!
//! let hw = muse_hardware(&presets::muse_144_132(), &TechParams::default());
//! // The paper's Table V: ~1.1 ns encoder, 3 write-path cycles, 0 read-path
//! // cycles in the error-free case.
//! assert!(hw.encoder.delay_ns() < 2.0);
//! assert_eq!(hw.decode_cycles, 0);
//! ```

mod booth;
mod circuits;
mod report;
mod tech;
mod verilog;

pub use booth::BoothEncoding;
pub use circuits::{
    adder_cost, elc_cam_cost, gf_lut_cost, wallace_adders, wallace_levels, xor_tree_cost,
    ConstMultiplier, FastModuloUnit,
};
pub use report::{
    muse_corrector, muse_encoder, muse_hardware, rs_corrector, rs_encoder, rs_hardware,
    rs_parity_fanin, table5, CodeHardware,
};
pub use tech::{CircuitCost, TechParams};
pub use verilog::{emit_corrector_module, emit_encoder_module, emit_remainder_module};
