//! Encoder / error-corrector cost reports per code — the Table V generator.

use muse_core::MuseCode;
use muse_rs::RsMemoryCode;

use crate::{
    adder_cost, elc_cam_cost, gf_lut_cost, xor_tree_cost, CircuitCost, FastModuloUnit, TechParams,
};

/// One Table V row: a code with its encoder and corrector costs.
#[derive(Debug, Clone)]
pub struct CodeHardware {
    /// Display name, e.g. `MUSE(144,132)` or `RS(80,64)`.
    pub name: String,
    /// Encoder cost.
    pub encoder: CircuitCost,
    /// Error correction & detection cost.
    pub corrector: CircuitCost,
    /// Write-path pipeline cycles (encoder).
    pub encode_cycles: u32,
    /// Read-path pipeline cycles under always-correction.
    pub correct_cycles: u32,
    /// Read-path cycles in the error-free case (0: systematic codes).
    pub decode_cycles: u32,
}

/// Models the MUSE encoder of Figure 3(b): fast modulo of the shifted
/// payload plus the small `m − rem` subtractor.
pub fn muse_encoder(code: &MuseCode, tech: &TechParams) -> CircuitCost {
    let modulo = muse_modulo_unit(code).cost(tech);
    let sub = adder_cost(code.r_bits(), tech);
    modulo.then(sub)
}

/// Models the MUSE error correction & detection unit of Figure 2: fast
/// modulo (remainder), ELC lookup, correction adder, and the
/// overflow/underflow check (folded into the adder stage).
pub fn muse_corrector(code: &MuseCode, tech: &TechParams) -> CircuitCost {
    let modulo = muse_modulo_unit(code).cost(tech);
    // Each ELC entry: remainder tag + error value + sign (157 bits for
    // MUSE(144,132), matching Section V-A).
    let cam = elc_cam_cost(code.elc().len(), code.r_bits(), code.n_bits() + 1, tech);
    let corrector = adder_cost(code.n_bits(), tech);
    modulo.then(cam).then(corrector)
}

fn muse_modulo_unit(code: &MuseCode) -> FastModuloUnit {
    let fm = muse_core::FastMod::minimal(code.multiplier(), code.n_bits())
        .expect("valid code has fast-modulo constants");
    FastModuloUnit::new(code.n_bits(), code.multiplier(), fm.inverse(), fm.shift())
}

/// Measures the Reed-Solomon encoder's XOR forest by probing the actual
/// code: average number of data bits feeding each parity bit.
pub fn rs_parity_fanin(code: &RsMemoryCode) -> f64 {
    use muse_core::Word;
    let parity_bits = code.parity_bits();
    let mut counts = vec![0u64; parity_bits as usize];
    for d in 0..code.data_bits() {
        let cw = code.encode(&Word::pow2(d));
        for p in 0..parity_bits {
            if cw.bit(p) {
                counts[p as usize] += 1;
            }
        }
    }
    counts.iter().sum::<u64>() as f64 / parity_bits as f64
}

/// Models the RS encoder: one XOR tree per parity bit (paper: "simple XOR
/// trees implementing binary multiplication of generator matrix and data").
pub fn rs_encoder(code: &RsMemoryCode, tech: &TechParams) -> CircuitCost {
    xor_tree_cost(code.parity_bits(), rs_parity_fanin(code), tech)
}

/// Models the RS error corrector: syndrome XOR trees, GF log/antilog LUTs
/// (PGZ with lookup-table arithmetic), locator compare, and correction XOR.
pub fn rs_corrector(code: &RsMemoryCode, tech: &TechParams) -> CircuitCost {
    let s = code.symbol_bits();
    // Syndromes: 2t·s bits, each a parity over ~half the codeword bits.
    let syndromes = xor_tree_cost(code.parity_bits(), code.n_bits() as f64 / 2.0, tech);
    // PGZ over LUTs: log(S0), log(S1), subtract, antilog, position bound
    // check, then the correcting XOR. Two log tables + one antilog.
    let luts = gf_lut_cost(s, tech)
        .then(gf_lut_cost(s, tech))
        .alongside(gf_lut_cost(s, tech));
    let locate = adder_cost(s, tech); // log-domain subtract mod 2^s−1
    let fixup = xor_tree_cost(s, 2.0, tech);
    syndromes.then(luts).then(locate).then(fixup)
}

/// Builds one [`CodeHardware`] row for a MUSE code.
pub fn muse_hardware(code: &MuseCode, tech: &TechParams) -> CodeHardware {
    let encoder = muse_encoder(code, tech);
    let corrector = muse_corrector(code, tech);
    CodeHardware {
        name: code.name().to_owned(),
        encode_cycles: tech.cycles(encoder.delay_ps),
        correct_cycles: tech.cycles(corrector.delay_ps),
        decode_cycles: 0, // systematic: data bits pass straight through
        encoder,
        corrector,
    }
}

/// Builds one [`CodeHardware`] row for a Reed-Solomon code.
pub fn rs_hardware(code: &RsMemoryCode, tech: &TechParams) -> CodeHardware {
    let encoder = rs_encoder(code, tech);
    let corrector = rs_corrector(code, tech);
    CodeHardware {
        name: code.name(),
        encode_cycles: tech.cycles(encoder.delay_ps),
        correct_cycles: tech.cycles(corrector.delay_ps),
        decode_cycles: 0, // systematic
        encoder,
        corrector,
    }
}

/// All six Table V rows with the default technology.
pub fn table5(tech: &TechParams) -> Vec<CodeHardware> {
    use muse_core::presets;
    let mut rows = vec![
        muse_hardware(&presets::muse_144_132(), tech),
        muse_hardware(&presets::muse_80_69(), tech),
        muse_hardware(&presets::muse_80_67(), tech),
        muse_hardware(&presets::muse_80_70(), tech),
    ];
    let rs144 = RsMemoryCode::new(8, 144, 1).expect("RS(144,128) geometry");
    let rs80 = RsMemoryCode::new(8, 80, 1).expect("RS(80,64) geometry");
    rows.push(rs_hardware(&rs144, tech));
    rows.push(rs_hardware(&rs80, tech));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn muse_encoder_in_table5_regime() {
        // Paper: 1.129 ns, 33312 cells, 10999 µm², 5.11 mW.
        let cost = muse_encoder(&presets::muse_144_132(), &tech());
        let ns = cost.delay_ns();
        assert!((0.7..1.7).contains(&ns), "latency {ns} ns");
        assert!(
            (15_000..70_000).contains(&cost.cells),
            "{} cells",
            cost.cells
        );
        assert!(
            (5_000.0..25_000.0).contains(&cost.area_um2),
            "{} um2",
            cost.area_um2
        );
    }

    #[test]
    fn rs_encoder_far_cheaper_than_muse() {
        // The paper's headline VLSI comparison: MUSE(80,67) uses ~12× the
        // silicon of RS(80,64) and ~2 extra cycles.
        let t = tech();
        let muse = muse_encoder(&presets::muse_80_67(), &t);
        let rs = rs_encoder(&RsMemoryCode::new(8, 80, 1).unwrap(), &t);
        assert!(muse.area_um2 > 5.0 * rs.area_um2);
        assert!(muse.delay_ps > 2.0 * rs.delay_ps);
    }

    #[test]
    fn rs_encoder_single_cycle() {
        let t = tech();
        for n_bits in [80u32, 144] {
            let rs = rs_hardware(&RsMemoryCode::new(8, n_bits, 1).unwrap(), &t);
            assert_eq!(rs.encode_cycles, 1, "{}", rs.name);
            assert_eq!(rs.decode_cycles, 0);
        }
    }

    #[test]
    fn muse_encoder_three_ish_cycles() {
        let t = tech();
        for code in [presets::muse_144_132(), presets::muse_80_69()] {
            let hw = muse_hardware(&code, &t);
            assert!(
                (2..=4).contains(&hw.encode_cycles),
                "{}: {} cycles",
                hw.name,
                hw.encode_cycles
            );
            assert_eq!(hw.decode_cycles, 0, "systematic fast path");
        }
    }

    #[test]
    fn parity_fanin_reasonable() {
        // Each RS parity bit depends on a sizeable fraction of the 128 data
        // bits (dense generator matrix over GF(256)).
        let fanin = rs_parity_fanin(&RsMemoryCode::new(8, 144, 1).unwrap());
        assert!((20.0..100.0).contains(&fanin), "fanin {fanin}");
    }

    #[test]
    fn table5_has_six_rows_in_paper_order() {
        let rows = table5(&tech());
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "MUSE(144,132)",
                "MUSE(80,69)",
                "MUSE(80,67)",
                "MUSE(80,70)",
                "RS(144,128)",
                "RS(80,64)"
            ]
        );
        // Every MUSE row costs more silicon than every RS row (paper trend).
        let min_muse = rows[..4].iter().map(|r| r.encoder.cells).min().unwrap();
        let max_rs = rows[4..].iter().map(|r| r.encoder.cells).max().unwrap();
        assert!(min_muse > max_rs);
    }

    #[test]
    fn corrector_costs_exceed_encoder_costs_for_muse() {
        // Table V: the corrector adds the ELC on top of the modulo unit.
        let t = tech();
        for code in [presets::muse_144_132(), presets::muse_80_69()] {
            let hw = muse_hardware(&code, &t);
            assert!(hw.corrector.cells > hw.encoder.cells, "{}", hw.name);
        }
    }
}
