//! Radix-4 Booth recoding of the constant multiplier (paper Section V-B).
//!
//! Multiplying by a *known* constant lets the design drop every partial
//! product whose Booth digit is zero: the paper reports that the
//! MUSE(144,132) inverse has 73 partial products of which 23 are zero,
//! shaving one Wallace-tree level.

use muse_wideint::U320;

/// Radix-4 Booth digits of a constant, least-significant digit first.
/// Digits are in `{-2, -1, 0, +1, +2}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoothEncoding {
    digits: Vec<i8>,
}

impl BoothEncoding {
    /// Recodes `constant` (must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `constant` is zero.
    pub fn of(constant: &U320) -> Self {
        assert!(!constant.is_zero(), "Booth recoding of zero is degenerate");
        let len = constant.bit_len();
        let n_digits = (len + 1).div_ceil(2);
        let bit = |i: i64| -> i8 {
            if i < 0 || i as u32 >= len {
                0
            } else {
                constant.bit(i as u32) as i8
            }
        };
        let digits = (0..n_digits)
            .map(|d| {
                let i = 2 * d as i64;
                bit(i - 1) + bit(i) - 2 * bit(i + 1)
            })
            .collect();
        Self { digits }
    }

    /// All digits, LSB first.
    pub fn digits(&self) -> &[i8] {
        &self.digits
    }

    /// Total digit count = partial products before elimination.
    pub fn partial_products(&self) -> usize {
        self.digits.len()
    }

    /// Zero digits = partial products eliminated at design time.
    pub fn zero_partial_products(&self) -> usize {
        self.digits.iter().filter(|&&d| d == 0).count()
    }

    /// Partial products that actually enter the compressor tree.
    pub fn nonzero_partial_products(&self) -> usize {
        self.partial_products() - self.zero_partial_products()
    }

    /// Reconstructs the constant from the digits (sanity inverse).
    pub fn reconstruct(&self) -> i128 {
        self.digits
            .iter()
            .enumerate()
            .map(|(i, &d)| (d as i128) << (2 * i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::FastMod;

    #[test]
    fn small_constants_reconstruct() {
        for c in [1u64, 2, 3, 5, 7, 15, 100, 821, 2005, 4065, 5621, 65519] {
            let enc = BoothEncoding::of(&U320::from(c));
            assert_eq!(enc.reconstruct(), c as i128, "c={c}");
        }
    }

    #[test]
    fn digit_count_formula() {
        // bit_len = 12 for 4065 -> ceil(13/2) = 7 digits.
        let enc = BoothEncoding::of(&U320::from(4065u64));
        assert_eq!(enc.partial_products(), 7);
        for &d in enc.digits() {
            assert!((-2..=2).contains(&d));
        }
    }

    #[test]
    fn paper_claim_73_partial_products_23_zero() {
        // Section V-B: "Booth Encoding of the multiplier's inverse value has
        // 73 partial products, of which 23 are equal to 0."
        let inverse = *FastMod::minimal(4065, 144).unwrap().inverse();
        let enc = BoothEncoding::of(&inverse);
        assert_eq!(enc.partial_products(), 73);
        assert_eq!(enc.zero_partial_products(), 23);
        assert_eq!(enc.nonzero_partial_products(), 50);
    }

    #[test]
    fn all_ones_has_sparse_recoding() {
        // 0xFFFF = 2^16 - 1: Booth gives (+1 at 2^16... digit pattern with
        // mostly zeros) — far fewer nonzero digits than bits.
        let enc = BoothEncoding::of(&U320::from(0xFFFFu64));
        assert_eq!(enc.reconstruct(), 0xFFFF);
        assert!(enc.nonzero_partial_products() <= 2);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_rejected() {
        let _ = BoothEncoding::of(&U320::ZERO);
    }
}
