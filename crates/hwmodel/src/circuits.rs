//! Cost models for the building blocks of Figure 5: constant multipliers
//! (Booth + Wallace + final adder), the Lemire fast-modulo unit, the ELC
//! CAM, XOR trees, and GF lookup tables.

use muse_wideint::U320;

use crate::{BoothEncoding, CircuitCost, TechParams};

/// Wallace-tree reduction schedule: number of 3:2 compressor levels to go
/// from `n` operands to 2 (0 when `n <= 2`).
pub fn wallace_levels(n: usize) -> u32 {
    let mut n = n;
    let mut levels = 0;
    while n > 2 {
        n -= n / 3; // each full group of 3 becomes 2
        levels += 1;
    }
    levels
}

/// Full-adder count of a Wallace reduction of `n` operands of `width` bits.
pub fn wallace_adders(n: usize, width: u32) -> u64 {
    let mut n = n;
    let mut adders = 0u64;
    while n > 2 {
        let groups = n / 3;
        adders += groups as u64 * width as u64;
        n -= groups;
    }
    adders
}

/// A multiplier by a design-time constant (Figure 5a): Booth encoding with
/// zero-PP elimination, a Wallace tree, and a parallel-prefix final adder.
#[derive(Debug, Clone)]
pub struct ConstMultiplier {
    operand_bits: u32,
    product_bits: u32,
    booth: BoothEncoding,
}

impl ConstMultiplier {
    /// Models `operand (operand_bits wide) × constant`.
    ///
    /// # Panics
    ///
    /// Panics if the constant is zero.
    pub fn new(operand_bits: u32, constant: &U320) -> Self {
        let booth = BoothEncoding::of(constant);
        Self {
            operand_bits,
            product_bits: operand_bits + constant.bit_len(),
            booth,
        }
    }

    /// The Booth recoding driving the tree.
    pub fn booth(&self) -> &BoothEncoding {
        &self.booth
    }

    /// Width of the full product.
    pub fn product_bits(&self) -> u32 {
        self.product_bits
    }

    /// Wallace levels after zero-PP elimination.
    pub fn tree_levels(&self) -> u32 {
        wallace_levels(self.booth.nonzero_partial_products())
    }

    /// Synthesis-model cost.
    pub fn cost(&self, tech: &TechParams) -> CircuitCost {
        let pps = self.booth.nonzero_partial_products();
        let width = self.product_bits;
        // Partial-product generation: one mux row per nonzero PP.
        let mux_cells = pps as u64 * (self.operand_bits as u64 + 1);
        // Wallace tree of 3:2 compressors (≈1.5 cells per FA once the
        // synthesizer maps shared majority/XOR structure).
        let fas = wallace_adders(pps, width);
        // Final parallel-prefix adder.
        let prefix_stages = (width.max(2) as f64).log2().ceil() as u32;
        let adder_cells = 3 * width as u64 + prefix_stages as u64 * width as u64 / 2;

        let delay_ps = tech.booth_mux_ps
            + self.tree_levels() as f64 * tech.fa_ps
            + prefix_stages as f64 * tech.prefix_stage_ps;
        let cells = mux_cells + 3 * fas / 2 + adder_cells;
        CircuitCost {
            delay_ps,
            cells,
            area_um2: cells as f64 * tech.cell_area_um2,
            power_mw: tech.dynamic_power_mw(cells),
        }
    }
}

/// The two-multiplier direct remainder unit of Figure 5(b): multiply by the
/// scaled inverse, keep the fraction, multiply by `m`, keep the top bits.
#[derive(Debug, Clone)]
pub struct FastModuloUnit {
    mul_inverse: ConstMultiplier,
    mul_modulus: ConstMultiplier,
}

impl FastModuloUnit {
    /// Models the remainder circuit for `input_bits`-wide values, modulus
    /// `m` with scaled inverse `inverse` and fraction width `shift`.
    pub fn new(input_bits: u32, m: u64, inverse: &U320, shift: u32) -> Self {
        Self {
            mul_inverse: ConstMultiplier::new(input_bits, inverse),
            mul_modulus: ConstMultiplier::new(shift, &U320::from(m)),
        }
    }

    /// The first (wide) multiplier.
    pub fn inverse_multiplier(&self) -> &ConstMultiplier {
        &self.mul_inverse
    }

    /// The second (narrow) multiplier.
    pub fn modulus_multiplier(&self) -> &ConstMultiplier {
        &self.mul_modulus
    }

    /// Serial composition of the two multiplies.
    pub fn cost(&self, tech: &TechParams) -> CircuitCost {
        self.mul_inverse
            .cost(tech)
            .then(self.mul_modulus.cost(tech))
    }
}

/// The Error Lookup Circuit as a match-line CAM: `entries` rows of
/// `tag_bits` compare + `payload_bits` readout (Section V-A sizes each
/// MUSE(144,132) row at 157 bits: 12 remainder + 144 value + sign).
pub fn elc_cam_cost(
    entries: usize,
    tag_bits: u32,
    payload_bits: u32,
    tech: &TechParams,
) -> CircuitCost {
    // Compare tree per row (XNOR + AND reduce) with the constant payload
    // folded into shared read-out logic (it synthesizes to ROM-like planes,
    // not per-row flops).
    let row_cells = tag_bits as u64 / 2 + payload_bits as u64 / 16;
    let cells = entries as u64 * row_cells;
    let match_levels = (entries.max(2) as f64).log2().ceil();
    let delay_ps = (tag_bits.max(2) as f64).log2().ceil() * tech.cam_level_ps
        + match_levels * tech.cam_level_ps;
    CircuitCost {
        delay_ps,
        cells,
        area_um2: cells as f64 * tech.cell_area_um2,
        power_mw: tech.dynamic_power_mw(cells / 4), // match-line gating: most rows idle
    }
}

/// A wide adder/subtractor (the correction stage): parallel-prefix.
pub fn adder_cost(width: u32, tech: &TechParams) -> CircuitCost {
    let prefix_stages = (width.max(2) as f64).log2().ceil() as u32;
    let cells = 3 * width as u64 + prefix_stages as u64 * width as u64 / 2;
    CircuitCost {
        delay_ps: prefix_stages as f64 * tech.prefix_stage_ps + tech.xor2_ps,
        cells,
        area_um2: cells as f64 * tech.cell_area_um2,
        power_mw: tech.dynamic_power_mw(cells),
    }
}

/// An XOR tree forest: `outputs` parity bits, each XORing `inputs_per_output`
/// source bits (the Reed-Solomon encoder shape).
pub fn xor_tree_cost(outputs: u32, inputs_per_output: f64, tech: &TechParams) -> CircuitCost {
    let per_tree = (inputs_per_output - 1.0).max(0.0);
    let cells = (outputs as f64 * per_tree).round() as u64;
    let depth = inputs_per_output.max(2.0).log2().ceil();
    CircuitCost {
        delay_ps: depth * tech.xor2_ps,
        cells,
        area_um2: cells as f64 * tech.cell_area_um2,
        power_mw: tech.dynamic_power_mw(cells),
    }
}

/// A GF(2^s) log or antilog ROM (2^s entries × s bits).
pub fn gf_lut_cost(symbol_bits: u32, tech: &TechParams) -> CircuitCost {
    let entries = 1u64 << symbol_bits;
    let cells = entries * symbol_bits as u64 / 2; // ROM bit-cell ≈ half a gate
    CircuitCost {
        delay_ps: symbol_bits as f64 * tech.lut_level_ps,
        cells,
        area_um2: cells as f64 * tech.cell_area_um2,
        power_mw: tech.dynamic_power_mw(cells / 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wallace_schedule_classic_sequence() {
        // The Dadda/Wallace reduction sequence: 3->2 in one level,
        // 4->3->2 in two, 6->4->3->2 in three, ...
        assert_eq!(wallace_levels(1), 0);
        assert_eq!(wallace_levels(2), 0);
        assert_eq!(wallace_levels(3), 1);
        assert_eq!(wallace_levels(4), 2);
        assert_eq!(wallace_levels(6), 3);
        assert_eq!(wallace_levels(9), 4);
        assert_eq!(wallace_levels(13), 5);
        assert_eq!(wallace_levels(19), 6);
        assert_eq!(wallace_levels(28), 7);
        assert_eq!(wallace_levels(42), 8);
        assert_eq!(wallace_levels(50), 9);
        assert_eq!(wallace_levels(63), 9);
        assert_eq!(wallace_levels(64), 10);
    }

    #[test]
    fn zero_pp_elimination_saves_a_level() {
        // The paper's example: 73 PPs need one more level than 50.
        assert_eq!(wallace_levels(73), 10);
        assert_eq!(wallace_levels(50), 9);
    }

    #[test]
    fn wallace_adder_count_grows_with_width() {
        assert!(wallace_adders(50, 300) > wallace_adders(50, 100));
        assert_eq!(wallace_adders(2, 64), 0);
    }

    #[test]
    fn const_multiplier_monotone_in_constant_size() {
        let tech = TechParams::default();
        let small = ConstMultiplier::new(80, &U320::from(2005u64)).cost(&tech);
        let big_const = *muse_core::FastMod::minimal(2005, 80).unwrap().inverse();
        let big = ConstMultiplier::new(80, &big_const).cost(&tech);
        assert!(big.cells > small.cells);
        assert!(big.delay_ps >= small.delay_ps);
    }

    #[test]
    fn fast_modulo_is_two_multipliers() {
        let tech = TechParams::default();
        let fm = muse_core::FastMod::minimal(4065, 144).unwrap();
        let unit = FastModuloUnit::new(144, 4065, fm.inverse(), fm.shift());
        let cost = unit.cost(&tech);
        let a = unit.inverse_multiplier().cost(&tech);
        let b = unit.modulus_multiplier().cost(&tech);
        assert_eq!(cost.cells, a.cells + b.cells);
        assert!((cost.delay_ps - (a.delay_ps + b.delay_ps)).abs() < 1e-9);
        // The second multiplier is much faster than the first (paper V-B).
        assert!(b.delay_ps < a.delay_ps);
    }

    #[test]
    fn elc_cam_sized_like_paper() {
        // MUSE(144,132): 1080 entries × 157 bits.
        let tech = TechParams::default();
        let cam = elc_cam_cost(1080, 12, 145, &tech);
        assert!(cam.cells > 8_000 && cam.cells < 40_000);
        assert!(cam.delay_ps < 500.0);
    }

    #[test]
    fn xor_tree_depth_is_logarithmic() {
        let tech = TechParams::default();
        let shallow = xor_tree_cost(16, 8.0, &tech);
        let deep = xor_tree_cost(16, 64.0, &tech);
        assert!(deep.delay_ps > shallow.delay_ps);
        assert_eq!(shallow.delay_ps, 3.0 * tech.xor2_ps);
        assert_eq!(deep.delay_ps, 6.0 * tech.xor2_ps);
    }
}
