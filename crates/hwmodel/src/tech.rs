//! Technology parameters: a 15 nm-class standard-cell library model.
//!
//! Substitute for the NanGate OpenCell 15 nm library + Synopsys DC flow the
//! paper uses (DESIGN.md §3.2). Delay/area/power constants are calibrated so
//! the modelled circuits land in the same regime as Table V; relative
//! comparisons (MUSE vs Reed-Solomon) are the meaningful output.

/// Per-gate delay/area/power constants and operating conditions.
#[derive(Debug, Clone, Copy)]
pub struct TechParams {
    /// 2-input XOR delay, ps.
    pub xor2_ps: f64,
    /// Full-adder (3:2 compressor) delay, ps.
    pub fa_ps: f64,
    /// Booth encoder + partial-product mux delay, ps.
    pub booth_mux_ps: f64,
    /// One parallel-prefix adder stage, ps.
    pub prefix_stage_ps: f64,
    /// CAM tag-compare delay (per level of the match tree), ps.
    pub cam_level_ps: f64,
    /// ROM/LUT access delay per address bit (decode tree level), ps.
    pub lut_level_ps: f64,
    /// Average standard-cell area, µm².
    pub cell_area_um2: f64,
    /// Dynamic energy per gate toggle, fJ (at nominal voltage).
    pub gate_energy_fj: f64,
    /// Switching activity factor.
    pub activity: f64,
    /// Clock frequency the power is reported at, GHz.
    pub clock_ghz: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        Self {
            xor2_ps: 28.0,
            fa_ps: 42.0,
            booth_mux_ps: 45.0,
            prefix_stage_ps: 26.0,
            cam_level_ps: 22.0,
            lut_level_ps: 18.0,
            cell_area_um2: 0.33,
            gate_energy_fj: 0.45,
            activity: 0.15,
            clock_ghz: 2.4,
        }
    }
}

impl TechParams {
    /// Clock period in ps.
    pub fn clock_ps(&self) -> f64 {
        1000.0 / self.clock_ghz
    }

    /// Pipeline cycles needed for a combinational delay.
    pub fn cycles(&self, delay_ps: f64) -> u32 {
        (delay_ps / self.clock_ps()).ceil() as u32
    }

    /// Dynamic power of `cells` gates at this activity/frequency, mW.
    pub fn dynamic_power_mw(&self, cells: u64) -> f64 {
        // P = α · N · E_gate · f ; fJ × GHz = µW.
        self.activity * cells as f64 * self.gate_energy_fj * self.clock_ghz / 1000.0
    }
}

/// Cost summary of one circuit block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CircuitCost {
    /// Critical-path delay, ps.
    pub delay_ps: f64,
    /// Standard-cell count.
    pub cells: u64,
    /// Area, µm².
    pub area_um2: f64,
    /// Power, mW.
    pub power_mw: f64,
}

impl CircuitCost {
    /// Sequential composition: delays add, resources add.
    pub fn then(self, next: CircuitCost) -> CircuitCost {
        CircuitCost {
            delay_ps: self.delay_ps + next.delay_ps,
            cells: self.cells + next.cells,
            area_um2: self.area_um2 + next.area_um2,
            power_mw: self.power_mw + next.power_mw,
        }
    }

    /// Parallel composition: max delay, resources add.
    pub fn alongside(self, other: CircuitCost) -> CircuitCost {
        CircuitCost {
            delay_ps: self.delay_ps.max(other.delay_ps),
            cells: self.cells + other.cells,
            area_um2: self.area_um2 + other.area_um2,
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Delay in nanoseconds.
    pub fn delay_ns(&self) -> f64 {
        self.delay_ps / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_round_up() {
        let tech = TechParams::default();
        assert_eq!(tech.clock_ps().round() as u64, 417);
        assert_eq!(tech.cycles(100.0), 1);
        assert_eq!(tech.cycles(416.0), 1);
        assert_eq!(tech.cycles(418.0), 2);
        assert_eq!(tech.cycles(1100.0), 3);
    }

    #[test]
    fn composition() {
        let a = CircuitCost {
            delay_ps: 100.0,
            cells: 10,
            area_um2: 3.3,
            power_mw: 0.1,
        };
        let b = CircuitCost {
            delay_ps: 50.0,
            cells: 5,
            area_um2: 1.65,
            power_mw: 0.05,
        };
        let seq = a.then(b);
        assert_eq!(seq.delay_ps, 150.0);
        assert_eq!(seq.cells, 15);
        let par = a.alongside(b);
        assert_eq!(par.delay_ps, 100.0);
        assert_eq!(par.cells, 15);
    }

    #[test]
    fn power_scales_with_cells() {
        let tech = TechParams::default();
        assert!(tech.dynamic_power_mw(20_000) > tech.dynamic_power_mw(1_000));
        assert!(tech.dynamic_power_mw(30_000) > 0.3); // milliwatt regime
    }
}
