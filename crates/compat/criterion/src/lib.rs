//! Offline shim for the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! The build environment for this workspace has no network access, so the
//! real crates.io `criterion` cannot be vendored. This crate implements the
//! small API subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, and `black_box` — with a simple
//! wall-clock measurement loop that prints a `name  time: [..]` line per
//! benchmark, mimicking criterion's output shape.
//!
//! Measurements are median-of-samples over an adaptively chosen iteration
//! count; there is no statistical analysis, HTML report, or plotting. When
//! the workspace gains registry access this crate can be deleted and the
//! workspace dependency re-pointed at crates.io without touching any bench
//! source.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (shim: only controls batch len).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: per-iteration setup, batches of one.
    SmallInput,
    /// Large inputs: identical behaviour in the shim.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Top-level harness state: sampling configuration plus a name filter taken
/// from the command line (`cargo bench -- <substring>`).
pub struct Criterion {
    sample_count: usize,
    target_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the harness with flags like `--bench`;
        // the first free argument is a substring filter, as in criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_count: 10,
            target_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_count;
        self.run_one(&id, samples, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            target_time: self.target_time,
            samples,
            per_iter: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    target_time: Duration,
    samples: usize,
    per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, choosing an iteration count that fills the target
    /// sample time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: find how many iterations fit a sample.
        let mut iters: u64 = 1;
        let per_sample = self.target_time.as_secs_f64() / self.samples as f64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= per_sample.min(0.05) || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.per_iter
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` with a fresh `setup()` value per batch; the setup
    /// cost is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_sample = self.target_time.as_secs_f64() / self.samples as f64;
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= per_sample.min(0.05) || iters >= 1 << 24 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.per_iter
                .push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.per_iter.is_empty() {
            println!("{id:<50} (no measurement)");
            return;
        }
        self.per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let lo = self.per_iter[0];
        let hi = self.per_iter[self.per_iter.len() - 1];
        let median = self.per_iter[self.per_iter.len() / 2];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
    }
}

/// Formats seconds the way criterion does (ns/µs/ms/s with 4 significant
/// digits).
fn fmt_time(secs: f64) -> String {
    let (value, unit) = if secs < 1e-6 {
        (secs * 1e9, "ns")
    } else if secs < 1e-3 {
        (secs * 1e6, "µs")
    } else if secs < 1.0 {
        (secs * 1e3, "ms")
    } else {
        (secs, "s")
    };
    format!("{value:.4} {unit}")
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-9), "2.5000 ns");
        assert_eq!(fmt_time(3.25e-6), "3.2500 µs");
        assert_eq!(fmt_time(1.5e-3), "1.5000 ms");
        assert_eq!(fmt_time(2.0), "2.0000 s");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_count: 3,
            target_time: Duration::from_millis(5),
            filter: None,
        };
        let mut runs = 0u64;
        c.bench_function("shim/smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_count: 2,
            target_time: Duration::from_millis(1),
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes/match-me", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
