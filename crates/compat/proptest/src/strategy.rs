//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains into a value-dependent second strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds from at least one option.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below_u128(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty => $ut:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $ut).wrapping_sub(self.start as $ut);
                let offset = rng.below_u128(span as u128) as $ut;
                self.start.wrapping_add(offset as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span =
                    (*self.end() as $ut).wrapping_sub(*self.start() as $ut) as u128 + 1;
                let bound = if span > <$ut>::MAX as u128 { 0 } else { span };
                let offset = rng.below_u128(bound) as $ut;
                self.start().wrapping_add(offset as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as $ut).wrapping_sub(self.start as $ut) as u128 + 1;
                let bound = if span > <$ut>::MAX as u128 { 0 } else { span };
                let offset = rng.below_u128(bound) as $ut;
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

int_range_strategies! {
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize,
}

macro_rules! float_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits scaled into [0, 1), then into
                // the half-open target range.
                let unit = rng.below_u128(1 << 53) as $t / (1u64 << 53) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard the end against round-up at the range boundary.
                if v < self.end { v } else { self.start }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let unit = rng.below_u128((1 << 53) + 1) as $t / (1u64 << 53) as $t;
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = rng();
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[(2u32..10).generate(&mut rng) as usize - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
        for _ in 0..200 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let w = (100u64..).generate(&mut rng);
            assert!(w >= 100);
            let x = (-(1i128 << 100)..(1i128 << 100)).generate(&mut rng);
            assert!(x.unsigned_abs() <= 1u128 << 100);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = rng();
        let (mut lo_half, mut hi_half) = (false, false);
        for _ in 0..500 {
            let v = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&v));
            if v < 0.5 {
                lo_half = true;
            } else {
                hi_half = true;
            }
            let w = (0.25f32..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&w));
        }
        assert!(lo_half && hi_half, "both halves of the range reachable");
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let doubled = (1u64..50).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
        let dependent = (1u32..4).prop_flat_map(|n| (0u32..n).prop_map(move |x| (n, x)));
        for _ in 0..100 {
            let (n, x) = dependent.generate(&mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = rng();
        let union = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2)),
            Box::new(Just(3)),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[union.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0u8..4, Just("x"), 5usize..6).generate(&mut rng);
        assert!(a < 4);
        assert_eq!(b, "x");
        assert_eq!(c, 5);
    }
}
