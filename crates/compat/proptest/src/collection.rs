//! `prop::collection` — the `vec` strategy.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` of `element`-generated values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u128;
        let len = self.size.start + rng.below_u128(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::deterministic("collection");
        let strategy = vec(0u16..50, 2..9);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }
}
