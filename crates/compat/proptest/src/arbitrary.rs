//! `any::<T>()` — default strategies for primitive types and arrays.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_ints_vary() {
        let mut rng = TestRng::deterministic("arbitrary");
        let a: [u64; 5] = Arbitrary::arbitrary(&mut rng);
        let b: [u64; 5] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b);
        let x = any::<i128>().generate(&mut rng);
        let y = any::<i128>().generate(&mut rng);
        assert_ne!(x, y);
        // bool must produce both values eventually.
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[any::<bool>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
