//! Offline shim for the [proptest](https://docs.rs/proptest) property-testing
//! framework.
//!
//! The build environment for this workspace has no network access, so the
//! real crates.io `proptest` cannot be vendored. This crate implements the
//! subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with both `name: Type` and `pattern in strategy`
//!   argument forms, plus `#![proptest_config(..)]`;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`];
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//!   `prop_flat_map`, integer-range strategies, [`Just`](strategy::Just),
//!   tuples, [`prop_oneof!`], `prop::collection::vec`, and
//!   `prop::array::uniform5`;
//! * [`any`](arbitrary::any) over the primitive integers, `bool`, and
//!   fixed-size arrays.
//!
//! Semantic differences from real proptest: generation is plain Monte-Carlo
//! (no shrinking on failure), assertion failures panic immediately, and each
//! test's RNG is seeded deterministically from the test's module path so
//! failures reproduce across runs. Case count defaults to 64 and can be
//! overridden with the `PROPTEST_CASES` environment variable or
//! `ProptestConfig::with_cases`.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the real crate layout (`prop::collection::vec`,
/// `prop::array::uniform5`).
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test (panics on failure; the shim
/// has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Builds a strategy choosing uniformly among several same-valued
/// strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Declares property-test functions. Supports the two argument forms of the
/// real macro (`name: Type` ⇒ `any::<Type>()`, and `pattern in strategy`)
/// and an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $crate::__proptest_case!(rng, $body, $($args)*);
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_case!($rng, $body, $($($rest)*)?)
    }};
    ($rng:ident, $body:block, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_case!($rng, $body, $($($rest)*)?)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn typed_args_generate(a: u64, b: [u64; 5], flag: bool) {
            let _ = (a, b, flag);
        }

        #[test]
        fn ranges_respected(x in 10u32..20, y in -5i64..5, z in 1u64..) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!(z >= 1);
        }

        #[test]
        fn mapped_strategy(e in evens()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(3), Just(5)]) {
            prop_assert!(v == 1 || v == 3 || v == 5);
            prop_assert_ne!(v, 2);
        }

        #[test]
        fn collections_and_tuples(
            (len_src, items) in (2usize..6, prop::collection::vec(0u16..100, 3..8)),
        ) {
            prop_assert!((2..6).contains(&len_src));
            prop_assert!((3..8).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 100));
        }

        #[test]
        fn flat_map_chains(v in (2u32..6).prop_flat_map(|n| prop::collection::vec(Just(n), 1..4))) {
            prop_assert!(!v.is_empty());
            let first = v[0];
            prop_assert!(v.iter().all(|&x| x == first));
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("some::test");
        let mut b = crate::test_runner::TestRng::deterministic("some::test");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::test_runner::TestRng::deterministic("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
