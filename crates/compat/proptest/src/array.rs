//! `prop::array` — fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An array of `N` independently drawn values.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

/// Five independent draws of `strategy`.
pub fn uniform5<S: Strategy>(strategy: S) -> UniformArray<S, 5> {
    UniformArray(strategy)
}

/// Eight independent draws of `strategy`.
pub fn uniform8<S: Strategy>(strategy: S) -> UniformArray<S, 8> {
    UniformArray(strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_draw_independently() {
        let mut rng = TestRng::deterministic("array");
        let a = uniform5(0u64..1_000_000).generate(&mut rng);
        let b = uniform5(0u64..1_000_000).generate(&mut rng);
        assert_ne!(a, b);
        assert!(a.iter().all(|&x| x < 1_000_000));
    }
}
