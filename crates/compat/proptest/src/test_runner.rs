//! Test configuration and the deterministic generator behind the shim.

/// Per-`proptest!` configuration (only the case count is modelled).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable with the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// SplitMix64-based deterministic generator. Each test seeds one from its
/// module path, so a failing case reproduces on every run without recording
/// seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash of the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)`; `bound == 0` means the full u128
    /// domain.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if bound == 0 {
            return self.next_u128();
        }
        if let Ok(small) = u64::try_from(bound) {
            // Multiply-shift keeps the common 64-bit case division-free.
            let x = self.next_u64();
            return (x as u128 * small as u128) >> 64;
        }
        self.next_u128() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_with_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    fn below_bounds() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below_u128(10) < 10);
            let wide = rng.below_u128(u64::MAX as u128 + 5);
            assert!(wide < u64::MAX as u128 + 5);
        }
    }
}
