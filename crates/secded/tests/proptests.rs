//! Property tests for the SEC / SEC-DED codes.

use muse_secded::{SecDecoded, SecDed, Word};
use proptest::prelude::*;

fn word_bits(n: u32) -> impl Strategy<Value = Word> {
    prop::array::uniform5(any::<u64>())
        .prop_map(move |limbs| Word::from_limbs(limbs) & Word::mask(n))
}

proptest! {
    #[test]
    fn hsiao_roundtrip(data in word_bits(64)) {
        let code = SecDed::hsiao(72, 64).unwrap();
        let cw = code.encode(&data);
        prop_assert_eq!(code.syndrome(&cw), 0);
        prop_assert_eq!(code.decode(&cw), SecDecoded::Clean { data });
    }

    #[test]
    fn hsiao_corrects_any_single_bit(data in word_bits(64), bit in 0u32..72) {
        let code = SecDed::hsiao(72, 64).unwrap();
        let mut cw = code.encode(&data);
        cw.toggle_bit(bit);
        match code.decode(&cw) {
            SecDecoded::Corrected { data: d, bit: b } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(b, bit);
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }

    #[test]
    fn hsiao_detects_any_double(data in word_bits(64), a in 0u32..72, b in 0u32..72) {
        prop_assume!(a != b);
        let code = SecDed::hsiao(72, 64).unwrap();
        let mut cw = code.encode(&data);
        cw.toggle_bit(a);
        cw.toggle_bit(b);
        prop_assert_eq!(code.decode(&cw), SecDecoded::Detected);
    }

    #[test]
    fn hamming_sec_corrects_singles(data in word_bits(128), bit in 0u32..136) {
        let code = SecDed::hamming_sec(136, 128).unwrap();
        let mut cw = code.encode(&data);
        cw.toggle_bit(bit);
        prop_assert_eq!(code.decode(&cw).data(), Some(data));
    }

    #[test]
    fn hamming_doubles_never_clean(data in word_bits(128), a in 0u32..136, b in 0u32..136) {
        prop_assume!(a != b);
        let code = SecDed::hamming_sec(136, 128).unwrap();
        let mut cw = code.encode(&data);
        cw.toggle_bit(a);
        cw.toggle_bit(b);
        // Distinct columns XOR to a nonzero syndrome: never Clean (though
        // possibly a miscorrection — Hamming SEC has no DED guarantee).
        match code.decode(&cw) {
            SecDecoded::Clean { .. } => prop_assert!(false, "double error read clean"),
            SecDecoded::Corrected { data: d, .. } => prop_assert_ne!(d, data),
            SecDecoded::Detected => {}
        }
    }
}
