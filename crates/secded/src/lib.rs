//! Linear binary SEC / SEC-DED codes: the on-die-ECC substrate for the
//! MUSE co-design extension.
//!
//! Two constructions:
//!
//! * [`SecDed::hsiao`] — Hsiao's odd-weight-column SEC-DED codes (1970),
//!   the de-facto standard for (72,64) DIMM ECC: every parity-check column
//!   has odd weight, so any double error yields an even-weight (hence
//!   nonzero, non-column) syndrome and is always *detected*.
//! * [`SecDed::hamming_sec`] — plain Hamming single-error-correcting codes
//!   without the double-error guarantee, the shape of DDR5 on-die ECC
//!   (e.g. (136,128): 8 check bits inside the DRAM die).
//!
//! The paper's related work positions these as the codes MUSE competes
//! with (Hsiao) and composes with (on-die SEC, "an interesting topic for
//! future work" — exercised by the `ondie` experiment binary).
//!
//! # Examples
//!
//! ```
//! use muse_secded::SecDed;
//! use muse_wideint::U320;
//!
//! # fn main() -> Result<(), muse_secded::SecDedError> {
//! let code = SecDed::hsiao(72, 64)?; // the classic DIMM code
//! let cw = code.encode(&U320::from(0xDEAD_BEEFu64));
//! let mut bad = cw;
//! bad.toggle_bit(17);
//! assert_eq!(code.decode(&bad).data(), Some(U320::from(0xDEAD_BEEFu64)));
//! # Ok(())
//! # }
//! ```

use std::fmt;

use muse_wideint::U320;

/// Codeword carrier shared with the rest of the workspace.
pub type Word = U320;

/// Error constructing a [`SecDed`] code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecDedError {
    /// `n - k` check bits cannot address `n` codeword bits.
    TooFewCheckBits {
        /// Codeword length in bits.
        n: u32,
        /// Data length in bits.
        k: u32,
    },
    /// Parameters out of supported range (n ≤ 256, k < n).
    BadGeometry {
        /// Codeword length in bits.
        n: u32,
        /// Data length in bits.
        k: u32,
    },
    /// Not enough distinct odd-weight columns for a Hsiao code.
    OddColumnsExhausted {
        /// Data columns required.
        needed: u32,
        /// Odd-weight columns available at this check-bit width.
        available: u32,
    },
}

impl fmt::Display for SecDedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewCheckBits { n, k } => {
                write!(f, "{} check bits cannot address {n} positions", n - k)
            }
            Self::BadGeometry { n, k } => write!(f, "unsupported geometry ({n},{k})"),
            Self::OddColumnsExhausted { needed, available } => {
                write!(
                    f,
                    "need {needed} odd-weight columns, only {available} exist"
                )
            }
        }
    }
}

impl std::error::Error for SecDedError {}

/// Outcome of decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecDecoded {
    /// Zero syndrome.
    Clean {
        /// The recovered data.
        data: Word,
    },
    /// One bit corrected.
    Corrected {
        /// The recovered data.
        data: Word,
        /// Codeword bit position that was flipped back.
        bit: u32,
    },
    /// Detected-uncorrectable (even-weight or unmapped syndrome).
    Detected,
}

impl SecDecoded {
    /// The data, if clean or corrected.
    pub fn data(&self) -> Option<Word> {
        match self {
            Self::Clean { data } | Self::Corrected { data, .. } => Some(*data),
            Self::Detected => None,
        }
    }
}

/// A systematic single-error-correcting binary code defined by its
/// parity-check columns (data bits in positions `[r, n)`, check bits in
/// `[0, r)` with identity columns).
#[derive(Debug, Clone)]
pub struct SecDed {
    n: u32,
    k: u32,
    columns: Vec<u32>, // H column per codeword bit, length n
    syndrome_to_bit: Vec<u32>,
    ded: bool,
}

impl SecDed {
    /// Builds a Hsiao odd-weight-column SEC-DED code.
    ///
    /// # Errors
    ///
    /// Fails when the geometry is unsupported or there are not enough
    /// distinct odd-weight columns (e.g. (72,64) needs 64 of the 56+56
    /// weight-3/5 columns — fine; (136,128) is *not* constructible with 8
    /// check bits and odd columns).
    pub fn hsiao(n: u32, k: u32) -> Result<Self, SecDedError> {
        let r = Self::check_geometry(n, k)?;
        // Data columns: odd weight ≥ 3, ascending weight then value —
        // the classic minimum-total-weight choice balancing XOR trees.
        let mut data_columns = Vec::with_capacity(k as usize);
        'outer: for weight in (3..=r).step_by(2) {
            for value in 1u32..(1 << r) {
                if value.count_ones() == weight {
                    data_columns.push(value);
                    if data_columns.len() == k as usize {
                        break 'outer;
                    }
                }
            }
        }
        if data_columns.len() < k as usize {
            return Err(SecDedError::OddColumnsExhausted {
                needed: k,
                available: data_columns.len() as u32,
            });
        }
        Ok(Self::from_columns(n, k, data_columns, true))
    }

    /// Builds a plain Hamming SEC code (no double-error-detection
    /// guarantee) — the DDR5 on-die shape, e.g. `hamming_sec(136, 128)`.
    ///
    /// # Errors
    ///
    /// Fails when `2^(n−k) − 1 < n` or the geometry is out of range.
    pub fn hamming_sec(n: u32, k: u32) -> Result<Self, SecDedError> {
        let r = Self::check_geometry(n, k)?;
        // Data columns: any distinct non-identity values.
        let mut data_columns = Vec::with_capacity(k as usize);
        for value in 1u32..(1 << r) {
            if value.count_ones() >= 2 {
                data_columns.push(value);
                if data_columns.len() == k as usize {
                    break;
                }
            }
        }
        if data_columns.len() < k as usize {
            return Err(SecDedError::TooFewCheckBits { n, k });
        }
        Ok(Self::from_columns(n, k, data_columns, false))
    }

    fn check_geometry(n: u32, k: u32) -> Result<u32, SecDedError> {
        if n > 256 || k == 0 || k >= n {
            return Err(SecDedError::BadGeometry { n, k });
        }
        let r = n - k;
        if r >= 31 || (1u64 << r) - 1 < n as u64 {
            return Err(SecDedError::TooFewCheckBits { n, k });
        }
        Ok(r)
    }

    fn from_columns(n: u32, k: u32, data_columns: Vec<u32>, ded: bool) -> Self {
        let r = n - k;
        let mut columns = Vec::with_capacity(n as usize);
        for i in 0..r {
            columns.push(1 << i); // identity columns for the check bits
        }
        columns.extend(data_columns);
        let mut syndrome_to_bit = vec![u32::MAX; 1 << r];
        for (bit, &col) in columns.iter().enumerate() {
            debug_assert_eq!(syndrome_to_bit[col as usize], u32::MAX, "duplicate column");
            syndrome_to_bit[col as usize] = bit as u32;
        }
        Self {
            n,
            k,
            columns,
            syndrome_to_bit,
            ded,
        }
    }

    /// Codeword length in bits.
    pub fn n_bits(&self) -> u32 {
        self.n
    }

    /// Data length in bits.
    pub fn k_bits(&self) -> u32 {
        self.k
    }

    /// Check bits `r = n − k`.
    pub fn r_bits(&self) -> u32 {
        self.n - self.k
    }

    /// Whether the code guarantees double-error detection (odd-weight
    /// columns).
    pub fn is_ded(&self) -> bool {
        self.ded
    }

    /// The parity-check column of codeword bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn column(&self, i: u32) -> u32 {
        self.columns[i as usize]
    }

    /// Computes the syndrome of a codeword.
    pub fn syndrome(&self, cw: &Word) -> u32 {
        let mut s = 0u32;
        for (bit, &col) in self.columns.iter().enumerate() {
            if cw.bit(bit as u32) {
                s ^= col;
            }
        }
        s
    }

    /// Encodes `k` data bits into an `n`-bit codeword (data in the high
    /// bits, check bits low).
    ///
    /// # Panics
    ///
    /// Panics if the data exceeds `k` bits.
    pub fn encode(&self, data: &Word) -> Word {
        assert!(data.bit_len() <= self.k, "data wider than {} bits", self.k);
        let r = self.r_bits();
        let mut cw = *data << r;
        // Check bits: syndrome of the data part (identity columns solve
        // each check bit independently).
        let s = self.syndrome(&cw);
        cw = cw | Word::from(s as u64);
        debug_assert_eq!(self.syndrome(&cw), 0);
        cw
    }

    /// Decodes, correcting one flipped bit.
    pub fn decode(&self, cw: &Word) -> SecDecoded {
        let s = self.syndrome(cw);
        if s == 0 {
            return SecDecoded::Clean {
                data: *cw >> self.r_bits(),
            };
        }
        if self.ded && s.count_ones().is_multiple_of(2) {
            return SecDecoded::Detected; // even syndrome = double error
        }
        let bit = self.syndrome_to_bit[s as usize];
        if bit == u32::MAX {
            return SecDecoded::Detected;
        }
        let mut fixed = *cw;
        fixed.toggle_bit(bit);
        SecDecoded::Corrected {
            data: fixed >> self.r_bits(),
            bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsiao_72_64() -> SecDed {
        SecDed::hsiao(72, 64).expect("classic geometry")
    }

    #[test]
    fn geometry_validation() {
        // (72,65) leaves 7 check bits: only 57 odd-weight-≥3 columns exist.
        assert!(matches!(
            SecDed::hsiao(72, 65),
            Err(SecDedError::OddColumnsExhausted { available: 57, .. })
        ));
        assert!(matches!(
            SecDed::hamming_sec(300, 128),
            Err(SecDedError::BadGeometry { .. })
        ));
        assert!(matches!(
            SecDed::hamming_sec(20, 16),
            Err(SecDedError::TooFewCheckBits { .. })
        ));
        assert!(SecDed::hamming_sec(136, 128).is_ok());
        // Hsiao cannot reach (136,128): only 120 odd columns of 8 bits
        // with weight >= 3 exist (56 + 56 + 8).
        assert!(matches!(
            SecDed::hsiao(136, 128),
            Err(SecDedError::OddColumnsExhausted { available: 120, .. })
        ));
    }

    #[test]
    fn hsiao_columns_are_odd_and_distinct() {
        let code = hsiao_72_64();
        let mut seen = std::collections::HashSet::new();
        for i in 0..72 {
            let col = code.column(i);
            assert_eq!(col.count_ones() % 2, 1, "bit {i}");
            assert!(seen.insert(col), "duplicate column at bit {i}");
        }
        assert!(code.is_ded());
    }

    #[test]
    fn roundtrip_and_single_error_correction_exhaustive() {
        let code = hsiao_72_64();
        let data = Word::from(0x0123_4567_89AB_CDEFu64);
        let cw = code.encode(&data);
        assert_eq!(code.decode(&cw), SecDecoded::Clean { data });
        for bit in 0..72 {
            let mut bad = cw;
            bad.toggle_bit(bit);
            match code.decode(&bad) {
                SecDecoded::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "bit {bit}");
                    assert_eq!(b, bit);
                }
                other => panic!("bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn hsiao_detects_every_double_error() {
        let code = hsiao_72_64();
        let data = Word::from(0xFFFF_0000_FF00_00FFu64);
        let cw = code.encode(&data);
        for a in 0..72 {
            for b in (a + 1)..72 {
                let mut bad = cw;
                bad.toggle_bit(a);
                bad.toggle_bit(b);
                assert_eq!(code.decode(&bad), SecDecoded::Detected, "bits ({a},{b})");
            }
        }
    }

    #[test]
    fn hamming_sec_corrects_singles_but_miscorrects_doubles() {
        let code = SecDed::hamming_sec(136, 128).unwrap();
        assert!(!code.is_ded());
        let data = Word::mask(128) ^ (Word::from(0xAAu64) << 40);
        let cw = code.encode(&data);
        for bit in (0..136).step_by(7) {
            let mut bad = cw;
            bad.toggle_bit(bit);
            assert_eq!(code.decode(&bad).data(), Some(data), "bit {bit}");
        }
        // Some double error must miscorrect (no DED guarantee).
        let mut miscorrections = 0;
        for a in 0..20 {
            let mut bad = cw;
            bad.toggle_bit(a);
            bad.toggle_bit(a + 50);
            match code.decode(&bad) {
                SecDecoded::Corrected { data: d, .. } if d != data => miscorrections += 1,
                SecDecoded::Clean { .. } => panic!("double error read clean"),
                _ => {}
            }
        }
        assert!(
            miscorrections > 0,
            "Hamming SEC has no double-error guarantee"
        );
    }

    #[test]
    fn check_bits_occupy_low_positions() {
        let code = hsiao_72_64();
        assert_eq!(code.r_bits(), 8);
        let cw = code.encode(&Word::from(1u64));
        // Data bit 0 lands at codeword bit 8.
        assert!(cw.bit(8));
    }

    #[test]
    #[should_panic(expected = "data wider")]
    fn oversized_data_panics() {
        let _ = hsiao_72_64().encode(&Word::mask(65));
    }
}
