//! Property tests over the `muse-trace/v1` codec: arbitrary events —
//! including strings full of characters that need JSON escaping and
//! floats across the full finite range — round-trip exactly through
//! `to_json_line` / `parse_line`, and the sequence number survives
//! unchanged.

use muse_telemetry::TraceEvent;
use proptest::prelude::*;

/// Palette of characters that stress the JSON string codec: quotes,
/// backslashes, control characters, multi-byte UTF-8, and plain ASCII.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{08}', '\u{0c}', '\u{1}', '\u{1f}',
    'é', 'π', '\u{2028}', '🎯', '@', '{', '}', ':', ',',
];

fn string_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

/// A finite f64 spanning many magnitudes (including negatives and zero).
fn float_strategy() -> impl Strategy<Value = f64> {
    (any::<u64>(), -300i32..300).prop_map(|(mantissa, exp)| {
        let frac = (mantissa % (1 << 53)) as f64 / (1u64 << 53) as f64;
        let signed = if mantissa & (1 << 60) != 0 {
            -frac
        } else {
            frac
        };
        let v = signed * 10f64.powi(exp);
        if v.is_finite() {
            v
        } else {
            0.0
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn build_event(
    kind: u8,
    s1: String,
    s2: String,
    a: u64,
    b: u64,
    c: u64,
    x: u32,
    y: u32,
    f1: f64,
    f2: f64,
    flag: bool,
) -> TraceEvent {
    match kind % 9 {
        0 => TraceEvent::RunStart {
            label: s1,
            total_shards: x,
            dimms_per_shard: a,
            estimator: s2,
            threads: y,
        },
        1 => TraceEvent::ResumeAdopted {
            generation: a,
            shards_done: x,
            total_shards: y,
            fell_back: flag,
        },
        2 => TraceEvent::ShardStart {
            shard: x,
            dimm_lo: a,
            dimm_hi: b,
        },
        3 => TraceEvent::ShardEnd {
            shard: x,
            wall_ms: a,
            dimms: b,
        },
        4 => TraceEvent::ShardRetry {
            shard: x,
            attempt: y,
            backoff_ms: a,
            error: s1,
        },
        5 => TraceEvent::CheckpointWritten {
            generation: a,
            shards_done: x,
            write_ms: b,
        },
        6 => TraceEvent::WeightCapSaturated {
            channel: s1,
            requested_bias: f1,
            cap: f2,
        },
        7 => TraceEvent::Heartbeat {
            shards_done: x,
            total_shards: y,
            machine_years: f1,
            due_ci_half: f2,
            sdc_ci_half: f1 * 0.5,
        },
        _ => TraceEvent::RunEnd {
            shards_done: x,
            wall_ms: a,
            retries: c,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_events_roundtrip(
        kind in any::<u8>(),
        s1 in string_strategy(),
        s2 in string_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        x in any::<u32>(),
        y in any::<u32>(),
        f1 in float_strategy(),
        f2 in float_strategy(),
        flag in any::<bool>(),
        seq in any::<u64>(),
    ) {
        let event = build_event(kind, s1, s2, a, b, c, x, y, f1, f2, flag);
        let line = event.to_json_line(seq);
        prop_assert!(!line.contains('\n'), "line must be newline-free: {line}");
        let (seq_back, back) = TraceEvent::parse_line(&line)
            .expect("well-formed line must parse");
        prop_assert_eq!(seq_back, seq);
        prop_assert_eq!(back, event, "line was {}", line);
    }

    #[test]
    fn truncated_lines_never_parse(
        a in any::<u64>(),
        x in any::<u32>(),
        cut in any::<u64>(),
    ) {
        let line = TraceEvent::ShardEnd { shard: x, wall_ms: a, dimms: a ^ 0x5a }
            .to_json_line(0);
        let len = (cut % line.len() as u64) as usize;
        // Cut on a char boundary (all these events are pure ASCII).
        prop_assert!(TraceEvent::parse_line(&line[..len]).is_err(),
            "prefix of {} of {} bytes parsed", len, line.len());
    }
}
