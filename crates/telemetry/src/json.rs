//! Minimal flat-JSON encoding and decoding — just enough for one
//! `muse-trace/v1` line.
//!
//! Trace events are *flat* JSON objects (every value is a string, number,
//! or boolean), so this module deliberately implements only that subset:
//! [`JsonBuilder`] writes one object, [`parse_object`] reads one back.
//! Numbers are kept as their raw source tokens until a typed getter parses
//! them, so `u64` values above 2⁵³ survive a round trip exactly.

use std::fmt::Write as _;

/// One decoded value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string, unescaped.
    Str(String),
    /// A number, kept as its raw token (parsed lazily by the typed
    /// getters so integers round-trip exactly).
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

/// A decoded flat JSON object: ordered key → value pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject(pub Vec<(String, JsonValue)>);

/// Why a line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl JsonObject {
    /// The raw value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string at `key`.
    pub fn str(&self, key: &str) -> Result<&str, JsonError> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            other => fail(format!("field {key:?}: expected a string, got {other:?}")),
        }
    }

    /// The `u64` at `key` (must be a plain non-negative integer token).
    pub fn u64(&self, key: &str) -> Result<u64, JsonError> {
        match self.get(key) {
            Some(JsonValue::Num(raw)) => raw
                .parse()
                .map_err(|_| JsonError(format!("field {key:?}: {raw:?} is not a u64"))),
            other => fail(format!("field {key:?}: expected a number, got {other:?}")),
        }
    }

    /// The `u32` at `key`.
    pub fn u32(&self, key: &str) -> Result<u32, JsonError> {
        u32::try_from(self.u64(key)?)
            .map_err(|_| JsonError(format!("field {key:?}: out of u32 range")))
    }

    /// The `f64` at `key`.
    pub fn f64(&self, key: &str) -> Result<f64, JsonError> {
        match self.get(key) {
            Some(JsonValue::Num(raw)) => raw
                .parse()
                .map_err(|_| JsonError(format!("field {key:?}: {raw:?} is not an f64"))),
            other => fail(format!("field {key:?}: expected a number, got {other:?}")),
        }
    }

    /// The boolean at `key`.
    pub fn bool(&self, key: &str) -> Result<bool, JsonError> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            other => fail(format!("field {key:?}: expected a bool, got {other:?}")),
        }
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and all control characters).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer of one flat JSON object.
#[derive(Debug)]
pub struct JsonBuilder {
    out: String,
    first: bool,
}

impl JsonBuilder {
    /// Opens the object.
    pub fn new() -> Self {
        Self {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(key, &mut self.out);
        self.out.push_str("\":");
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
        self
    }

    /// Appends an unsigned-integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends a float field using Rust's shortest round-trip formatting
    /// (non-finite values, which JSON cannot carry, become `null`).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value:?}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses one flat JSON object (string/number/bool/null values only —
/// nested objects and arrays are rejected, matching what trace events
/// emit).
pub fn parse_object(line: &str) -> Result<JsonObject, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return fail(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return fail("trailing bytes after the object");
    }
    Ok(JsonObject(fields))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => fail(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => fail("nested values are not part of the flat trace schema"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw =
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
                // Validate the token shape now so getters can't see junk.
                raw.parse::<f64>()
                    .map_err(|_| JsonError(format!("bad number token {raw:?}")))?;
                Ok(JsonValue::Num(raw.to_string()))
            }
            other => fail(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            fail(format!("expected literal {word:?}"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume raw UTF-8 runs byte-by-byte; multi-byte sequences are
            // copied through a char boundary check at the end.
            match self.next() {
                None => return fail("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a low surrogate must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return fail("unpaired surrogate");
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| JsonError("invalid surrogate pair".into()))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("invalid \\u escape".into()))?,
                            );
                        }
                    }
                    other => return fail(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => {
                    if b < 0x20 {
                        return fail("raw control character in string");
                    }
                    out.push(b as char);
                }
                Some(b) => {
                    // Multi-byte UTF-8: find the full sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return fail("invalid UTF-8 lead byte"),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return fail("truncated UTF-8 sequence");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError("invalid UTF-8 sequence".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.next() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                other => return fail(format!("bad hex digit {other:?}")),
            };
            code = (code << 4) | d;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_and_parser_reads_back() {
        let mut b = JsonBuilder::new();
        b.str("name", "shard \"7\"\n")
            .u64("big", u64::MAX)
            .f64("rate", 1.25e-9)
            .bool("ok", true)
            .f64("inf", f64::INFINITY);
        let line = b.finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj.str("name").unwrap(), "shard \"7\"\n");
        assert_eq!(obj.u64("big").unwrap(), u64::MAX);
        assert_eq!(obj.f64("rate").unwrap(), 1.25e-9);
        assert!(obj.bool("ok").unwrap());
        assert_eq!(obj.get("inf"), Some(&JsonValue::Null));
        assert!(obj.str("missing").is_err());
        assert!(obj.u64("name").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        for s in ["π ≈ 3.14159", "tab\there", "\u{1}\u{1F}", "emoji 🎯", ""] {
            let mut b = JsonBuilder::new();
            b.str("s", s);
            let obj = parse_object(&b.finish()).unwrap();
            assert_eq!(obj.str("s").unwrap(), s);
        }
        // \u escapes incl. a surrogate pair decode correctly.
        let obj = parse_object(r#"{"s":"\u0041\ud83c\udfaf"}"#).unwrap();
        assert_eq!(obj.str("s").unwrap(), "A🎯");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1}x",
            "{\"a\":[1]}",
            "{\"a\":{\"b\":1}}",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":nul}",
            "{\"a\":--3}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
        // The empty object is fine.
        assert_eq!(parse_object("{}").unwrap(), JsonObject::default());
    }
}
