//! Lock-free metrics registry with Prometheus textfile export.
//!
//! Three instrument kinds, all backed by atomics so the hot path never
//! takes a lock: [`Counter`] (monotone u64), [`Gauge`] (f64 stored as
//! bits), and [`Histogram`] (fixed log2 buckets over u64 observations).
//! A [`Metrics`] registry hands out `Arc`-shared instruments by name and
//! renders the whole set in Prometheus text exposition format, either to a
//! string or atomically to a textfile (`*.prom`) via temp-file + rename.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets in a [`Histogram`]: bucket `i` counts
/// observations with `value < 2^i`, plus an overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram over `u64` observations.
///
/// Bucket boundaries are `1, 2, 4, …, 2^31`, with one final `+Inf`
/// bucket, which keeps `observe` allocation- and branch-cheap: the bucket
/// index is just the bit length of the value.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Bit length: 0 -> bucket 0 (< 1 is impossible for u64 except 0,
        // which lands in "< 1"), value in [2^(i-1), 2^i) -> bucket i.
        let idx = (u64::BITS - value.leading_zeros()).min(HISTOGRAM_BUCKETS as u32) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative bucket counts (`buckets()[i]` counts observations in
    /// `[2^(i-1), 2^i)`; index 0 counts zeros; the last index overflows).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The instrument kinds a registry can hold.
#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of instruments, renderable as Prometheus text.
#[derive(Debug, Default)]
pub struct Metrics {
    // The map is only locked at registration and render time, never on the
    // instrument hot path (callers hold `Arc<Counter>` etc. directly).
    inner: Mutex<BTreeMap<String, (String, Instrument)>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared registry.
    pub fn global() -> &'static Metrics {
        static GLOBAL: OnceLock<Metrics> = OnceLock::new();
        GLOBAL.get_or_init(Metrics::new)
    }

    /// Returns the counter named `name`, registering it (with `help`) on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Instrument::Counter(Arc::default())));
        match &entry.1 {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// Returns the gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Instrument::Gauge(Arc::default())));
        match &entry.1 {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Returns the histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Instrument::Histogram(Arc::default())));
        match &entry.1 {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!(
                "metric {name:?} is a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers; histograms as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, (help, instrument)) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", instrument.type_name());
            match instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Instrument::Gauge(g) => {
                    let v = g.get();
                    if v.is_finite() {
                        let _ = writeln!(out, "{name} {v:?}");
                    } else {
                        let _ = writeln!(out, "{name} NaN");
                    }
                }
                Instrument::Histogram(h) => {
                    let buckets = h.buckets();
                    let mut cumulative = 0u64;
                    for (i, count) in buckets.iter().enumerate() {
                        cumulative += count;
                        if i < HISTOGRAM_BUCKETS {
                            let le = 1u64 << i;
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Atomically writes the rendered metrics to `path` (textfile-collector
    /// style: write to a sibling temp file, then rename into place).
    pub fn write_textfile(&self, path: &Path) -> std::io::Result<()> {
        let rendered = self.render();
        let tmp = path.with_extension("prom.tmp");
        std::fs::write(&tmp, rendered)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_basics() {
        let m = Metrics::new();
        let c = m.counter("muse_test_total", "test counter");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name returns the same underlying counter.
        assert_eq!(m.counter("muse_test_total", "ignored").get(), 42);

        let g = m.gauge("muse_test_ratio", "test gauge");
        g.set(0.25);
        assert_eq!(g.get(), 0.25);

        let h = m.histogram("muse_test_ms", "test histogram");
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(
            h.sum(),
            0u64.wrapping_add(1 + 2 + 3 + 4 + 1000)
                .wrapping_add(u64::MAX)
        );
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // 1
        assert_eq!(buckets[2], 2); // 2, 3
        assert_eq!(buckets[3], 1); // 4
        assert_eq!(buckets[10], 1); // 1000 in [512, 1024)
        assert_eq!(buckets[HISTOGRAM_BUCKETS], 1); // u64::MAX overflow
    }

    #[test]
    fn render_is_valid_prometheus_text() {
        let m = Metrics::new();
        m.counter("muse_events_total", "Total events").add(3);
        m.gauge("muse_progress", "Fraction done").set(0.5);
        let h = m.histogram("muse_wall_ms", "Wall clock");
        h.observe(5);
        h.observe(100);
        let text = m.render();
        assert!(text.contains("# HELP muse_events_total Total events\n"));
        assert!(text.contains("# TYPE muse_events_total counter\n"));
        assert!(
            text.contains("\nmuse_events_total 3\n")
                || text.starts_with("muse_events_total 3\n")
                || text.contains("muse_events_total 3\n")
        );
        assert!(text.contains("# TYPE muse_wall_ms histogram\n"));
        assert!(text.contains("muse_wall_ms_bucket{le=\"8\"} 1\n"));
        assert!(text.contains("muse_wall_ms_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("muse_wall_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("muse_wall_ms_sum 105\n"));
        assert!(text.contains("muse_wall_ms_count 2\n"));
        // Cumulative buckets must be monotone.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("muse_wall_ms_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket series not cumulative: {line}");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.counter("muse_thing", "a counter");
        m.gauge("muse_thing", "now a gauge?");
    }

    #[test]
    fn textfile_write_is_atomic_rename() {
        let dir = std::env::temp_dir().join(format!("muse-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let m = Metrics::new();
        m.counter("muse_x_total", "x").add(7);
        m.write_textfile(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("muse_x_total 7\n"));
        assert!(!dir.join("metrics.prom.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
