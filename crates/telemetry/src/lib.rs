//! # muse-telemetry
//!
//! Zero-dependency observability for the MUSE simulation fleet: a
//! structured trace layer, a lock-free metrics registry, and live
//! progress rendering.  Everything here is *strictly observational* —
//! instruments never touch simulation RNG streams or tallies, so runs
//! with telemetry enabled are bit-identical to runs without it (the
//! `lifetime` crate's determinism tests enforce this).
//!
//! ## Trace layer (`muse-trace/v1`)
//!
//! [`TraceEvent`]s — run/shard lifecycle, checkpoint writes, shard
//! retries with backoff, resume adoption, estimator weight-cap
//! saturation, heartbeats — are encoded as flat, schema-versioned JSON
//! lines and fed through a *bounded* channel to a writer thread by
//! [`Tracer`].  Emission never blocks: under backpressure events are
//! dropped and counted ([`Tracer::dropped`]), and the per-event sequence
//! number still advances, so gaps in the file pinpoint where drops
//! happened.  Sink write errors are likewise counted
//! ([`Tracer::io_errors`]) rather than panicked over or silently
//! swallowed.  [`Tracer::finish`] returns a [`TraceSummary`] whose
//! counts account for every event exactly once:
//! `emitted == written + dropped + io_errors`.
//!
//! ## Metrics registry
//!
//! [`Metrics`] hands out `Arc`-shared [`Counter`]s, [`Gauge`]s, and
//! fixed-bucket log2 [`Histogram`]s by name.  The hot path is plain
//! relaxed atomics — the registry lock is only taken at registration and
//! render time.  [`Metrics::render`] produces Prometheus text exposition
//! format; [`Metrics::write_textfile`] writes it atomically
//! (temp + rename) for textfile collectors.
//!
//! ## Progress
//!
//! [`ProgressSnapshot`] renders the supervisor heartbeat line: shards
//! done, machine-years covered, ETA, and the live 95% CI half-width per
//! tracked rate — the hook a future "run until CI < target" stopping
//! rule needs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod progress;
pub mod trace;

pub use json::{parse_object, JsonBuilder, JsonError, JsonObject, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use progress::{estimate_eta_ms, render_duration_ms, ProgressSnapshot};
pub use trace::{TraceEvent, TraceSummary, Tracer, DEFAULT_CAPACITY, TRACE_SCHEMA};
