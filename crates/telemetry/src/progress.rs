//! Live progress/heartbeat rendering for long fleet runs.

/// A point-in-time snapshot of a sharded run, renderable as one
/// heartbeat line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Run label (e.g. the `code@env` cell prefix).
    pub label: String,
    /// Shards complete.
    pub shards_done: u32,
    /// Total shards in the plan.
    pub total_shards: u32,
    /// Machine-years simulated so far.
    pub machine_years_done: f64,
    /// Machine-years the full plan covers.
    pub machine_years_total: f64,
    /// Estimated milliseconds remaining (`None` until one shard finishes).
    pub eta_ms: Option<u64>,
    /// Current 95% CI half-width of the DUE rate, per machine-year.
    pub due_ci_half: f64,
    /// Current 95% CI half-width of the SDC rate, per machine-year.
    pub sdc_ci_half: f64,
    /// Trace events dropped so far (0 unless backpressure hit).
    pub dropped_events: u64,
}

impl ProgressSnapshot {
    /// Fraction of shards complete in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.total_shards == 0 {
            1.0
        } else {
            f64::from(self.shards_done) / f64::from(self.total_shards)
        }
    }

    /// Renders the one-line heartbeat, e.g.
    ///
    /// ```text
    /// [rs64@ddr5] 3/8 shards · 750.2/2000.0 machine-years · ETA 12.3s · 95% CI half-width DUE 1.5e-3 SDC 2.5e-4 /machine-year
    /// ```
    pub fn render(&self) -> String {
        let eta = match self.eta_ms {
            Some(ms) => format!(" · ETA {}", render_duration_ms(ms)),
            None => String::new(),
        };
        let dropped = if self.dropped_events > 0 {
            format!(" · {} trace events dropped", self.dropped_events)
        } else {
            String::new()
        };
        format!(
            "[{}] {}/{} shards · {:.1}/{:.1} machine-years{} · 95% CI half-width DUE {:.1e} SDC {:.1e} /machine-year{}",
            self.label,
            self.shards_done,
            self.total_shards,
            self.machine_years_done,
            self.machine_years_total,
            eta,
            self.due_ci_half,
            self.sdc_ci_half,
            dropped,
        )
    }
}

/// Formats a millisecond duration compactly (`850ms`, `12.3s`, `4m08s`,
/// `2h05m`).
pub fn render_duration_ms(ms: u64) -> String {
    if ms < 1_000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else if ms < 3_600_000 {
        let mins = ms / 60_000;
        let secs = (ms % 60_000) / 1000;
        format!("{mins}m{secs:02}s")
    } else {
        let hours = ms / 3_600_000;
        let mins = (ms % 3_600_000) / 60_000;
        format!("{hours}h{mins:02}m")
    }
}

/// Estimates remaining milliseconds from elapsed time and completed/total
/// work.  Returns `None` until any work completes.
pub fn estimate_eta_ms(elapsed_ms: u64, done: u64, total: u64) -> Option<u64> {
    if done == 0 || total <= done {
        return if total <= done { Some(0) } else { None };
    }
    let per_unit = elapsed_ms as f64 / done as f64;
    Some((per_unit * (total - done) as f64).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_render_compactly() {
        assert_eq!(render_duration_ms(850), "850ms");
        assert_eq!(render_duration_ms(12_340), "12.3s");
        assert_eq!(render_duration_ms(248_000), "4m08s");
        assert_eq!(render_duration_ms(7_500_000), "2h05m");
    }

    #[test]
    fn eta_is_proportional_to_remaining_work() {
        assert_eq!(estimate_eta_ms(1000, 0, 8), None);
        assert_eq!(estimate_eta_ms(1000, 2, 8), Some(3000));
        assert_eq!(estimate_eta_ms(1000, 8, 8), Some(0));
        assert_eq!(estimate_eta_ms(1000, 9, 8), Some(0));
    }

    #[test]
    fn heartbeat_line_mentions_the_essentials() {
        let snap = ProgressSnapshot {
            label: "rs64@ddr5".into(),
            shards_done: 3,
            total_shards: 8,
            machine_years_done: 750.25,
            machine_years_total: 2000.0,
            eta_ms: Some(12_340),
            due_ci_half: 1.5e-3,
            sdc_ci_half: 2.5e-4,
            dropped_events: 0,
        };
        let line = snap.render();
        assert!(line.contains("[rs64@ddr5]"), "{line}");
        assert!(line.contains("3/8 shards"), "{line}");
        assert!(line.contains("750.2/2000.0 machine-years"), "{line}");
        assert!(line.contains("ETA 12.3s"), "{line}");
        assert!(line.contains("DUE 1.5e-3"), "{line}");
        assert!(line.contains("SDC 2.5e-4"), "{line}");
        assert!(!line.contains("dropped"), "{line}");
        assert!((snap.fraction_done() - 0.375).abs() < 1e-12);

        let noisy = ProgressSnapshot {
            dropped_events: 4,
            eta_ms: None,
            ..snap
        };
        let line = noisy.render();
        assert!(line.contains("4 trace events dropped"), "{line}");
        assert!(!line.contains("ETA"), "{line}");
    }
}
