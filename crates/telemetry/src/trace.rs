//! The `muse-trace/v1` structured trace layer.
//!
//! A [`Tracer`] accepts [`TraceEvent`]s from any thread through a *bounded*
//! channel and writes them as JSON-lines from a dedicated writer thread.
//! Emission never blocks: when the channel is full the event is counted as
//! dropped instead.  Every line carries the schema tag and a monotonically
//! increasing sequence number; the sequence is advanced even for dropped
//! events, so gaps in a trace file show exactly where backpressure hit.

use crate::json::{parse_object, JsonBuilder, JsonError, JsonObject};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Schema tag written into every trace line.
pub const TRACE_SCHEMA: &str = "muse-trace/v1";

/// Default bound on the emit channel.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One discrete trace event.
///
/// Variants map 1:1 to the `event` field of a `muse-trace/v1` line; each
/// field below becomes one flat JSON field of the same name.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A sharded run began (fresh or resumed).
    RunStart {
        /// Human-readable run label (e.g. `code@env` cell prefix).
        label: String,
        /// Total shards in the plan.
        total_shards: u32,
        /// DIMMs simulated per shard.
        dimms_per_shard: u64,
        /// Estimator in use (`naive` or `importance`).
        estimator: String,
        /// Worker threads per shard.
        threads: u32,
    },
    /// A previous checkpoint was adopted at startup.
    ResumeAdopted {
        /// Checkpoint generation the run resumed from.
        generation: u64,
        /// Shards already complete at resume.
        shards_done: u32,
        /// Total shards in the adopted plan.
        total_shards: u32,
        /// True when the newest generation was corrupt and the run fell
        /// back to the older one.
        fell_back: bool,
    },
    /// A shard started executing.
    ShardStart {
        /// Shard index within the plan.
        shard: u32,
        /// First DIMM index (inclusive) of the shard's range.
        dimm_lo: u64,
        /// Last DIMM index (exclusive) of the shard's range.
        dimm_hi: u64,
    },
    /// A shard finished (successfully).
    ShardEnd {
        /// Shard index within the plan.
        shard: u32,
        /// Wall-clock duration of the shard in milliseconds.
        wall_ms: u64,
        /// DIMMs simulated by the shard.
        dimms: u64,
    },
    /// A shard attempt failed and will be retried after a backoff delay.
    ShardRetry {
        /// Shard index within the plan.
        shard: u32,
        /// Attempt number that just failed (0-based).
        attempt: u32,
        /// Backoff delay before the next attempt, in milliseconds.
        backoff_ms: u64,
        /// The failure message.
        error: String,
    },
    /// A checkpoint generation was durably written.
    CheckpointWritten {
        /// Generation number written.
        generation: u64,
        /// Shards complete as of this checkpoint.
        shards_done: u32,
        /// Write+rename latency in milliseconds.
        write_ms: u64,
    },
    /// The importance-sampling estimator's per-event extra probability hit
    /// its cap, so the effective bias is lower than requested.
    WeightCapSaturated {
        /// What was biased (e.g. `single`, `multi`, `whole`).
        channel: String,
        /// Bias multiplier that was requested.
        requested_bias: f64,
        /// Per-event probability cap that clipped it.
        cap: f64,
    },
    /// Periodic progress heartbeat.
    Heartbeat {
        /// Shards complete.
        shards_done: u32,
        /// Total shards.
        total_shards: u32,
        /// Machine-years of operation simulated so far.
        machine_years: f64,
        /// Current 95% CI half-width of the DUE rate (per machine-year).
        due_ci_half: f64,
        /// Current 95% CI half-width of the SDC rate (per machine-year).
        sdc_ci_half: f64,
    },
    /// The run finished.
    RunEnd {
        /// Shards completed.
        shards_done: u32,
        /// Total wall-clock of the run in milliseconds.
        wall_ms: u64,
        /// Shard attempts that failed and were retried.
        retries: u64,
    },
}

impl TraceEvent {
    /// The value of the `event` field for this variant.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::ResumeAdopted { .. } => "resume_adopted",
            TraceEvent::ShardStart { .. } => "shard_start",
            TraceEvent::ShardEnd { .. } => "shard_end",
            TraceEvent::ShardRetry { .. } => "shard_retry",
            TraceEvent::CheckpointWritten { .. } => "checkpoint_written",
            TraceEvent::WeightCapSaturated { .. } => "weight_cap_saturated",
            TraceEvent::Heartbeat { .. } => "heartbeat",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// Encodes the event as one `muse-trace/v1` JSON line (no trailing
    /// newline) with the given sequence number.
    pub fn to_json_line(&self, seq: u64) -> String {
        let mut b = JsonBuilder::new();
        b.str("schema", TRACE_SCHEMA);
        b.u64("seq", seq);
        b.str("event", self.kind());
        match self {
            TraceEvent::RunStart {
                label,
                total_shards,
                dimms_per_shard,
                estimator,
                threads,
            } => {
                b.str("label", label)
                    .u64("total_shards", u64::from(*total_shards))
                    .u64("dimms_per_shard", *dimms_per_shard)
                    .str("estimator", estimator)
                    .u64("threads", u64::from(*threads));
            }
            TraceEvent::ResumeAdopted {
                generation,
                shards_done,
                total_shards,
                fell_back,
            } => {
                b.u64("generation", *generation)
                    .u64("shards_done", u64::from(*shards_done))
                    .u64("total_shards", u64::from(*total_shards))
                    .bool("fell_back", *fell_back);
            }
            TraceEvent::ShardStart {
                shard,
                dimm_lo,
                dimm_hi,
            } => {
                b.u64("shard", u64::from(*shard))
                    .u64("dimm_lo", *dimm_lo)
                    .u64("dimm_hi", *dimm_hi);
            }
            TraceEvent::ShardEnd {
                shard,
                wall_ms,
                dimms,
            } => {
                b.u64("shard", u64::from(*shard))
                    .u64("wall_ms", *wall_ms)
                    .u64("dimms", *dimms);
            }
            TraceEvent::ShardRetry {
                shard,
                attempt,
                backoff_ms,
                error,
            } => {
                b.u64("shard", u64::from(*shard))
                    .u64("attempt", u64::from(*attempt))
                    .u64("backoff_ms", *backoff_ms)
                    .str("error", error);
            }
            TraceEvent::CheckpointWritten {
                generation,
                shards_done,
                write_ms,
            } => {
                b.u64("generation", *generation)
                    .u64("shards_done", u64::from(*shards_done))
                    .u64("write_ms", *write_ms);
            }
            TraceEvent::WeightCapSaturated {
                channel,
                requested_bias,
                cap,
            } => {
                b.str("channel", channel)
                    .f64("requested_bias", *requested_bias)
                    .f64("cap", *cap);
            }
            TraceEvent::Heartbeat {
                shards_done,
                total_shards,
                machine_years,
                due_ci_half,
                sdc_ci_half,
            } => {
                b.u64("shards_done", u64::from(*shards_done))
                    .u64("total_shards", u64::from(*total_shards))
                    .f64("machine_years", *machine_years)
                    .f64("due_ci_half", *due_ci_half)
                    .f64("sdc_ci_half", *sdc_ci_half);
            }
            TraceEvent::RunEnd {
                shards_done,
                wall_ms,
                retries,
            } => {
                b.u64("shards_done", u64::from(*shards_done))
                    .u64("wall_ms", *wall_ms)
                    .u64("retries", *retries);
            }
        }
        b.finish()
    }

    /// Decodes one trace line back into `(seq, event)`.
    ///
    /// Rejects lines whose `schema` field is not [`TRACE_SCHEMA`] or whose
    /// `event` field names an unknown variant.
    pub fn parse_line(line: &str) -> Result<(u64, TraceEvent), JsonError> {
        let obj = parse_object(line)?;
        let schema = obj.str("schema")?;
        if schema != TRACE_SCHEMA {
            return Err(JsonError(format!(
                "schema mismatch: expected {TRACE_SCHEMA:?}, got {schema:?}"
            )));
        }
        let seq = obj.u64("seq")?;
        let event = Self::from_object(&obj)?;
        Ok((seq, event))
    }

    fn from_object(obj: &JsonObject) -> Result<TraceEvent, JsonError> {
        let kind = obj.str("event")?;
        Ok(match kind {
            "run_start" => TraceEvent::RunStart {
                label: obj.str("label")?.to_string(),
                total_shards: obj.u32("total_shards")?,
                dimms_per_shard: obj.u64("dimms_per_shard")?,
                estimator: obj.str("estimator")?.to_string(),
                threads: obj.u32("threads")?,
            },
            "resume_adopted" => TraceEvent::ResumeAdopted {
                generation: obj.u64("generation")?,
                shards_done: obj.u32("shards_done")?,
                total_shards: obj.u32("total_shards")?,
                fell_back: obj.bool("fell_back")?,
            },
            "shard_start" => TraceEvent::ShardStart {
                shard: obj.u32("shard")?,
                dimm_lo: obj.u64("dimm_lo")?,
                dimm_hi: obj.u64("dimm_hi")?,
            },
            "shard_end" => TraceEvent::ShardEnd {
                shard: obj.u32("shard")?,
                wall_ms: obj.u64("wall_ms")?,
                dimms: obj.u64("dimms")?,
            },
            "shard_retry" => TraceEvent::ShardRetry {
                shard: obj.u32("shard")?,
                attempt: obj.u32("attempt")?,
                backoff_ms: obj.u64("backoff_ms")?,
                error: obj.str("error")?.to_string(),
            },
            "checkpoint_written" => TraceEvent::CheckpointWritten {
                generation: obj.u64("generation")?,
                shards_done: obj.u32("shards_done")?,
                write_ms: obj.u64("write_ms")?,
            },
            "weight_cap_saturated" => TraceEvent::WeightCapSaturated {
                channel: obj.str("channel")?.to_string(),
                requested_bias: obj.f64("requested_bias")?,
                cap: obj.f64("cap")?,
            },
            "heartbeat" => TraceEvent::Heartbeat {
                shards_done: obj.u32("shards_done")?,
                total_shards: obj.u32("total_shards")?,
                machine_years: obj.f64("machine_years")?,
                due_ci_half: obj.f64("due_ci_half")?,
                sdc_ci_half: obj.f64("sdc_ci_half")?,
            },
            "run_end" => TraceEvent::RunEnd {
                shards_done: obj.u32("shards_done")?,
                wall_ms: obj.u64("wall_ms")?,
                retries: obj.u64("retries")?,
            },
            other => return Err(JsonError(format!("unknown event kind {other:?}"))),
        })
    }
}

/// Counters describing what a finished [`Tracer`] did. Every emitted
/// event is accounted for exactly once:
/// `emitted == written + dropped + io_errors`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Events accepted by `emit` (dropped or not).
    pub emitted: u64,
    /// Events actually written to the sink.
    pub written: u64,
    /// Events dropped because the channel was full.
    pub dropped: u64,
    /// Events lost because the sink's write failed (counted, never
    /// panicked over — a broken sink must not take the run down).
    pub io_errors: u64,
}

struct Shared {
    seq: AtomicU64,
    dropped: AtomicU64,
    io_errors: AtomicU64,
}

/// Non-blocking trace emitter backed by a writer thread.
///
/// Cloning is cheap; all clones feed the same writer.  Call
/// [`Tracer::finish`] on the last handle (or let every clone drop) to
/// flush the sink and join the writer thread.
pub struct Tracer {
    tx: Option<SyncSender<String>>,
    shared: Arc<Shared>,
    writer: Option<JoinHandle<u64>>,
}

impl Tracer {
    /// Creates a tracer writing JSONL to `sink` through a channel bounded
    /// at `capacity` events.
    pub fn new(sink: Box<dyn Write + Send>, capacity: usize) -> Self {
        let (tx, rx) = sync_channel::<String>(capacity.max(1));
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("muse-trace".into())
            .spawn(move || {
                // Lines go to the sink unbuffered: a slow sink must show up
                // as channel backpressure (and dropped events), not hide
                // behind an in-memory buffer that defers the stall. A
                // *failing* sink is counted per lost line — never a panic,
                // never silent — so callers can surface the loss.
                let mut sink = sink;
                let mut written = 0u64;
                for mut line in rx {
                    line.push('\n');
                    if sink.write_all(line.as_bytes()).is_ok() {
                        written += 1;
                    } else {
                        writer_shared.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let _ = sink.flush();
                written
            })
            .expect("spawn trace writer thread");
        Self {
            tx: Some(tx),
            shared,
            writer: Some(writer),
        }
    }

    /// Creates a tracer appending to the file at `path` (created if
    /// missing, truncated if present).
    pub fn to_file(path: &Path, capacity: usize) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(file), capacity))
    }

    /// Emits an event without ever blocking.
    ///
    /// The sequence number is assigned unconditionally; if the channel is
    /// full the event is dropped and counted, leaving a visible gap in the
    /// written sequence.
    pub fn emit(&self, event: &TraceEvent) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let line = event.to_json_line(seq);
        if let Some(tx) = &self.tx {
            match tx.try_send(line) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Events lost to sink write errors so far. (The count trails the
    /// writer thread slightly; [`Tracer::finish`] returns the settled
    /// total.)
    pub fn io_errors(&self) -> u64 {
        self.shared.io_errors.load(Ordering::Relaxed)
    }

    /// Closes the channel, joins the writer thread, and returns the final
    /// counters.  Clones of this tracer become inert (their emits count as
    /// dropped).
    pub fn finish(mut self) -> TraceSummary {
        self.tx = None;
        let written = match self.writer.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        };
        TraceSummary {
            emitted: self.shared.seq.load(Ordering::Relaxed),
            written,
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            io_errors: self.shared.io_errors.load(Ordering::Relaxed),
        }
    }
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            writer: None,
        }
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seq", &self.shared.seq.load(Ordering::Relaxed))
            .field("dropped", &self.shared.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A `Write` sink that appends into a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                label: "rs64@ddr5".into(),
                total_shards: 8,
                dimms_per_shard: 1000,
                estimator: "importance".into(),
                threads: 4,
            },
            TraceEvent::ResumeAdopted {
                generation: 3,
                shards_done: 2,
                total_shards: 8,
                fell_back: true,
            },
            TraceEvent::ShardStart {
                shard: 2,
                dimm_lo: 2000,
                dimm_hi: 3000,
            },
            TraceEvent::ShardRetry {
                shard: 2,
                attempt: 0,
                backoff_ms: 50,
                error: "injected fault: \"io\"".into(),
            },
            TraceEvent::ShardEnd {
                shard: 2,
                wall_ms: 1234,
                dimms: 1000,
            },
            TraceEvent::CheckpointWritten {
                generation: 4,
                shards_done: 3,
                write_ms: 7,
            },
            TraceEvent::WeightCapSaturated {
                channel: "single".into(),
                requested_bias: 1e6,
                cap: 0.5,
            },
            TraceEvent::Heartbeat {
                shards_done: 3,
                total_shards: 8,
                machine_years: 750.25,
                due_ci_half: 1.5e-3,
                sdc_ci_half: 2.5e-4,
            },
            TraceEvent::RunEnd {
                shards_done: 8,
                wall_ms: 9876,
                retries: 1,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json_lines() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let line = event.to_json_line(i as u64);
            let (seq, back) = TraceEvent::parse_line(&line).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(back, event, "line was {line}");
        }
    }

    #[test]
    fn schema_and_kind_are_validated() {
        let line = sample_events()[0].to_json_line(0);
        let wrong_schema = line.replace("muse-trace/v1", "muse-trace/v0");
        assert!(TraceEvent::parse_line(&wrong_schema).is_err());
        let wrong_kind = line.replace("run_start", "run_begin");
        assert!(TraceEvent::parse_line(&wrong_kind).is_err());
    }

    #[test]
    fn tracer_writes_all_events_in_order() {
        let buf = SharedBuf::default();
        let tracer = Tracer::new(Box::new(buf.clone()), 64);
        let events = sample_events();
        for event in &events {
            tracer.emit(event);
        }
        let summary = tracer.finish();
        assert_eq!(summary.emitted, events.len() as u64);
        assert_eq!(summary.written, events.len() as u64);
        assert_eq!(summary.dropped, 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (i, (line, event)) in lines.iter().zip(&events).enumerate() {
            let (seq, back) = TraceEvent::parse_line(line).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(&back, event);
        }
    }

    #[test]
    fn full_channel_drops_instead_of_blocking() {
        // A sink that blocks forever would hang the writer thread; emulate
        // sustained backpressure with a slow sink and a capacity-1 channel.
        struct SlowSink;
        impl Write for SlowSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Box::new(SlowSink), 1);
        let start = std::time::Instant::now();
        let n = 200u64;
        for i in 0..n {
            tracer.emit(&TraceEvent::ShardStart {
                shard: i as u32,
                dimm_lo: 0,
                dimm_hi: 1,
            });
        }
        // 200 emits against a 20 ms/line sink must return almost instantly
        // if emit never blocks.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "emit blocked on a slow sink"
        );
        let summary = tracer.finish();
        assert_eq!(summary.emitted, n);
        assert!(summary.dropped > 0, "expected drops under backpressure");
        assert_eq!(summary.written + summary.dropped, n);
    }

    #[test]
    fn failing_sink_counts_io_errors_instead_of_panicking() {
        // Every write fails: nothing lands, nothing panics, every event
        // is accounted for as an io_error.
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink is broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("sink is broken"))
            }
        }
        let tracer = Tracer::new(Box::new(FailingSink), 64);
        let events = sample_events();
        for event in &events {
            tracer.emit(event);
        }
        let summary = tracer.finish();
        assert_eq!(summary.emitted, events.len() as u64);
        assert_eq!(summary.written, 0);
        assert_eq!(summary.io_errors + summary.dropped, events.len() as u64);
        assert!(summary.io_errors > 0);
        assert_eq!(
            summary.emitted,
            summary.written + summary.dropped + summary.io_errors,
            "every event must be accounted for exactly once"
        );
    }

    #[test]
    fn intermittent_sink_failures_account_for_every_event() {
        // The sink fails on every third line; written + io_errors must
        // still cover everything that reached the writer.
        struct Flaky(u64);
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0 += 1;
                if self.0.is_multiple_of(3) {
                    Err(std::io::Error::other("intermittent"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Box::new(Flaky(0)), 256);
        for i in 0..30u32 {
            tracer.emit(&TraceEvent::ShardStart {
                shard: i,
                dimm_lo: 0,
                dimm_hi: 1,
            });
        }
        let summary = tracer.finish();
        assert_eq!(summary.emitted, 30);
        assert_eq!(summary.written + summary.dropped + summary.io_errors, 30);
        assert!(summary.io_errors > 0 && summary.written > 0);
    }

    #[test]
    fn clones_share_sequence_and_drop_counters() {
        let buf = SharedBuf::default();
        let tracer = Tracer::new(Box::new(buf.clone()), 64);
        let clone = tracer.clone();
        tracer.emit(&TraceEvent::RunEnd {
            shards_done: 1,
            wall_ms: 1,
            retries: 0,
        });
        clone.emit(&TraceEvent::RunEnd {
            shards_done: 2,
            wall_ms: 2,
            retries: 0,
        });
        drop(clone);
        let summary = tracer.finish();
        assert_eq!(summary.emitted, 2);
        assert_eq!(summary.written, 2);
    }
}
