//! Property tests for the MUSE code family: roundtrips, correction
//! guarantees, and detection invariants over randomly drawn payloads, error
//! patterns, and layouts.

use muse_core::{presets, Decoded, MuseCode, SymbolMap, Word};
use proptest::prelude::*;

fn word_bits(n: u32) -> impl Strategy<Value = Word> {
    prop::array::uniform5(any::<u64>())
        .prop_map(move |limbs| Word::from_limbs(limbs) & Word::mask(n))
}

/// Strategy: one of the paper's preset codes.
fn preset_code() -> impl Strategy<Value = MuseCode> {
    prop_oneof![
        Just(presets::muse_144_132()),
        Just(presets::muse_80_69()),
        Just(presets::muse_80_67()),
        Just(presets::muse_80_70()),
        Just(presets::muse_268_256()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_roundtrip(code in preset_code(), raw in word_bits(320)) {
        let payload = raw & Word::mask(code.k_bits());
        let cw = code.encode(&payload);
        prop_assert_eq!(cw.rem_u64(code.multiplier()), 0);
        prop_assert_eq!(code.payload_of(&cw), payload);
        match code.decode(&cw) {
            Decoded::Clean { payload: p } => prop_assert_eq!(p, payload),
            other => prop_assert!(false, "clean word decoded as {:?}", other),
        }
    }

    #[test]
    fn bidirectional_codes_correct_any_device_error(
        raw in word_bits(320),
        sym_seed: usize,
        pattern_seed: u64,
    ) {
        for code in [presets::muse_144_132(), presets::muse_80_69(), presets::muse_268_256()] {
            let payload = raw & Word::mask(code.k_bits());
            let cw = code.encode(&payload);
            let sym = sym_seed % code.symbol_map().num_symbols();
            let bits = code.symbol_map().bits_of(sym);
            let pattern = 1 + (pattern_seed % ((1 << bits.len()) - 1));
            let mut corrupted = cw;
            for (i, &bit) in bits.iter().enumerate() {
                if pattern >> i & 1 == 1 {
                    corrupted.toggle_bit(bit);
                }
            }
            match code.decode(&corrupted) {
                Decoded::Corrected { payload: p, symbol, .. } => {
                    prop_assert_eq!(p, payload);
                    prop_assert_eq!(symbol, sym);
                }
                other => prop_assert!(false, "{}: {:?}", code.name(), other),
            }
        }
    }

    #[test]
    fn asymmetric_code_corrects_retention_errors(
        raw in word_bits(320),
        sym_seed: usize,
        pattern_seed: u64,
    ) {
        // MUSE(80,67): only 1→0 flips are in-model. Clear a random subset of
        // the stored 1-bits of one device.
        let code = presets::muse_80_67();
        let payload = raw & Word::mask(code.k_bits());
        let cw = code.encode(&payload);
        let sym = sym_seed % code.symbol_map().num_symbols();
        let bits = code.symbol_map().bits_of(sym);
        let mut corrupted = cw;
        let mut flipped_any = false;
        for (i, &bit) in bits.iter().enumerate() {
            if pattern_seed >> i & 1 == 1 && cw.bit(bit) {
                corrupted.set_bit(bit, false);
                flipped_any = true;
            }
        }
        if flipped_any {
            match code.decode(&corrupted) {
                Decoded::Corrected { payload: p, symbol, .. } => {
                    prop_assert_eq!(p, payload);
                    prop_assert_eq!(symbol, sym);
                }
                other => prop_assert!(false, "{:?}", other),
            }
        } else {
            prop_assert_eq!(code.decode(&corrupted).payload(), Some(payload));
        }
    }

    #[test]
    fn hybrid_code_corrects_single_bit_both_ways(
        raw in word_bits(320),
        bit in 0u32..80,
    ) {
        let code = presets::muse_80_70();
        let payload = raw & Word::mask(code.k_bits());
        let cw = code.encode(&payload);
        let mut corrupted = cw;
        corrupted.toggle_bit(bit); // either direction, anywhere
        prop_assert_eq!(code.decode(&corrupted).payload(), Some(payload));
    }

    #[test]
    fn decode_never_accepts_beyond_model_as_clean(
        raw in word_bits(320),
        sym_a: usize,
        sym_b: usize,
        pat_a in 1u64..16,
        pat_b in 1u64..16,
    ) {
        // Two-device bidirectional corruption on the ChipKill codes: decode
        // may miscorrect (Table IV quantifies how often) but must never
        // return Clean, and a miscorrection must never resurrect the payload.
        for code in [presets::muse_144_132(), presets::muse_80_69()] {
            let payload = raw & Word::mask(code.k_bits());
            let cw = code.encode(&payload);
            let n_sym = code.symbol_map().num_symbols();
            let (a, b) = (sym_a % n_sym, sym_b % n_sym);
            if a == b {
                continue;
            }
            let mut corrupted = cw;
            for (i, &bit) in code.symbol_map().bits_of(a).iter().enumerate() {
                if pat_a >> i & 1 == 1 {
                    corrupted.toggle_bit(bit);
                }
            }
            for (i, &bit) in code.symbol_map().bits_of(b).iter().enumerate() {
                if pat_b >> i & 1 == 1 {
                    corrupted.toggle_bit(bit);
                }
            }
            match code.decode(&corrupted) {
                Decoded::Clean { .. } => prop_assert!(false, "double error decoded clean"),
                Decoded::Corrected { payload: p, .. } => prop_assert_ne!(p, payload),
                Decoded::Detected => {}
            }
        }
    }

    #[test]
    fn storage_shuffle_roundtrip(raw in word_bits(80)) {
        for map in [
            SymbolMap::sequential(80, 4).unwrap(),
            SymbolMap::interleaved(80, 10).unwrap(),
            SymbolMap::eq6_hybrid_80(),
        ] {
            let stored = map.shuffle_to_storage(&raw);
            prop_assert_eq!(map.unshuffle_from_storage(&stored), raw);
            prop_assert_eq!(stored.count_ones(), raw.count_ones());
        }
    }

    #[test]
    fn metadata_survives_device_failure(data: u64, meta in 0u64..32, sym in 0usize..20) {
        let code = presets::muse_80_69();
        let payload = code.pack_metadata(data, meta);
        let cw = code.encode(&payload);
        let corrupted = cw ^ *code.symbol_map().mask(sym);
        let recovered = code.decode(&corrupted).payload().expect("chipkill");
        prop_assert_eq!(code.unpack_metadata(&recovered), (data, meta));
    }

    #[test]
    fn line_codec_roundtrip(data: [u64; 8], meta_seed: u64, fault_word in 0usize..8, fault_dev in 0usize..20) {
        let codec = muse_core::LineCodec::new(presets::muse_80_69()).unwrap();
        let meta = meta_seed & ((1 << 40) - 1);
        let mut stored = codec.encode_line(&data, meta);
        stored[fault_word] = stored[fault_word]
            ^ *codec.code().symbol_map().mask(fault_dev);
        let line = codec.decode_line(&stored).unwrap();
        prop_assert_eq!(line.data, data);
        prop_assert_eq!(line.metadata, meta);
        prop_assert_eq!(line.corrections.as_slice(), &[(fault_word, fault_dev)]);
    }

    #[test]
    fn spec_roundtrip_random_probe(code in preset_code(), raw in word_bits(320)) {
        let loaded = muse_core::MuseCode::from_spec_string(&code.to_spec_string()).unwrap();
        let payload = raw & Word::mask(code.k_bits());
        prop_assert_eq!(loaded.encode(&payload), code.encode(&payload));
    }

    #[test]
    fn fastmod_agrees_with_division(raw in word_bits(320)) {
        for code in [presets::muse_144_132(), presets::muse_80_69(), presets::muse_268_256()] {
            let x = raw & Word::mask(code.n_bits());
            prop_assert_eq!(code.remainder(&x), x.rem_u64(code.multiplier()));
        }
    }
}
