//! Property test: the incremental residue-syndrome fast path agrees with
//! the wide-word decoder on random corruptions, for every preset code.
//!
//! This is the safety net under the simulators' hot path: `muse-faultsim`
//! classifies trials entirely in residue space, and any divergence from
//! `MuseCode::decode` would silently skew every Monte-Carlo estimate.

use muse_core::{
    find_multipliers, presets, Decoded, Direction, ErrorModel, FastDecode, MuseCode, SearchOptions,
    SymbolMap, Word,
};
use proptest::prelude::*;

fn word_bits(n: u32) -> impl Strategy<Value = Word> {
    prop::array::uniform5(any::<u64>())
        .prop_map(move |limbs| Word::from_limbs(limbs) & Word::mask(n))
}

/// A 144-bit map whose first and last symbols each span the entire
/// codeword (bit 3 ↔ bit 143 swapped): beyond the old 120-bit span limit,
/// so this layout used to be kernel-less and classify through the wide
/// path. The chunked span tabulation now builds a kernel for it; the
/// multiplier comes from the Algorithm 1 search (first 13-bit hit).
fn spread_144_131() -> MuseCode {
    let mut groups: Vec<Vec<u32>> = (0..36).map(|i| (4 * i..4 * i + 4).collect()).collect();
    groups[0][3] = 143;
    groups[35][3] = 3;
    let map = SymbolMap::from_groups(144, groups).expect("valid spread layout");
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let found = find_multipliers(
        &map,
        &model,
        13,
        SearchOptions {
            threads: 0,
            limit: 1,
        },
    );
    MuseCode::new(map, model, found[0]).expect("searched multiplier is valid")
}

/// Strategy: every preset code of the paper, plus the spread-map layout
/// the widened kernel tabulation newly covers.
fn preset_code() -> impl Strategy<Value = MuseCode> {
    prop_oneof![
        Just(presets::muse_144_132()),
        Just(presets::muse_80_69()),
        Just(presets::muse_80_67()),
        Just(presets::muse_80_70()),
        Just(presets::muse_268_256()),
        Just(presets::muse_144_128()),
        Just(spread_144_131()),
    ]
}

#[test]
fn spread_map_gets_a_kernel() {
    // The layout exceeding the old u128 span limit now tabulates; its
    // kernel must exist (every property below then covers it too).
    let code = spread_144_131();
    assert_eq!(code.multiplier(), 7149);
    assert!(
        code.kernel().is_some(),
        "chunked tabulation covers spread maps"
    );
}

/// Replaces symbol `sym`'s bits in `word` with `content`.
fn with_content(code: &MuseCode, word: &Word, sym: usize, content: u16) -> Word {
    let mut out = *word;
    for (i, &bit) in code.symbol_map().bits_of(sym).iter().enumerate() {
        out.set_bit(bit, content >> i & 1 == 1);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_path_matches_wide_decode(code in preset_code(), raw in word_bits(320), noise in word_bits(320)) {
        // An arbitrary corruption of an arbitrary codeword: any XOR mask
        // over the n codeword bits (0, 1, or many symbols touched).
        let payload = raw & Word::mask(code.k_bits());
        let corrupted = code.encode(&payload) ^ (noise & Word::mask(code.n_bits()));
        let kernel = code.kernel().expect("presets support the kernel");

        let contents = kernel.contents_of_word(code.symbol_map(), &corrupted);
        let rem = kernel.residue_of_contents(&contents);
        prop_assert_eq!(rem, code.remainder(&corrupted), "syndrome mismatch");

        match (kernel.classify(rem), code.decode(&corrupted)) {
            (FastDecode::Clean, Decoded::Clean { payload: p }) => {
                prop_assert_eq!(p, code.payload_of(&corrupted));
            }
            (FastDecode::Detected, Decoded::Detected) => {}
            (FastDecode::Correct { symbol }, wide) => {
                match (kernel.correct(rem, contents[symbol]), wide) {
                    (None, Decoded::Detected) => {}
                    (Some(w), Decoded::Corrected { payload: p, symbol: ws, error: _ }) => {
                        prop_assert_eq!(ws, symbol, "corrected symbol differs");
                        let rebuilt = with_content(&code, &corrupted, symbol, w);
                        prop_assert_eq!(code.payload_of(&rebuilt), p, "corrected payload differs");
                        prop_assert_eq!(code.remainder(&rebuilt), 0, "correction must restore divisibility");
                    }
                    (fast, wide) => prop_assert!(false, "{}: fast {:?} vs wide {:?}", code.name(), fast, wide),
                }
            }
            (fast, wide) => prop_assert!(false, "{}: fast {:?} vs wide {:?}", code.name(), fast, wide),
        }
    }

    #[test]
    fn encoded_contents_match_encoder(code in preset_code(), raw in word_bits(320)) {
        // The simulators derive symbol contents straight from the payload
        // limbs (check-value fold, no wide multiply); the result must match
        // bit-gathering from the actually-encoded word.
        let payload = raw & Word::mask(code.k_bits());
        let kernel = code.kernel().expect("presets support the kernel");
        let cw = code.encode(&payload);
        let reference = kernel.contents_of_word(code.symbol_map(), &cw);
        let limbs = payload.to_limbs();
        let x = kernel.check_value(&limbs);
        for (sym, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(
                kernel.encoded_content(sym, &limbs, x),
                expected,
                "symbol {} of {}", sym, code.name()
            );
        }
        prop_assert_eq!(kernel.residue_of_contents(&reference), 0);
    }
}
