//! Residue-space erasure solving must match the wide erasure decoder.
//!
//! For every preset code with a kernel: random payloads, random erased
//! symbol sets (known-failed devices), optional extra corruption on the
//! surviving symbols, optional garbage in the erased symbols. The wide path
//! runs [`MuseCode::recover_erasures`] on the materialized word; the fast
//! path accumulates the survivors' syndrome contribution incrementally and
//! looks the target residue up in the [`ErasureTable`]. They must agree on
//! recoverability *and* on the recovered payload.

use muse_core::{presets, ErasureSolve, MuseCode, Word};

/// xorshift64* — a tiny in-test generator (muse-core has no RNG dep).
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn preset_codes() -> Vec<MuseCode> {
    let mut codes = presets::table1();
    codes.extend([presets::muse_268_256(), presets::muse_144_128()]);
    codes
}

/// The degraded-mode read, fast path: syndrome contribution of the
/// surviving symbols (as read, i.e. after `flips`), then the table lookup.
fn fast_recover(
    code: &MuseCode,
    contents: &[u16],
    erased: &[usize],
    flips: &[(usize, u16)],
) -> Option<Vec<u16>> {
    let kernel = code.kernel().expect("preset kernels exist");
    let table = kernel.erasure_table(erased);
    // rem_rest = Σ_{s∉E} R_s(read content). Incremental form: the intact
    // word has syndrome 0, so Σ_{s∉E} R_s(orig) = −Σ_{s∈E} R_s(orig);
    // flips on survivors then move it by flip_delta.
    let mut rem_rest = 0u64;
    for &s in erased {
        let r = kernel.residue(s, contents[s]);
        rem_rest = kernel.add_mod(rem_rest, if r == 0 { 0 } else { kernel.modulus() - r });
    }
    for &(s, p) in flips {
        rem_rest = kernel.add_mod(rem_rest, kernel.flip_delta(s, contents[s], p));
    }
    let m = kernel.modulus();
    let target = if rem_rest == 0 { 0 } else { m - rem_rest };
    match table.solve(target) {
        ErasureSolve::None | ErasureSolve::Ambiguous => None,
        ErasureSolve::Unique(f) => {
            Some((0..erased.len()).map(|i| table.content_of(f, i)).collect())
        }
    }
}

#[test]
fn erasure_table_matches_wide_recovery() {
    for code in preset_codes() {
        let kernel = code.kernel().expect("preset kernels exist");
        let map = code.symbol_map();
        let n_sym = map.num_symbols();
        let mut rng = TestRng(0xE2A5_0000 ^ code.multiplier());
        for trial in 0..200u32 {
            // A random payload, encoded wide; its per-symbol contents.
            let mut limbs = [0u64; 5];
            for limb in &mut limbs {
                *limb = rng.next();
            }
            let payload = Word::from_limbs(limbs) & Word::mask(code.k_bits());
            let cw = code.encode(&payload);
            let contents = kernel.contents_of_word(map, &cw);

            // Erase 1 or 2 distinct symbols (sometimes adjacent — the
            // paper's recoverable pairs — sometimes arbitrary).
            let k = 1 + (trial % 2) as usize;
            let first = rng.below(n_sym as u64) as usize;
            let mut erased = vec![first];
            if k == 2 {
                let second = if trial % 4 == 1 {
                    (first + 1) % n_sym
                } else {
                    let mut s = rng.below(n_sym as u64) as usize;
                    if s == first {
                        s = (s + 1) % n_sym;
                    }
                    s
                };
                erased.push(second);
            }

            // 0..2 extra flips on surviving symbols.
            let mut flips: Vec<(usize, u16)> = Vec::new();
            for _ in 0..trial % 3 {
                let s = rng.below(n_sym as u64) as usize;
                if erased.contains(&s) || flips.iter().any(|&(f, _)| f == s) {
                    continue;
                }
                let pattern = 1 + rng.below((1 << kernel.symbol_bits(s)) - 1) as u16;
                flips.push((s, pattern));
            }

            // Wide path: corrupt survivors, garbage the erased symbols.
            let mut word = cw;
            for &(s, p) in &flips {
                map.apply_xor_pattern(&mut word, s, p as u64);
            }
            for &s in &erased {
                map.apply_xor_pattern(&mut word, s, rng.below(1 << kernel.symbol_bits(s)));
            }
            let wide = code.recover_erasures(&word, &erased);
            let fast = fast_recover(&code, &contents, &erased, &flips);

            match (&fast, &wide) {
                (None, None) => {}
                (Some(filling), Some(recovered)) => {
                    // The wide payload must equal the word completed with
                    // the fast filling.
                    let mut candidate = word;
                    for (i, &s) in erased.iter().enumerate() {
                        for (bit_idx, &bit) in map.bits_of(s).iter().enumerate() {
                            candidate.set_bit(bit, filling[i] >> bit_idx & 1 == 1);
                        }
                    }
                    assert_eq!(
                        code.remainder(&candidate),
                        0,
                        "{} trial {trial}",
                        code.name()
                    );
                    assert_eq!(
                        candidate >> code.r_bits(),
                        *recovered,
                        "{} trial {trial}: payloads diverge",
                        code.name()
                    );
                }
                _ => panic!(
                    "{} trial {trial}: fast {fast:?} vs wide {wide:?} (erased {erased:?}, \
                     flips {flips:?})",
                    code.name()
                ),
            }
        }
    }
}

#[test]
fn single_device_erasure_is_always_injective() {
    // In-model guarantee: all nonzero error values of one device have
    // distinct nonzero remainders, so distinct fillings cannot collide.
    for code in preset_codes() {
        let kernel = code.kernel().expect("preset kernels exist");
        for sym in 0..kernel.num_symbols() {
            let table = kernel.erasure_table(&[sym]);
            assert!(table.is_injective(), "{} symbol {sym}", code.name());
            assert_eq!(table.symbols(), &[sym]);
        }
    }
}

#[test]
fn clean_degraded_reads_recover_original_contents() {
    // No extra errors: the unique filling must be the original contents of
    // the erased devices, for every adjacent pair (the Section IV claim).
    let code = presets::muse_80_69();
    let kernel = code.kernel().expect("preset kernels exist");
    let mut rng = TestRng(0xC1EA);
    for pair in 0..kernel.num_symbols() - 1 {
        let erased = [pair, pair + 1];
        let mut limbs = [0u64; 5];
        for limb in &mut limbs {
            *limb = rng.next();
        }
        let payload = Word::from_limbs(limbs) & Word::mask(code.k_bits());
        let contents = kernel.contents_of_word(code.symbol_map(), &code.encode(&payload));
        let recovered = fast_recover(&code, &contents, &erased, &[])
            .unwrap_or_else(|| panic!("adjacent pair {pair} must recover"));
        assert_eq!(recovered, vec![contents[pair], contents[pair + 1]]);
    }
}

#[test]
fn three_erased_devices_exceed_the_residue_space() {
    // 3 × 4-bit devices enumerate 4096 fillings > m = 4065: pigeonhole
    // forces collisions, so the set cannot be injective (and a degraded
    // DIMM with three dead chips is unrecoverable in general).
    let code = presets::muse_144_132();
    let kernel = code.kernel().expect("preset kernels exist");
    let table = kernel.erasure_table(&[0, 5, 11]);
    assert!(!table.is_injective());
}

#[test]
#[should_panic(expected = "search space too large")]
fn erasure_table_limit_enforced() {
    let code = presets::muse_144_132();
    let kernel = code.kernel().expect("preset kernels exist");
    let _ = kernel.erasure_table(&[0, 1, 2, 3, 4]);
}
