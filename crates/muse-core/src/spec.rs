//! Portable text serialization of a code specification — the handoff
//! artifact between the search tooling and a hardware-generation flow.
//!
//! The format is line-oriented and versioned:
//!
//! ```text
//! muse-code v1
//! n 80
//! multiplier 2005
//! model C4B
//! symbol 0: 0 1 2 3
//! symbol 1: 4 5 6 7
//! ...
//! ```
//!
//! Loading re-validates everything (the multiplier is re-checked against
//! the layout), so a tampered or stale spec cannot produce a miscorrecting
//! code.

use std::fmt;

use crate::{BuildError, Direction, ErrorModel, ErrorTerm, MuseCode, SymbolMap};

/// Error parsing a code spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line number (0 for structural problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSpecError {}

fn spec_err(line: usize, message: impl Into<String>) -> ParseSpecError {
    ParseSpecError {
        line,
        message: message.into(),
    }
}

/// Serializes a code to the portable text format.
pub fn to_spec_string(code: &MuseCode) -> String {
    let mut out = String::from("muse-code v1\n");
    out.push_str(&format!("n {}\n", code.n_bits()));
    out.push_str(&format!("multiplier {}\n", code.multiplier()));
    out.push_str(&format!("model {}\n", code.class_name()));
    for sym in 0..code.symbol_map().num_symbols() {
        let bits: Vec<String> = code
            .symbol_map()
            .bits_of(sym)
            .iter()
            .map(|b| b.to_string())
            .collect();
        out.push_str(&format!("symbol {sym}: {}\n", bits.join(" ")));
    }
    out
}

/// Parses and fully re-validates a code spec.
///
/// # Errors
///
/// Returns [`ParseSpecError`] for malformed text and propagates layout /
/// multiplier validation failures (wrapped in the error message).
pub fn from_spec_string(text: &str) -> Result<MuseCode, ParseSpecError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (line, header) = lines.next().ok_or_else(|| spec_err(0, "empty spec"))?;
    if header != "muse-code v1" {
        return Err(spec_err(line, format!("unknown header {header:?}")));
    }
    let mut n_bits: Option<u32> = None;
    let mut multiplier: Option<u64> = None;
    let mut model: Option<ErrorModel> = None;
    let mut symbols: Vec<(usize, Vec<u32>)> = Vec::new();

    for (line, content) in lines {
        if content.is_empty() || content.starts_with('#') {
            continue;
        }
        let (key, rest) = content.split_once(' ').unwrap_or((content, ""));
        match key {
            "n" => {
                n_bits = Some(
                    rest.trim()
                        .parse()
                        .map_err(|e| spec_err(line, format!("bad n: {e}")))?,
                )
            }
            "multiplier" => {
                multiplier = Some(
                    rest.trim()
                        .parse()
                        .map_err(|e| spec_err(line, format!("bad multiplier: {e}")))?,
                )
            }
            "model" => model = Some(parse_model(line, rest.trim())?),
            "symbol" => {
                let (idx_part, bits_part) = rest
                    .split_once(':')
                    .ok_or_else(|| spec_err(line, "symbol line needs `index: bits`"))?;
                let idx: usize = idx_part
                    .trim()
                    .parse()
                    .map_err(|e| spec_err(line, format!("bad symbol index: {e}")))?;
                let bits: Result<Vec<u32>, _> =
                    bits_part.split_whitespace().map(str::parse).collect();
                let bits = bits.map_err(|e| spec_err(line, format!("bad bit list: {e}")))?;
                symbols.push((idx, bits));
            }
            other => return Err(spec_err(line, format!("unknown key {other:?}"))),
        }
    }

    let n_bits = n_bits.ok_or_else(|| spec_err(0, "missing `n`"))?;
    let multiplier = multiplier.ok_or_else(|| spec_err(0, "missing `multiplier`"))?;
    let model = model.ok_or_else(|| spec_err(0, "missing `model`"))?;
    symbols.sort_by_key(|&(idx, _)| idx);
    for (expect, &(idx, _)) in symbols.iter().enumerate() {
        if idx != expect {
            return Err(spec_err(
                0,
                format!("symbol indices not contiguous at {idx}"),
            ));
        }
    }
    let groups: Vec<Vec<u32>> = symbols.into_iter().map(|(_, bits)| bits).collect();
    let map = SymbolMap::from_groups(n_bits, groups)
        .map_err(|e| spec_err(0, format!("invalid layout: {e}")))?;
    MuseCode::new(map, model, multiplier).map_err(|e| spec_err(0, format!("invalid code: {e}")))
}

/// Parses a PST model name like `C4B`, `C8A`, or `C4A_U1B`.
fn parse_model(line: usize, name: &str) -> Result<ErrorModel, ParseSpecError> {
    let mut terms = Vec::new();
    for part in name.split('_') {
        let term = if let Some(rest) = part.strip_prefix('C') {
            let dir = parse_direction(line, rest)?;
            ErrorTerm::Symbol(dir)
        } else if let Some(rest) = part.strip_prefix("U1") {
            let dir = match rest {
                "B" => Direction::Bidirectional,
                "A" => Direction::OneToZero,
                other => return Err(spec_err(line, format!("bad U1 suffix {other:?}"))),
            };
            ErrorTerm::SingleBit(dir)
        } else {
            return Err(spec_err(line, format!("unknown model term {part:?}")));
        };
        terms.push(term);
    }
    if terms.is_empty() {
        return Err(spec_err(line, "empty model"));
    }
    Ok(ErrorModel::from_terms(terms))
}

fn parse_direction(line: usize, sized: &str) -> Result<Direction, ParseSpecError> {
    // `C<s><B|A>`: the size digits are implied by the layout, only the
    // suffix matters here.
    match sized.chars().last() {
        Some('B') => Ok(Direction::Bidirectional),
        Some('A') => Ok(Direction::OneToZero),
        other => Err(spec_err(line, format!("bad model suffix {other:?}"))),
    }
}

impl MuseCode {
    /// Serializes this code to the portable spec format (see the
    /// [`spec`](crate::spec) module docs).
    pub fn to_spec_string(&self) -> String {
        to_spec_string(self)
    }

    /// Parses and re-validates a spec produced by
    /// [`Self::to_spec_string`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseSpecError`] for malformed or invalid specs.
    pub fn from_spec_string(text: &str) -> Result<Self, ParseSpecError> {
        from_spec_string(text)
    }
}

impl From<BuildError> for ParseSpecError {
    fn from(e: BuildError) -> Self {
        spec_err(0, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roundtrip_every_preset() {
        for code in presets::table1()
            .into_iter()
            .chain([presets::muse_268_256()])
        {
            let spec = code.to_spec_string();
            let loaded = MuseCode::from_spec_string(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", code.name()));
            assert_eq!(loaded.name(), code.name());
            assert_eq!(loaded.multiplier(), code.multiplier());
            assert_eq!(loaded.symbol_map(), code.symbol_map());
            assert_eq!(loaded.class_name(), code.class_name());
            // Functional equivalence on a probe word.
            let payload = crate::Word::mask(code.k_bits());
            assert_eq!(loaded.encode(&payload), code.encode(&payload));
        }
    }

    #[test]
    fn spec_text_shape() {
        let spec = presets::muse_80_69().to_spec_string();
        assert!(spec.starts_with("muse-code v1\n"));
        assert!(spec.contains("\nn 80\n"));
        assert!(spec.contains("\nmultiplier 2005\n"));
        assert!(spec.contains("\nmodel C4B\n"));
        assert!(spec.contains("\nsymbol 19: 76 77 78 79\n"));
    }

    #[test]
    fn tampered_multiplier_rejected() {
        let spec = presets::muse_80_69()
            .to_spec_string()
            .replace("2005", "2007");
        let e = MuseCode::from_spec_string(&spec).unwrap_err();
        assert!(e.message.contains("invalid code"), "{e}");
    }

    #[test]
    fn malformed_specs_rejected_with_line_numbers() {
        assert!(MuseCode::from_spec_string("").is_err());
        assert!(MuseCode::from_spec_string("other v9\n").is_err());
        let e = MuseCode::from_spec_string("muse-code v1\nn abc\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = MuseCode::from_spec_string("muse-code v1\nn 80\nwat 3\n").unwrap_err();
        assert_eq!(e.line, 3);
        // Missing fields.
        let e = MuseCode::from_spec_string("muse-code v1\nn 80\n").unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let mut spec = presets::muse_80_70().to_spec_string();
        spec.push_str("\n# trailing comment\n\n");
        let loaded = MuseCode::from_spec_string(&spec).unwrap();
        assert_eq!(loaded.class_name(), "C4A_U1B");
    }

    #[test]
    fn non_contiguous_symbols_rejected() {
        let spec =
            "muse-code v1\nn 8\nmultiplier 23\nmodel C4B\nsymbol 0: 0 1 2 3\nsymbol 2: 4 5 6 7\n";
        let e = MuseCode::from_spec_string(spec).unwrap_err();
        assert!(e.message.contains("contiguous"));
    }
}
