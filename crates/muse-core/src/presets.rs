//! The concrete codes of the paper (Table I and Section VI-B), ready-made.
//!
//! | Code | Class | m | Shuffle | Context |
//! |---|---|---|---|---|
//! | MUSE(144,132) | C4B | 4065 | none | DDR4 x4 ChipKill, 144-bit channel |
//! | MUSE(80,69)   | C4B | 2005 | none | DDR5 x4 ChipKill, 80-bit channel |
//! | MUSE(80,67)   | C8A | 5621 | Eq. 5 | DDR5 x8 retention errors |
//! | MUSE(80,70)   | C4A_U1B | 821 | Eq. 6 | hybrid retention + single-bit |
//! | MUSE(268,256) | C4B | 3621 | none | PIM-enabled HBM2 (Section VI-B) |
//! | MUSE(144,128) | C4B | 65519 | none | max-detection variant (Table IV) |

use crate::{Direction, ErrorModel, MuseCode, SymbolMap};

/// MUSE(144,132): the DDR4 x4 ChipKill code. 4-bit symbols across 36
/// devices, multiplier 4065, sequential assignment.
pub fn muse_144_132() -> MuseCode {
    build(SymbolMap::sequential(144, 4), bidirectional(), 4065)
}

/// MUSE(80,69): the DDR5 x4 ChipKill code. 4-bit symbols across 20 devices,
/// multiplier 2005, sequential assignment. Five spare bits above a 64-bit
/// data word.
pub fn muse_80_69() -> MuseCode {
    build(SymbolMap::sequential(80, 4), bidirectional(), 2005)
}

/// MUSE(80,67): single-device-correct code for asymmetric (retention)
/// errors on DDR5 x8 devices. 8-bit symbols, Eq. 5 shuffle, multiplier 5621.
pub fn muse_80_67() -> MuseCode {
    build(
        SymbolMap::interleaved(80, 10),
        ErrorModel::symbol(Direction::OneToZero),
        5621,
    )
}

/// MUSE(80,70): the hybrid C4A_U1B code correcting asymmetric symbol errors
/// *and* bidirectional single-bit errors. Eq. 6 shuffle, multiplier 821.
pub fn muse_80_70() -> MuseCode {
    MuseCode::new(
        SymbolMap::eq6_hybrid_80(),
        ErrorModel::hybrid_symbol_plus_single_bit(),
        821,
    )
    .expect("Table I parameters are valid")
}

/// MUSE(268,256): the Section VI-B Processing-In-Memory code protecting
/// 256-bit HBM2 words with 12 redundancy bits (vs the standard's 32).
pub fn muse_268_256() -> MuseCode {
    build(SymbolMap::sequential(268, 4), bidirectional(), 3621)
}

/// MUSE(144,128): the zero-spare-bits variant that trades the four saved
/// bits for the larger multiplier 65519 and higher multi-symbol detection
/// (Table IV, "extra bits = 0").
pub fn muse_144_128() -> MuseCode {
    build(SymbolMap::sequential(144, 4), bidirectional(), 65519)
}

/// All Table I presets in paper order.
pub fn table1() -> Vec<MuseCode> {
    vec![muse_144_132(), muse_80_69(), muse_80_67(), muse_80_70()]
}

fn bidirectional() -> ErrorModel {
    ErrorModel::symbol(Direction::Bidirectional)
}

fn build(map: Result<SymbolMap, crate::SymbolMapError>, model: ErrorModel, m: u64) -> MuseCode {
    MuseCode::new(map.expect("preset layout is valid"), model, m)
        .expect("preset multiplier is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let c = muse_144_132();
        assert_eq!((c.n_bits(), c.k_bits(), c.multiplier()), (144, 132, 4065));
        assert_eq!(c.class_name(), "C4B");

        let c = muse_80_69();
        assert_eq!((c.n_bits(), c.k_bits(), c.multiplier()), (80, 69, 2005));
        assert_eq!(c.class_name(), "C4B");

        let c = muse_80_67();
        assert_eq!((c.n_bits(), c.k_bits(), c.multiplier()), (80, 67, 5621));
        assert_eq!(c.class_name(), "C8A");

        let c = muse_80_70();
        assert_eq!((c.n_bits(), c.k_bits(), c.multiplier()), (80, 70, 821));
        assert_eq!(c.class_name(), "C4A_U1B");
    }

    #[test]
    fn pim_code_parameters() {
        // Section VI-B: 256 data bits protected by only 12 redundancy bits.
        let c = muse_268_256();
        assert_eq!((c.n_bits(), c.k_bits(), c.r_bits()), (268, 256, 12));
        assert_eq!(c.multiplier(), 3621);
    }

    #[test]
    fn max_detection_variant() {
        let c = muse_144_128();
        assert_eq!((c.k_bits(), c.r_bits()), (128, 16));
        assert_eq!(c.spare_bits(), 0); // two 64-bit words, nothing left over
    }

    #[test]
    fn spare_bit_budgets_match_paper() {
        // Section VI-A: MUSE(80,69) leaves five bits per 64-bit word;
        // MUSE(80,67) leaves three; MUSE(80,70) leaves six.
        assert_eq!(muse_80_69().spare_bits(), 5);
        assert_eq!(muse_80_67().spare_bits(), 3);
        assert_eq!(muse_80_70().spare_bits(), 6);
        assert_eq!(muse_144_132().spare_bits(), 4); // two words + 4 spares
    }

    #[test]
    fn every_preset_roundtrips() {
        for code in table1().into_iter().chain([muse_268_256(), muse_144_128()]) {
            let payload = crate::Word::mask(code.k_bits());
            let cw = code.encode(&payload);
            assert_eq!(code.decode(&cw).payload(), Some(payload), "{}", code.name());
        }
    }
}
