//! MUSE ECC: residue codes adapted to modern memory systems.
//!
//! This crate implements the primary contribution of *"Revisiting Residue
//! Codes for Modern Memories"* (MICRO 2022): a family of storage ECCs that
//! offer ChipKill-class protection with fewer redundancy bits than
//! Reed-Solomon, freeing bits for security metadata.
//!
//! The pipeline mirrors the paper:
//!
//! 1. Choose a codeword length and a [`SymbolMap`] — the assignment of
//!    codeword bits to DRAM devices, possibly *shuffled* (Section III-B).
//! 2. Choose an [`ErrorModel`] — bidirectional or asymmetric symbol errors,
//!    optionally hybridized with single-bit errors (Sections III-A/C).
//! 3. Find a multiplier with [`find_multipliers`] (Algorithm 1), or use a
//!    published one from [`presets`].
//! 4. Build a [`MuseCode`] and use [`MuseCode::encode`] /
//!    [`MuseCode::decode`]; corrections are driven by the
//!    [`ErrorLookup`] circuit and remainders come from the division-free
//!    [`FastMod`] (Section V).
//!
//! # Examples
//!
//! ```
//! use muse_core::presets;
//! use muse_wideint::U320;
//!
//! // The paper's DDR5 ChipKill code: 69 payload bits in 80, m = 2005.
//! let code = presets::muse_80_69();
//!
//! // Store a 64-bit word plus a 4-bit memory tag in the spare bits.
//! let payload = code.pack_metadata(0x0123_4567_89AB_CDEF, 0b1010);
//! let stored = code.encode(&payload);
//!
//! // An entire x4 DRAM device fails:
//! let corrupted = stored ^ *code.symbol_map().mask(11);
//!
//! let recovered = code.decode(&corrupted).payload().expect("single-device errors correct");
//! assert_eq!(code.unpack_metadata(&recovered), (0x0123_4567_89AB_CDEF, 0b1010));
//! ```

#![deny(missing_docs)]

pub mod analysis;
mod builder;
mod classifier;
mod codec;
mod elc;
mod errval;
mod fastmod;
mod line;
mod model;
pub mod presets;
mod search;
pub mod spec;
mod symbol;
mod syndrome;

pub use builder::{BuildError, CodeBuilder, Shuffle};
pub use classifier::{
    Bounded32, Classifier, Entropy, MuseClassifier, MuseContext, Strike, WordRead,
};
pub use codec::{CodeError, Decoded, MuseCode};
pub use elc::{CorrectionEntry, ErrorLookup};
pub use errval::{
    enumerate_error_values, positive_value_histogram, symbol_error_values, ErrorValue,
};
pub use fastmod::{FastMod, FastModError};
pub use line::{DecodedLine, LineCodec, LineCodecError, WORDS_PER_LINE};
pub use model::{Direction, ErrorModel, ErrorTerm};
pub use search::{
    find_multipliers, validate_multiplier, validate_multiplier_over, MultiplierRejection,
    MultiplierValidator, SearchOptions,
};
pub use spec::ParseSpecError;
pub use symbol::{SymbolMap, SymbolMapError};
pub use syndrome::{CombinedSolve, ErasureSolve, ErasureTable, FastDecode, SyndromeKernel};

/// The codeword carrier: 320 bits covers every code in the paper (the widest
/// is the 268-bit PIM codeword).
pub type Word = muse_wideint::U320;

/// Signed error values over the same width.
pub type ErrorValueInt = muse_wideint::I320;
