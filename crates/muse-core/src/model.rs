//! Error models and the paper's PST naming convention (Section IV).
//!
//! A code is named `PST`: `P` is the constraint form (`C` constrained to a
//! symbol, `U` unconstrained), `S` the error size in bits, and `T` the type
//! (`B` bidirectional flips, `A` asymmetrical flips). Hybrid codes list
//! several terms, e.g. `C4A_U1B` covers symbol-confined 4-bit asymmetric
//! errors *and* any single-bit bidirectional error.

use std::fmt;

/// Which bit-flip directions an error class may produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Both 0→1 and 1→0 flips (`B` in the naming convention).
    Bidirectional,
    /// Only 0→1 flips (error values are positive).
    ZeroToOne,
    /// Only 1→0 flips (error values are negative); the DRAM retention /
    /// refresh error model (`A` in the naming convention).
    OneToZero,
}

impl Direction {
    /// Whether a 0→1 flip (positive error contribution) is allowed.
    pub fn allows_rising(self) -> bool {
        matches!(self, Self::Bidirectional | Self::ZeroToOne)
    }

    /// Whether a 1→0 flip (negative error contribution) is allowed.
    pub fn allows_falling(self) -> bool {
        matches!(self, Self::Bidirectional | Self::OneToZero)
    }

    /// The `B`/`A` suffix of the naming convention.
    pub fn suffix(self) -> char {
        match self {
            Self::Bidirectional => 'B',
            Self::ZeroToOne | Self::OneToZero => 'A',
        }
    }
}

/// One class of errors the code must correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorTerm {
    /// Any combination of flips confined to a single symbol (`C<s>`).
    Symbol(Direction),
    /// A single flipped bit anywhere in the codeword (`U1`).
    SingleBit(Direction),
}

/// The set of error classes a code corrects (one or more [`ErrorTerm`]s).
///
/// # Examples
///
/// ```
/// use muse_core::{Direction, ErrorModel};
///
/// let chipkill = ErrorModel::symbol(Direction::Bidirectional);
/// assert_eq!(chipkill.name(4), "C4B");
///
/// let hybrid = ErrorModel::hybrid_symbol_plus_single_bit();
/// assert_eq!(hybrid.name(4), "C4A_U1B");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ErrorModel {
    terms: Vec<ErrorTerm>,
}

impl ErrorModel {
    /// Symbol-confined errors with the given direction
    /// (`C<s>B` / `C<s>A`).
    pub fn symbol(direction: Direction) -> Self {
        Self {
            terms: vec![ErrorTerm::Symbol(direction)],
        }
    }

    /// The paper's hybrid model for MUSE(80,70): asymmetric (1→0)
    /// symbol-confined errors plus bidirectional single-bit errors
    /// (`C<s>A_U1B`).
    pub fn hybrid_symbol_plus_single_bit() -> Self {
        Self {
            terms: vec![
                ErrorTerm::Symbol(Direction::OneToZero),
                ErrorTerm::SingleBit(Direction::Bidirectional),
            ],
        }
    }

    /// A custom combination of terms.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn from_terms(terms: Vec<ErrorTerm>) -> Self {
        assert!(!terms.is_empty(), "an error model needs at least one term");
        Self { terms }
    }

    /// The error terms, in declaration order.
    pub fn terms(&self) -> &[ErrorTerm] {
        &self.terms
    }

    /// The `PST` name given the symbol size in bits, e.g. `C4B` or
    /// `C4A_U1B`.
    pub fn name(&self, symbol_bits: u32) -> String {
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|t| match t {
                ErrorTerm::Symbol(d) => format!("C{symbol_bits}{}", d.suffix()),
                ErrorTerm::SingleBit(d) => format!("U1{}", d.suffix()),
            })
            .collect();
        parts.join("_")
    }
}

impl fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|t| match t {
                ErrorTerm::Symbol(d) => format!("C?{}", d.suffix()),
                ErrorTerm::SingleBit(d) => format!("U1{}", d.suffix()),
            })
            .collect();
        write!(f, "{}", parts.join("_"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flags() {
        assert!(Direction::Bidirectional.allows_rising());
        assert!(Direction::Bidirectional.allows_falling());
        assert!(Direction::ZeroToOne.allows_rising());
        assert!(!Direction::ZeroToOne.allows_falling());
        assert!(!Direction::OneToZero.allows_rising());
        assert!(Direction::OneToZero.allows_falling());
    }

    #[test]
    fn paper_names() {
        assert_eq!(ErrorModel::symbol(Direction::Bidirectional).name(4), "C4B");
        assert_eq!(ErrorModel::symbol(Direction::OneToZero).name(8), "C8A");
        assert_eq!(
            ErrorModel::hybrid_symbol_plus_single_bit().name(4),
            "C4A_U1B"
        );
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_model_rejected() {
        let _ = ErrorModel::from_terms(vec![]);
    }

    #[test]
    fn zero_to_one_also_names_a() {
        assert_eq!(ErrorModel::symbol(Direction::ZeroToOne).name(4), "C4A");
        assert_eq!(Direction::ZeroToOne.suffix(), 'A');
    }

    #[test]
    fn display_elides_symbol_size() {
        let model = ErrorModel::hybrid_symbol_plus_single_bit();
        assert_eq!(model.to_string(), "C?A_U1B");
        assert_eq!(model.terms().len(), 2);
    }

    #[test]
    fn custom_terms_compose() {
        let model = ErrorModel::from_terms(vec![
            ErrorTerm::Symbol(Direction::Bidirectional),
            ErrorTerm::SingleBit(Direction::OneToZero),
        ]);
        assert_eq!(model.name(8), "C8B_U1A");
    }
}
