//! The unified syndrome-domain word-read classification backend.
//!
//! Every Monte-Carlo simulator in this workspace asks the same question:
//! *given a set of known-failed (erased) devices and a handful of
//! disturbances, how does one word read end* — correct, detected
//! uncorrectable, or silently wrong? This module pins that question down as
//! the [`Classifier`] trait so the fleet-lifetime simulator, the fault
//! injectors, and the benches all classify through one backend per code
//! family instead of falling back to wide-word encode/decode pipelines:
//!
//! * **MUSE** — [`MuseClassifier`], over [`SyndromeKernel`] residues: symbol
//!   contents are sampled lazily (uniform payload bits, check bits from a
//!   lazily drawn check value), the syndrome accumulates through
//!   [`SyndromeKernel::residue`]/[`SyndromeKernel::flip_delta`], healthy
//!   reads finish with the fused ELC classify/correct stages, and degraded
//!   reads finish with a **combined** erasure-plus-error solve
//!   ([`ErasureTable::solve_combined`]): fill the erased symbols and, when
//!   that alone cannot explain the syndrome, correct one in-model error on
//!   a survivor.
//! * **Reed-Solomon** — `RsClassifier` in the `muse-rs` crate, over GF
//!   syndromes: `error_syndromes` → `locate_errors` (healthy) or
//!   Forney-style `decode_combined` (degraded).
//!
//! The backends never materialize a codeword; the wide decoders survive
//! only as property-test oracles (see the `muse-lifetime` classification
//! tests and `muse-core/tests/erasure_equivalence.rs`).

use crate::{CombinedSolve, ErasureTable, SyndromeKernel};

/// Outcome of classifying one word read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordRead {
    /// The data read back correct (possibly after correction / erasure
    /// recovery).
    Correct,
    /// Detected-but-uncorrectable: a DUE the machine must handle.
    Due,
    /// The word read back wrong without a flag — silent data corruption.
    Sdc,
}

/// One device-level disturbance of a word read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strike {
    /// XOR this pattern onto the device's bits (transient upset patterns,
    /// permanent-fault garbage).
    Xor(u16),
    /// Asymmetric (retention-style) discharge of one bit: the cell flips
    /// only if it currently stores a 1 (Section III-C's `1→0` model).
    AsymBit(u8),
}

/// Raw-entropy source the backends draw lazily sampled contents from.
///
/// Implemented by `muse_faultsim::Rng`; the provided combinators mirror
/// that generator's derivations bit-for-bit so classification streams are
/// identical through either interface.
pub trait Entropy {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `out` with consecutive [`Self::next_u64`] draws (implementors
    /// with batched generators override this to keep state in registers).
    fn fill_u64s(&mut self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.next_u64();
        }
    }

    /// A uniform `f64` in `[0, 1)` (53 explicit mantissa bits).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    fn coin(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

/// A uniform integer sampler over `[0, bound)` with its Lemire rejection
/// constant precomputed.
///
/// A plain Lemire-with-rejection draw recomputes `2^64 mod bound` (a
/// 64-bit division) on every rejection check; a `Bounded32` pays that
/// division once at configuration time and then draws from 32-bit halves,
/// so one raw `u64` usually yields two bounded samples. Build these in a
/// trial plan or classifier (once per configuration), not per trial. The
/// simulator crates re-export this type (`muse_faultsim::Bounded32`), so
/// hot loops and classification backends share one implementation — and
/// one draw stream.
///
/// # Examples
///
/// ```
/// use muse_core::{Bounded32, Entropy};
///
/// struct Splitmix(u64);
/// impl Entropy for Splitmix {
///     fn next_u64(&mut self) -> u64 {
///         self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
///         let mut z = self.0;
///         z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
///         z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
///         z ^ (z >> 31)
///     }
/// }
///
/// let mut entropy = Splitmix(1);
/// let device = Bounded32::new(36);
/// assert!(device.sample(&mut entropy) < 36);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounded32 {
    bound: u32,
    threshold: u32,
}

impl Bounded32 {
    /// A sampler over `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn new(bound: u32) -> Self {
        assert!(bound > 0, "empty sampling range");
        Self {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// The exclusive upper bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Maps one 32-bit half-draw to a sample, or `None` when the draw lands
    /// in the rejection zone (probability `< bound / 2^32`).
    #[inline]
    pub fn map(&self, half: u32) -> Option<u32> {
        let m = half as u64 * self.bound as u64;
        if (m as u32) >= self.threshold {
            Some((m >> 32) as u32)
        } else {
            None
        }
    }

    /// Draws one sample (bias-free; consumes fresh draws on rejection).
    #[inline]
    pub fn sample<E: Entropy + ?Sized>(&self, entropy: &mut E) -> u32 {
        loop {
            let raw = entropy.next_u64();
            if let Some(v) = self.map(raw as u32) {
                return v;
            }
            if let Some(v) = self.map((raw >> 32) as u32) {
                return v;
            }
        }
    }

    /// Maps `half` to a sample, falling back to fresh draws on rejection —
    /// the building block for packing several bounded samples into one raw
    /// `u64`.
    #[inline]
    pub fn of_half<E: Entropy + ?Sized>(&self, entropy: &mut E, half: u32) -> u32 {
        match self.map(half) {
            Some(v) => v,
            None => self.sample(entropy),
        }
    }

    /// Bounded-batch rejection sampling: fills `out` with independent
    /// uniform samples, drawing raw `u64`s in blocks (two samples per raw
    /// draw in the common no-rejection case).
    pub fn fill<E: Entropy + ?Sized>(&self, entropy: &mut E, out: &mut [u32]) {
        if self.threshold == 0 {
            // Power-of-two-divisible bound: rejection-free, two samples per
            // raw draw in a branchless loop.
            let mut chunks = out.chunks_exact_mut(2);
            for pair in &mut chunks {
                let raw = entropy.next_u64();
                pair[0] = ((raw as u32 as u64 * self.bound as u64) >> 32) as u32;
                pair[1] = (((raw >> 32) * self.bound as u64) >> 32) as u32;
            }
            if let [last] = chunks.into_remainder() {
                *last = ((entropy.next_u64() as u32 as u64 * self.bound as u64) >> 32) as u32;
            }
            return;
        }
        let mut raws = [0u64; 32];
        // Branchless region: one 32-draw chunk yields at most 64 samples,
        // so while that many slots remain free, accepted samples append via
        // a conditional index bump — no per-sample branch to mispredict.
        // Draw consumption is identical to the guarded tail below: whole
        // chunks, nothing discarded while slots remain.
        let mut idx = 0usize;
        while idx + 64 <= out.len() {
            entropy.fill_u64s(&mut raws);
            for &raw in &raws {
                for half in [raw as u32, (raw >> 32) as u32] {
                    let m = half as u64 * self.bound as u64;
                    out[idx] = (m >> 32) as u32;
                    idx += ((m as u32) >= self.threshold) as usize;
                }
            }
        }
        // Guarded tail: fills the final slots, discarding the chunk's
        // surplus halves — the draw stream the simulators pin.
        let mut slots = out[idx..].iter_mut();
        loop {
            entropy.fill_u64s(&mut raws);
            for &raw in &raws {
                for half in [raw as u32, (raw >> 32) as u32] {
                    if let Some(v) = self.map(half) {
                        match slots.next() {
                            Some(slot) => *slot = v,
                            None => return,
                        }
                    }
                }
            }
        }
    }
}

/// A syndrome-domain word-read classification backend.
///
/// A backend knows a code's device geometry and classifies one read at a
/// time from (a) the *resolved context* of the current erased-device set
/// and (b) the [`Strike`]s disturbing the read. Contexts are resolved once
/// per erased-set *transition* (device retirement, replacement) — not per
/// read — so per-read work is bounded by the solve itself (the MUSE
/// degraded loop is allocation-free; the RS combined solve still builds
/// its erasure locator per read — see ROADMAP).
pub trait Classifier {
    /// The resolved decode context for one fixed erased-device set.
    type Context;

    /// Number of addressable devices in a codeword.
    fn devices(&self) -> usize;

    /// Width in bits of device `dev`.
    fn device_width(&self, dev: u16) -> u32;

    /// Resolves the decode context for `erased` (empty = healthy), or
    /// `None` when the set exceeds the code's erasure capacity (or is not
    /// uniquely recoverable) — a data-loss event for the caller.
    fn resolve(&self, erased: &[u16]) -> Option<Self::Context>;

    /// Classifies one word read. Strikes name devices; strikes on erased
    /// devices are backend-defined (MUSE forbids them — a dead chip's
    /// output never reaches the decoder; RS absorbs them into the erasure
    /// solve).
    fn classify<E: Entropy>(
        &mut self,
        ctx: &Self::Context,
        strikes: &[(u16, Strike)],
        entropy: &mut E,
    ) -> WordRead;
}

/// The resolved MUSE decode context for one erased-device set.
#[derive(Debug, Clone)]
pub enum MuseContext {
    /// Empty erased set: the healthy fused ELC decoder.
    Healthy,
    /// Degraded operation: the combined erasure-plus-error solver for the
    /// set.
    Degraded(ErasureTable),
}

/// The MUSE classification backend: [`SyndromeKernel`] residue algebra with
/// lazily sampled symbol contents (uniform payload bits; check bits from a
/// check value drawn uniformly over `[0, m)` on first use — the
/// `muse-faultsim` content-space discipline).
///
/// # Examples
///
/// ```
/// use muse_core::{presets, Classifier, Entropy, MuseClassifier, Strike};
///
/// struct Splitmix(u64);
/// impl Entropy for Splitmix {
///     fn next_u64(&mut self) -> u64 {
///         self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
///         let mut z = self.0;
///         z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
///         z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
///         z ^ (z >> 31)
///     }
/// }
///
/// let code = presets::muse_80_69();
/// let mut backend = MuseClassifier::new(code.kernel().expect("preset"));
/// let mut entropy = Splitmix(7);
///
/// // Device 3 has been retired; a transient hits surviving device 11.
/// let ctx = backend.resolve(&[3]).expect("within erasure capacity");
/// let read = backend.classify(&ctx, &[(11, Strike::Xor(0b0100))], &mut entropy);
/// // The combined solve fills the dead chip AND corrects the transient
/// // when the explanation is unique; ambiguous explanations stay DUEs —
/// // an in-model transient under one erasure is never silently wrong.
/// assert_ne!(read, muse_core::WordRead::Sdc);
/// ```
#[derive(Debug, Clone)]
pub struct MuseClassifier<'a> {
    kernel: &'a SyndromeKernel,
    contents: Vec<u16>,
    stamps: Vec<u64>,
    generation: u64,
    x: Option<u64>,
    x_pick: Bounded32,
    pinned: bool,
}

impl<'a> MuseClassifier<'a> {
    /// Fresh backend for a kernel's symbol geometry.
    pub fn new(kernel: &'a SyndromeKernel) -> Self {
        Self {
            kernel,
            contents: vec![0; kernel.num_symbols()],
            stamps: vec![u64::MAX; kernel.num_symbols()],
            generation: 0,
            x: None,
            x_pick: Bounded32::new(u32::try_from(kernel.modulus()).expect("kernel moduli fit u32")),
            pinned: false,
        }
    }

    /// The kernel this backend classifies over.
    pub fn kernel(&self) -> &'a SyndromeKernel {
        self.kernel
    }

    /// Starts a fresh word read: every symbol content (and the check value)
    /// is resampled on next observation. No-op while pinned.
    #[inline]
    fn begin(&mut self) {
        if !self.pinned {
            self.generation = self.generation.wrapping_add(1);
            self.x = None;
        }
    }

    /// Test hook: pins every symbol content (and the check value) to those
    /// of a real codeword, so a classification replays a wide-word read
    /// exactly. Used by the oracle equivalence tests; not a simulation API.
    pub fn pin(&mut self, contents: &[u16], x: u64) {
        self.generation = self.generation.wrapping_add(1);
        self.contents.copy_from_slice(contents);
        for stamp in &mut self.stamps {
            *stamp = self.generation;
        }
        self.x = Some(x);
        self.pinned = true;
    }

    /// The stored content of `sym`, sampled on first observation per read.
    #[inline]
    fn content<E: Entropy>(&mut self, entropy: &mut E, sym: usize) -> u16 {
        if self.stamps[sym] != self.generation {
            let raw = entropy.next_u64() as u16;
            let content = if self.kernel.needs_check_value(sym) {
                let x = match self.x {
                    Some(x) => x,
                    None => {
                        let x = self.x_pick.sample(entropy) as u64;
                        self.x = Some(x);
                        x
                    }
                };
                self.kernel
                    .apply_check_bits(sym, raw & self.kernel.payload_mask(sym), x)
            } else {
                raw & self.kernel.width_mask(sym)
            };
            self.contents[sym] = content;
            self.stamps[sym] = self.generation;
        }
        self.contents[sym]
    }

    /// Resolves a strike to its XOR pattern on `sym`'s current content.
    #[inline]
    fn pattern_of<E: Entropy>(&mut self, entropy: &mut E, sym: usize, s: Strike) -> u16 {
        match s {
            Strike::Xor(p) => p,
            Strike::AsymBit(bit) => (1 << bit) & self.content(entropy, sym),
        }
    }

    /// Whether a solved filling disagrees with the erased symbols' original
    /// contents on any payload bit (the degraded-read SDC check, shared by
    /// the plain and combined solve arms). Deliberately samples every
    /// erased content — no short-circuit — so the draw stream does not
    /// depend on where a mismatch appears.
    fn filling_wrong<E: Entropy>(
        &mut self,
        entropy: &mut E,
        table: &ErasureTable,
        filling: u32,
    ) -> bool {
        let mut wrong = false;
        for (i, &s) in table.symbols().iter().enumerate() {
            let original = self.content(entropy, s);
            wrong |= (table.content_of(filling, i) ^ original) & self.kernel.payload_mask(s) != 0;
        }
        wrong
    }
}

impl Classifier for MuseClassifier<'_> {
    type Context = MuseContext;

    fn devices(&self) -> usize {
        self.kernel.num_symbols()
    }

    fn device_width(&self, dev: u16) -> u32 {
        self.kernel.symbol_bits(dev as usize)
    }

    fn resolve(&self, erased: &[u16]) -> Option<MuseContext> {
        if erased.is_empty() {
            return Some(MuseContext::Healthy);
        }
        let total_bits: u32 = erased
            .iter()
            .map(|&d| self.kernel.symbol_bits(d as usize))
            .sum();
        if total_bits > 16 {
            return None;
        }
        let syms: Vec<usize> = erased.iter().map(|&d| d as usize).collect();
        let table = self.kernel.erasure_table(&syms);
        table.is_injective().then_some(MuseContext::Degraded(table))
    }

    fn classify<E: Entropy>(
        &mut self,
        ctx: &MuseContext,
        strikes: &[(u16, Strike)],
        entropy: &mut E,
    ) -> WordRead {
        assert!(strikes.len() <= 16, "at most 16 strikes per word read");
        self.begin();
        let kernel = self.kernel;
        let m = kernel.modulus();

        // Accumulate the survivors' syndrome contribution and resolve each
        // strike against the (lazily sampled) stored contents.
        let mut rem = 0u64;
        let mut payload_touched = false;
        let mut resolved = [(0usize, 0u16); 16];
        let mut n = 0usize;
        if let MuseContext::Degraded(table) = ctx {
            // The intact word has syndrome 0, so Σ_{s∉E} R_s(orig) =
            // −Σ_{s∈E} R_s(orig); strikes then move it by flip_delta.
            for &s in table.symbols() {
                let c = self.content(entropy, s);
                let r = kernel.residue(s, c);
                rem = kernel.add_mod(rem, if r == 0 { 0 } else { m - r });
            }
        }
        for &(dev, s) in strikes {
            let sym = dev as usize;
            if let MuseContext::Degraded(table) = ctx {
                debug_assert!(
                    !table.symbols().contains(&sym),
                    "strikes on erased devices never reach the decoder"
                );
            }
            let pattern = self.pattern_of(entropy, sym, s);
            if pattern == 0 {
                continue;
            }
            let content = self.content(entropy, sym);
            rem = kernel.add_mod(rem, kernel.flip_delta(sym, content, pattern));
            payload_touched |= pattern & kernel.payload_mask(sym) != 0;
            resolved[n] = (sym, pattern);
            n += 1;
        }
        let resolved = &resolved[..n];

        match ctx {
            MuseContext::Healthy => {
                if rem == 0 {
                    return if payload_touched {
                        WordRead::Sdc
                    } else {
                        WordRead::Correct
                    };
                }
                match kernel.classify(rem) {
                    crate::FastDecode::Clean => unreachable!("nonzero remainder"),
                    crate::FastDecode::Detected => WordRead::Due,
                    crate::FastDecode::Correct { symbol } => {
                        let original = self.content(entropy, symbol);
                        let injected = resolved
                            .iter()
                            .find(|&&(s, _)| s == symbol)
                            .map_or(0, |&(_, p)| p);
                        match kernel.correct(rem, original ^ injected) {
                            None => WordRead::Due,
                            Some(corrected) => {
                                let restored = (corrected ^ original) & kernel.payload_mask(symbol)
                                    == 0
                                    && resolved.iter().all(|&(s, p)| {
                                        s == symbol || p & kernel.payload_mask(s) == 0
                                    });
                                if restored {
                                    WordRead::Correct
                                } else {
                                    WordRead::Sdc
                                }
                            }
                        }
                    }
                }
            }
            MuseContext::Degraded(table) => {
                let target = if rem == 0 { 0 } else { m - rem };
                // Candidacy applies the content-dependent confinement check
                // (Figure 4, method 2) exactly as a wide decoder enumerating
                // fillings would: an unconfined correction is no candidate.
                let contents = &mut *self;
                let solve = table.solve_combined(kernel, target, |elc_rem, symbol| {
                    let original = contents.content(entropy, symbol);
                    let injected = resolved
                        .iter()
                        .find(|&&(s, _)| s == symbol)
                        .map_or(0, |&(_, p)| p);
                    kernel.correct(elc_rem, original ^ injected).is_some()
                });
                match solve {
                    CombinedSolve::None | CombinedSolve::Ambiguous => WordRead::Due,
                    CombinedSolve::Unique(filling) => {
                        let wrong = payload_touched || self.filling_wrong(entropy, table, filling);
                        if wrong {
                            WordRead::Sdc
                        } else {
                            WordRead::Correct
                        }
                    }
                    CombinedSolve::Corrected {
                        filling,
                        rem: elc_rem,
                        symbol,
                    } => {
                        // Finish like the healthy decoder: the filled word
                        // carries remainder `elc_rem`. Candidacy already
                        // proved the correction confined.
                        let original = self.content(entropy, symbol);
                        let injected = resolved
                            .iter()
                            .find(|&&(s, _)| s == symbol)
                            .map_or(0, |&(_, p)| p);
                        let corrected = kernel
                            .correct(elc_rem, original ^ injected)
                            .expect("candidacy checked confinement");
                        let wrong = (corrected ^ original) & kernel.payload_mask(symbol) != 0
                            || resolved
                                .iter()
                                .any(|&(s, p)| s != symbol && p & kernel.payload_mask(s) != 0)
                            || self.filling_wrong(entropy, table, filling);
                        if wrong {
                            WordRead::Sdc
                        } else {
                            WordRead::Correct
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// SplitMix64: a tiny deterministic Entropy for unit tests.
    struct Splitmix(u64);

    impl Entropy for Splitmix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bounded32_matches_reference_modulo() {
        let pick = Bounded32::new(4065);
        let mut e = Splitmix(3);
        for _ in 0..1_000 {
            assert!(pick.sample(&mut e) < 4065);
        }
        // The rejection threshold is the canonical Lemire constant.
        assert_eq!(pick.threshold, 4065u32.wrapping_neg() % 4065);
    }

    #[test]
    fn healthy_single_device_errors_correct() {
        let code = presets::muse_80_69();
        let mut backend = MuseClassifier::new(code.kernel().expect("preset"));
        let ctx = backend.resolve(&[]).expect("healthy");
        let mut e = Splitmix(11);
        for dev in 0..backend.devices() as u16 {
            for pattern in 1u16..16 {
                let read = backend.classify(&ctx, &[(dev, Strike::Xor(pattern))], &mut e);
                assert_eq!(read, WordRead::Correct, "dev {dev} pattern {pattern:04b}");
            }
        }
    }

    #[test]
    fn combined_solve_recovers_unique_explanations_without_sdc() {
        // The behaviour this backend adds: one erased chip plus an in-model
        // transient on a survivor is corrected whenever the (filling, ELC
        // entry) explanation is unique — where the plain erasure solve
        // always flagged a DUE. MUSE's single residue carries no extra
        // syndrome equations (unlike the 2t Reed-Solomon syndromes), so
        // ambiguous explanations stay DUEs and nothing is ever silently
        // miscorrected here.
        let code = presets::muse_80_69();
        let kernel = code.kernel().expect("preset");
        let mut backend = MuseClassifier::new(kernel);
        let ctx = backend.resolve(&[4]).expect("one chip within capacity");
        let mut e = Splitmix(23);
        let (mut correct, mut due, mut sdc) = (0u32, 0u32, 0u32);
        for trial in 0..500u32 {
            let dev = 5 + (trial % 15) as u16;
            let pattern = 1 + (trial % 15) as u16;
            match backend.classify(&ctx, &[(dev, Strike::Xor(pattern))], &mut e) {
                WordRead::Correct => correct += 1,
                WordRead::Due => due += 1,
                WordRead::Sdc => sdc += 1,
            }
        }
        assert_eq!(correct + due + sdc, 500);
        assert!(
            correct > 20,
            "combined solve recovers some reads: {correct}"
        );
        assert!(due > 0, "ambiguous explanations stay detected");
        assert_eq!(sdc, 0, "in-model transients never miscorrect silently");
    }

    #[test]
    fn resolve_rejects_beyond_capacity_sets() {
        let code = presets::muse_80_69();
        let backend = MuseClassifier::new(code.kernel().expect("preset"));
        // 5 × 4-bit chips = 20 erased bits > the 16-bit enumeration limit.
        assert!(backend.resolve(&[0, 1, 2, 3, 4]).is_none());
        assert!(backend.resolve(&[0, 1]).is_some());
    }

    #[test]
    fn device_geometry_is_exposed() {
        let code = presets::muse_144_132();
        let backend = MuseClassifier::new(code.kernel().expect("preset"));
        assert_eq!(backend.devices(), 36);
        assert_eq!(backend.device_width(0), 4);
    }
}
