//! Incremental residue-syndrome kernel: decode outcomes without wide words.
//!
//! The Monte-Carlo simulators in `muse-faultsim` used to re-encode and fully
//! decode a 320-bit codeword per trial — a `U320` widening multiply, a wide
//! Lemire reduction, and a wide correction per sample. This module
//! precomputes, at [`MuseCode`](crate::MuseCode) construction time, enough
//! per-symbol structure that a trial runs entirely in small-integer space:
//!
//! * **Per-symbol residue tables** — for every symbol `s` and every content
//!   `x` of its bits, `R_s[x] = (Σ_{i: x_i=1} 2^{B_s[i]}) mod m`, stored as
//!   one flat array. A freshly encoded codeword has syndrome 0, so after
//!   XOR-flipping pattern `p` onto a symbol holding content `v`, the
//!   syndrome moves by `R_s[v ^ p] − R_s[v] (mod m)` — two table lookups
//!   and a modular add.
//! * **Fast ELC transitions** — for every ELC remainder entry `(e, s)` and
//!   every current content `v` of symbol `s`, the table stores the corrected
//!   content `w` with `expand_s(v) − e = expand_s(w)`, or a sentinel when no
//!   such content exists. This reproduces the wide decoder's
//!   overflow/underflow confinement check (Figure 4, method 2) exactly: a
//!   correction is valid iff the subtraction stays inside the symbol.
//! * **Check-value folding** — `X = (m − payload·2^r mod m) mod m` from the
//!   payload limbs with a short Horner fold using a division-free Barrett
//!   reduction (the same Lemire-style multiply-high trick the hardware
//!   decoder uses, scaled down to `u64`), so symbol contents of an encoded
//!   word are available without the encoder's wide multiply. Symbols whose
//!   bits form one contiguous in-limb run — the common case for sequential
//!   maps — gather their content with a single shift-and-mask.
//!
//! The wide [`MuseCode::decode`](crate::MuseCode::decode) path is kept
//! unchanged and cross-validated against this kernel by a property test
//! (`tests/syndrome_equivalence.rs`): for random payloads and corruptions
//! the two paths agree on every preset code.

use crate::{ErrorLookup, SymbolMap, Word};

/// Sentinel in the transition table: no valid corrected content.
const NO_TRANSITION: u16 = u16::MAX;

/// Division-free `x mod m` for full-range `u64` inputs (Barrett/Lemire with
/// a 128-bit magic; exact for any non-power-of-two `m ≥ 3`).
#[derive(Debug, Clone, Copy)]
struct Mod64 {
    m: u64,
    magic: u128,
}

impl Mod64 {
    fn new(m: u64) -> Self {
        assert!(m >= 3, "modulus {m} too small");
        // floor(2^128 / m) + 1; when m does not divide 2^128 the integer
        // division of u128::MAX already floors 2^128 / m. Powers of two
        // (never valid multipliers in practice) reduce by masking instead.
        let magic = if m.is_power_of_two() {
            0
        } else {
            u128::MAX / m as u128 + 1
        };
        Self { m, magic }
    }

    #[inline]
    fn rem(&self, x: u64) -> u64 {
        if self.magic == 0 {
            return x & (self.m - 1);
        }
        let low = self.magic.wrapping_mul(x as u128);
        // High 64 bits of the 192-bit product low · m.
        let a = (low as u64) as u128 * self.m as u128;
        let b = (low >> 64) * self.m as u128;
        ((b + (a >> 64)) >> 64) as u64
    }
}

/// How a symbol's content is extracted from the payload limbs.
#[derive(Debug, Clone, Copy)]
enum Gather {
    /// All bits form one contiguous run inside a single payload limb:
    /// `content = (payload[limb] >> shift) & width_mask`.
    Slice { limb: u8, shift: u8 },
    /// Anything else (check-region bits, shuffled or limb-straddling
    /// layouts): gathered bit by bit via the source lists.
    Mixed,
}

/// Per-symbol metadata, packed for cache-friendly random access.
#[derive(Debug, Clone, Copy)]
struct SymbolMeta {
    width: u8,
    gather: Gather,
    /// Content bits living in the check region (`< r`).
    check_mask: u16,
    /// Start of this symbol's block in the flat residue table.
    residue_offset: u32,
}

/// One fast-ELC entry: the owning symbol and where its content-transition
/// block starts in the flat table.
#[derive(Debug, Clone, Copy)]
struct FastEntry {
    symbol: u32,
    offset: u32,
}

/// Outcome of a residue-space decode step (mirrors
/// [`Decoded`](crate::Decoded) without carrying wide payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastDecode {
    /// Zero syndrome: the word reads out as-is.
    Clean,
    /// No ELC entry for this remainder — detected uncorrectable.
    Detected,
    /// An ELC entry matched; fetch the named symbol's current content and
    /// call [`SyndromeKernel::correct`] to finish.
    Correct {
        /// Symbol the matched error value is confined to.
        symbol: usize,
    },
}

/// The per-code incremental-syndrome tables. Built once inside
/// [`MuseCode::new`](crate::MuseCode::new); accessible via
/// [`MuseCode::kernel`](crate::MuseCode::kernel).
///
/// # Examples
///
/// Classify a Monte-Carlo trial entirely in residue space — no codeword is
/// ever built. The trial below says devices 3 and 17, whose stored 4-bit
/// contents are `0x4` and `0xA`, are hit by the XOR patterns `0b0011` and
/// `0b0101`:
///
/// ```
/// use muse_core::{presets, FastDecode};
///
/// let code = presets::muse_144_132();
/// let kernel = code.kernel().expect("within tabulation limits");
///
/// let rem = kernel.add_mod(
///     kernel.flip_delta(3, 0x4, 0b0011),
///     kernel.flip_delta(17, 0xA, 0b0101),
/// );
/// match kernel.classify(rem) {
///     // Most double-device errors are flagged uncorrectable.
///     FastDecode::Detected => {}
///     // Some match an ELC entry: finish with the located symbol's
///     // *current* (corrupted) content to learn the corrected content.
///     FastDecode::Correct { symbol } => {
///         let current = match symbol {
///             3 => 0x4 ^ 0b0011,
///             17 => 0xA ^ 0b0101,
///             _ => 0, // an untouched symbol's stored content
///         };
///         let _corrected = kernel.correct(rem, current);
///     }
///     FastDecode::Clean => unreachable!("these patterns do not alias"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SyndromeKernel {
    m: u64,
    mod64: Mod64,
    /// `2^r mod m`, for the check-value fold.
    pow_r: u64,
    /// `2^64 mod m`, for the limb fold.
    pow_64: u64,
    /// Number of limbs the `k`-bit payload occupies.
    payload_limbs: usize,
    syms: Vec<SymbolMeta>,
    /// Flat per-symbol residue tables (`R_s[x]` at `residue_offset + x`).
    residues: Vec<u64>,
    /// Per-symbol `(content bit, payload bit)` lists for the Mixed gather.
    payload_sources: Vec<Vec<(u8, u16)>>,
    /// Per-symbol `(content bit, check bit)` lists for the Mixed gather.
    check_sources: Vec<Vec<(u8, u8)>>,
    /// Dense remainder → packed `(transition offset << 12) | symbol`, or
    /// [`NO_ENTRY`] — one fused load classifies a syndrome and locates its
    /// content-transition block.
    elc_fused: Vec<u32>,
    /// Flat per-entry content-transition blocks.
    transitions: Vec<u16>,
}

/// Sentinel in the fused ELC table: no entry for this remainder.
const NO_ENTRY: u32 = u32::MAX;

/// 320-bit chunked value for construction-time span arithmetic: symbols may
/// scatter across the whole codeword (spread/shuffled maps), so per-content
/// error arithmetic runs on five limbs instead of a single `u128`.
type Chunks = [u64; 5];

#[inline]
fn chunk_set_bit(v: &mut Chunks, bit: u32) {
    v[(bit >> 6) as usize] |= 1 << (bit & 63);
}

#[inline]
fn chunk_bit(v: &Chunks, bit: u32) -> u64 {
    v[(bit >> 6) as usize] >> (bit & 63) & 1
}

/// `a + b` with the carry out of bit 320 (an escaping correction).
fn chunk_add(a: &Chunks, b: &Chunks) -> (Chunks, bool) {
    let mut out = [0u64; 5];
    let mut carry = false;
    for i in 0..5 {
        let (s, c1) = a[i].overflowing_add(b[i]);
        let (s, c2) = s.overflowing_add(carry as u64);
        out[i] = s;
        carry = c1 | c2;
    }
    (out, carry)
}

/// `a − b` with the borrow out of bit 320 (an escaping correction).
fn chunk_sub(a: &Chunks, b: &Chunks) -> (Chunks, bool) {
    let mut out = [0u64; 5];
    let mut borrow = false;
    for i in 0..5 {
        let (d, b1) = a[i].overflowing_sub(b[i]);
        let (d, b2) = d.overflowing_sub(borrow as u64);
        out[i] = d;
        borrow = b1 | b2;
    }
    (out, borrow)
}

/// Whether `v` sets any bit outside `mask`.
fn chunk_escapes(v: &Chunks, mask: &Chunks) -> bool {
    v.iter().zip(mask).any(|(&x, &m)| x & !m != 0)
}

impl SyndromeKernel {
    /// Sentinel in [`Self::raw_elc_fused`]: no ELC entry for this
    /// remainder (the [`FastDecode::Detected`] case).
    pub const NO_ENTRY: u32 = NO_ENTRY;

    /// Sentinel in [`Self::raw_transitions`]: the correction escapes the
    /// symbol (the [`Self::correct`] `None` case).
    pub const NO_TRANSITION: u16 = NO_TRANSITION;

    /// Whether a layout/multiplier pair is within the kernel's tabulation
    /// limits: every symbol at most 12 bits wide (contents are tabulated as
    /// `2^width` entries) and `m < 2^32` (the check-value fold multiplies
    /// two residues in `u64`). Symbols may scatter across the entire
    /// codeword — the construction-time error arithmetic runs on chunked
    /// 320-bit words, so spread and wide symbol maps tabulate too.
    ///
    /// Codes outside these limits still construct and decode through the
    /// wide path — they just carry no kernel
    /// ([`MuseCode::kernel`](crate::MuseCode::kernel) returns `None`).
    pub fn supports(map: &SymbolMap, m: u64) -> bool {
        m < 1 << 32 && (0..map.num_symbols()).all(|s| map.bits_of(s).len() <= 12)
    }

    /// Builds the kernel for a validated layout + ELC.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::supports`] is false for the layout (callers gate
    /// on it).
    pub(crate) fn build(map: &SymbolMap, elc: &ErrorLookup, m: u64, r_bits: u32) -> Self {
        assert!(
            m < 1 << 32,
            "multiplier {m} exceeds the kernel's u64 fold range"
        );
        // All per-content arithmetic happens in chunked 320-bit space
        // shifted down by each symbol's lowest bit: error values are
        // confined to one symbol's bit positions, which may scatter across
        // the whole codeword, but the wide words never need to materialize.
        struct SymbolSpan {
            base: u32,
            expand: Vec<Chunks>,
            mask: Chunks,
        }
        let spans: Vec<SymbolSpan> = (0..map.num_symbols())
            .map(|s| {
                let bits = map.bits_of(s);
                assert!(bits.len() <= 12, "symbol too wide to tabulate");
                let base = *bits.iter().min().expect("non-empty symbol");
                let expand = (0..1usize << bits.len())
                    .map(|content| {
                        let mut v = [0u64; 5];
                        for (i, &bit) in bits.iter().enumerate() {
                            if content >> i & 1 == 1 {
                                chunk_set_bit(&mut v, bit - base);
                            }
                        }
                        v
                    })
                    .collect();
                let mut mask = [0u64; 5];
                for &bit in bits {
                    chunk_set_bit(&mut mask, bit - base);
                }
                SymbolSpan { base, expand, mask }
            })
            .collect();
        let pow2_mod = |exp: u32| -> u64 {
            // 2^exp mod m by shifting in ≤32-bit steps (m < 2^32, exp < 320).
            let mut result: u128 = 1 % m as u128;
            let mut remaining = exp;
            while remaining > 0 {
                let step = remaining.min(32);
                result = (result << step) % m as u128;
                remaining -= step;
            }
            result as u64
        };

        let mut syms = Vec::with_capacity(map.num_symbols());
        let mut residues = Vec::new();
        let mut payload_sources = Vec::with_capacity(map.num_symbols());
        let mut check_sources = Vec::with_capacity(map.num_symbols());
        for s in 0..map.num_symbols() {
            let bits = map.bits_of(s);
            let width = bits.len() as u8;
            let residue_offset = residues.len() as u32;
            // R_s[x] = Σ_{i: x_i=1} 2^{B_s[i]} mod m, built incrementally
            // from the per-bit powers (residues are additive in content
            // bits), so no wide expansion is reduced.
            let bit_pows: Vec<u64> = bits.iter().map(|&b| pow2_mod(b)).collect();
            let add = |a: u64, b: u64| {
                let sum = a + b;
                if sum >= m {
                    sum - m
                } else {
                    sum
                }
            };
            let base_idx = residues.len();
            residues.push(0);
            for x in 1..1usize << width {
                let low = x.trailing_zeros() as usize;
                let rest = residues[base_idx + (x & (x - 1))];
                residues.push(add(rest, bit_pows[low]));
            }
            let mut psrc = Vec::new();
            let mut csrc = Vec::new();
            let mut check_mask = 0u16;
            for (i, &bit) in bits.iter().enumerate() {
                if bit < r_bits {
                    csrc.push((i as u8, bit as u8));
                    check_mask |= 1 << i;
                } else {
                    psrc.push((i as u8, (bit - r_bits) as u16));
                }
            }
            // Contiguous ascending run entirely in the payload region of a
            // single limb ⇒ one shift-and-mask gathers the content.
            let first = bits[0];
            let contiguous = bits.iter().enumerate().all(|(i, &b)| b == first + i as u32);
            let gather = if contiguous && first >= r_bits {
                let lo = first - r_bits;
                if lo / 64 == (lo + width as u32 - 1) / 64 {
                    Gather::Slice {
                        limb: (lo / 64) as u8,
                        shift: (lo % 64) as u8,
                    }
                } else {
                    Gather::Mixed
                }
            } else {
                Gather::Mixed
            };
            syms.push(SymbolMeta {
                width,
                gather,
                check_mask,
                residue_offset,
            });
            payload_sources.push(psrc);
            check_sources.push(csrc);
        }

        let mut elc_entry = vec![0u32; m as usize];
        let mut entries = Vec::new();
        let mut transitions = Vec::new();
        for rem in 1..m {
            let Some(entry) = elc.lookup(rem) else {
                continue;
            };
            let bits = map.bits_of(entry.symbol);
            let span = &spans[entry.symbol];
            // The error value is a sum of ±2^b over this symbol's bits, so
            // its magnitude shifted down by the span base fits the chunks.
            let mag = entry.error.magnitude();
            debug_assert!(mag.trailing_zeros() >= span.base);
            let mag_chunks = (*mag >> span.base).to_limbs();
            let negative = entry.error.is_negative();
            let offset = transitions.len() as u32;
            for content in 0..1usize << bits.len() {
                // corrected = expand(v) − e; a borrow/carry escaping the
                // symbol sets bits outside the mask, which is exactly the
                // wide decoder's confinement rejection (Figure 4, method 2).
                let (corrected, escaped) = if negative {
                    chunk_add(&span.expand[content], &mag_chunks)
                } else {
                    chunk_sub(&span.expand[content], &mag_chunks)
                };
                transitions.push(if !escaped && !chunk_escapes(&corrected, &span.mask) {
                    bits.iter().enumerate().fold(0u16, |acc, (i, &bit)| {
                        acc | (chunk_bit(&corrected, bit - span.base) as u16) << i
                    })
                } else {
                    NO_TRANSITION
                });
            }
            entries.push(FastEntry {
                symbol: entry.symbol as u32,
                offset,
            });
            elc_entry[rem as usize] = entries.len() as u32;
        }
        // Fused classify table: one load yields symbol + transition offset.
        // The packing limits (4096 symbols, 2^20 transition slots) sit far
        // above anything the 12-bit-symbol tabulation limit admits.
        assert!(map.num_symbols() < 1 << 12, "too many symbols to pack");
        assert!(transitions.len() < 1 << 20, "transition table too large");
        let mut elc_fused = vec![NO_ENTRY; m as usize];
        for (rem, &idx) in elc_entry.iter().enumerate() {
            if idx != 0 {
                let e = entries[(idx - 1) as usize];
                elc_fused[rem] = (e.offset << 12) | e.symbol;
            }
        }

        let k_bits = map.n_bits() - r_bits;
        Self {
            m,
            mod64: Mod64::new(m),
            pow_r: pow2_mod(r_bits),
            pow_64: pow2_mod(64),
            payload_limbs: k_bits.div_ceil(64) as usize,
            syms,
            residues,
            payload_sources,
            check_sources,
            elc_fused,
            transitions,
        }
    }

    /// The code multiplier `m`.
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.syms.len()
    }

    /// Number of limbs the `k`-bit payload occupies (higher limbs of a
    /// payload array are always zero).
    pub fn payload_limbs(&self) -> usize {
        self.payload_limbs
    }

    /// Width of symbol `sym` in bits.
    #[inline]
    pub fn symbol_bits(&self, sym: usize) -> u32 {
        self.syms[sym].width as u32
    }

    /// Content bits of `sym` that live in the check region (codeword bits
    /// `< r`). Flips confined to these bits leave the payload untouched.
    #[inline]
    pub fn check_mask(&self, sym: usize) -> u16 {
        self.syms[sym].check_mask
    }

    /// Content bits of `sym` that carry payload (codeword bits `≥ r`).
    #[inline]
    pub fn payload_mask(&self, sym: usize) -> u16 {
        !self.syms[sym].check_mask & self.width_mask(sym)
    }

    /// All-ones mask over `sym`'s content bits.
    #[inline]
    pub fn width_mask(&self, sym: usize) -> u16 {
        ((1u32 << self.syms[sym].width) - 1) as u16
    }

    /// Whether computing `sym`'s content requires the check value `X`.
    #[inline]
    pub fn needs_check_value(&self, sym: usize) -> bool {
        self.syms[sym].check_mask != 0
    }

    /// When `sym`'s check-region sources form one contiguous run — content
    /// bits `ibase..ibase+nbits` mirroring check-value bits
    /// `cbase..cbase+nbits` — returns `(cbase, ibase, nbits)`, so
    /// [`Self::apply_check_bits`] collapses to a single shift-and-mask:
    /// `vp | (((x >> cbase) & ((1 << nbits) - 1)) << ibase)`. Symbols with
    /// no check bits report `(0, 0, 0)`. `None` for scattered sources
    /// (shuffled maps), where only the per-bit gather is exact.
    pub fn check_span(&self, sym: usize) -> Option<(u8, u8, u8)> {
        let src = &self.check_sources[sym];
        let Some(&(i0, c0)) = src.first() else {
            return Some((0, 0, 0));
        };
        src.iter()
            .enumerate()
            .all(|(j, &(i, c))| i == i0 + j as u8 && c == c0 + j as u8)
            .then_some((c0, i0, src.len() as u8))
    }

    /// Modular addition in `[0, m)`.
    #[inline]
    pub fn add_mod(&self, a: u64, b: u64) -> u64 {
        let s = a + b;
        if s >= self.m {
            s - self.m
        } else {
            s
        }
    }

    /// The check value `X = (m − payload·2^r mod m) mod m` of the encoded
    /// codeword, folded from the payload limbs with the division-free
    /// Barrett reduction (no wide multiply).
    pub fn check_value(&self, payload: &[u64; 5]) -> u64 {
        let mut acc: u64 = 0;
        for &limb in payload[..self.payload_limbs].iter().rev() {
            // acc·2^64 + limb (mod m); acc and pow_64 are < m < 2^32, so
            // the product fits u64 alongside the reduced limb.
            acc = self.mod64.rem(acc * self.pow_64 + self.mod64.rem(limb));
        }
        let shifted = self.mod64.rem(acc * self.pow_r);
        if shifted == 0 {
            0
        } else {
            self.m - shifted
        }
    }

    /// The check value `X` implied by the payload-part contents of every
    /// symbol: `X = (m − Σ_s R_s[vp_s]) mod m` — the unique filling of the
    /// check bits that makes the codeword divisible by `m`.
    ///
    /// Together with [`Self::apply_check_bits`] this is the building block
    /// for generating codewords directly in content space (no payload
    /// limbs at all) — the planned next step for the simulator hot path;
    /// currently exercised by this module's tests only.
    ///
    /// `vp` must hold, for each symbol, its content restricted to
    /// [`Self::payload_mask`] (check-region bits zero).
    pub fn check_value_of_parts(&self, vp: &[u16]) -> u64 {
        let t = vp
            .iter()
            .enumerate()
            .fold(0, |acc, (s, &v)| self.add_mod(acc, self.residue(s, v)));
        if t == 0 {
            0
        } else {
            self.m - t
        }
    }

    /// Fills in the check-region bits of `sym`'s content given its
    /// payload-part `vp` and the check value `x`.
    #[inline]
    pub fn apply_check_bits(&self, sym: usize, vp: u16, x: u64) -> u16 {
        let mut content = vp;
        for &(i, cbit) in &self.check_sources[sym] {
            content |= (((x >> cbit) & 1) as u16) << i;
        }
        content
    }

    /// The content of `sym` in the codeword encoding `payload` (limbs of the
    /// `k`-bit payload) with check value `x` (from [`Self::check_value`];
    /// pass anything when [`Self::needs_check_value`] is false).
    #[inline]
    pub fn encoded_content(&self, sym: usize, payload: &[u64; 5], x: u64) -> u16 {
        let meta = self.syms[sym];
        if let Gather::Slice { limb, shift } = meta.gather {
            return (payload[limb as usize] >> shift) as u16 & ((1u32 << meta.width) - 1) as u16;
        }
        let mut content = 0u16;
        for &(i, pbit) in &self.payload_sources[sym] {
            content |= (((payload[(pbit >> 6) as usize] >> (pbit & 63)) & 1) as u16) << i;
        }
        for &(i, cbit) in &self.check_sources[sym] {
            content |= (((x >> cbit) & 1) as u16) << i;
        }
        content
    }

    /// Residue of symbol `sym` holding `content`.
    #[inline]
    pub fn residue(&self, sym: usize, content: u16) -> u64 {
        self.residues[self.syms[sym].residue_offset as usize + content as usize]
    }

    /// Start of `sym`'s block in the flat residue table
    /// ([`Self::raw_residues`]). For uniform-width layouts this is
    /// `sym << width`; shuffled or mixed-width maps get whatever the
    /// construction packed.
    #[inline]
    pub fn residue_offset(&self, sym: usize) -> u32 {
        self.syms[sym].residue_offset
    }

    /// The flat per-symbol residue table: symbol `sym` holding content `x`
    /// contributes `raw_residues()[residue_offset(sym) + x]`. Raw view for
    /// the lane-parallel (SoA/SIMD) trial kernels in `muse-faultsim`,
    /// whose gather loops index the table directly instead of calling
    /// [`Self::residue`] per lane.
    #[inline]
    pub fn raw_residues(&self) -> &[u64] {
        &self.residues
    }

    /// The fused classify table, indexed by remainder `[0, m)`: either
    /// [`Self::NO_ENTRY`] or `(transition offset << 12) | symbol` — the raw
    /// form behind [`Self::classify`], exposed for the lane kernels' block
    /// probes.
    #[inline]
    pub fn raw_elc_fused(&self) -> &[u32] {
        &self.elc_fused
    }

    /// The flat content-transition table behind [`Self::correct`]: a fused
    /// entry `packed` corrects content `v` to
    /// `raw_transitions()[(packed >> 12) + v]`, with
    /// [`Self::NO_TRANSITION`] marking an escaping (rejected) correction.
    #[inline]
    pub fn raw_transitions(&self) -> &[u16] {
        &self.transitions
    }

    /// Syndrome delta caused by XOR-flipping `pattern` onto symbol `sym`
    /// currently holding `content`.
    #[inline]
    pub fn flip_delta(&self, sym: usize, content: u16, pattern: u16) -> u64 {
        let offset = self.syms[sym].residue_offset as usize;
        let after = self.residues[offset + (content ^ pattern) as usize];
        let before = self.residues[offset + content as usize];
        self.add_mod(after, self.m - before)
    }

    /// First decode stage: classify a syndrome (one fused table load).
    #[inline]
    pub fn classify(&self, rem: u64) -> FastDecode {
        if rem == 0 {
            return FastDecode::Clean;
        }
        match self.elc_fused[rem as usize] {
            NO_ENTRY => FastDecode::Detected,
            packed => FastDecode::Correct {
                symbol: (packed & 0xFFF) as usize,
            },
        }
    }

    /// Second decode stage: given the matched remainder and the *current*
    /// content of the matched symbol, the corrected content — or `None` when
    /// the correction escapes the symbol (detected uncorrectable).
    #[inline]
    pub fn correct(&self, rem: u64, content: u16) -> Option<u16> {
        let packed = self.elc_fused[rem as usize];
        debug_assert!(packed != NO_ENTRY, "correct() requires a matched remainder");
        match self.transitions[(packed >> 12) as usize + content as usize] {
            NO_TRANSITION => None,
            w => Some(w),
        }
    }

    /// Every ELC entry as `(remainder, owning symbol)`, in remainder order
    /// — the kernel-side view of the correctable-error hypothesis space the
    /// combined erasure-plus-error solve
    /// ([`ErasureTable::solve_combined`]) draws from (the solve itself
    /// scans the table's occupied residues, the smaller side).
    pub fn elc_entries(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.elc_fused
            .iter()
            .enumerate()
            .filter(|&(_, &packed)| packed != NO_ENTRY)
            .map(|(rem, &packed)| (rem as u64, (packed & 0xFFF) as usize))
    }

    /// Builds the residue-space erasure solver for a fixed set of erased
    /// symbols (known-failed devices) — the degraded-mode analogue of
    /// [`MuseCode::recover_erasures`](crate::MuseCode::recover_erasures),
    /// reduced to one table lookup per read.
    ///
    /// # Panics
    ///
    /// Panics if the erased symbols span more than 16 total bits (the same
    /// enumeration limit as the wide erasure decoder), contain duplicates,
    /// or name an out-of-range symbol.
    pub fn erasure_table(&self, symbols: &[usize]) -> ErasureTable {
        ErasureTable::build(self, symbols)
    }

    /// Symbol contents of an arbitrary wide codeword (reference/test path).
    pub fn contents_of_word(&self, map: &SymbolMap, word: &Word) -> Vec<u16> {
        (0..map.num_symbols())
            .map(|s| {
                let mut content = 0u16;
                for (i, &bit) in map.bits_of(s).iter().enumerate() {
                    if word.bit(bit) {
                        content |= 1 << i;
                    }
                }
                content
            })
            .collect()
    }

    /// Total syndrome of a full content assignment (0 for any valid
    /// codeword).
    pub fn residue_of_contents(&self, contents: &[u16]) -> u64 {
        contents
            .iter()
            .enumerate()
            .fold(0, |acc, (s, &v)| self.add_mod(acc, self.residue(s, v)))
    }
}

/// Result of a residue-space erasure solve: the unique filling of the
/// erased symbols that restores divisibility, or why none exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErasureSolve {
    /// No filling of the erased symbols makes the word divisible by `m` —
    /// a detected-uncorrectable read (extra errors shifted the syndrome
    /// outside the reachable set).
    None,
    /// More than one filling restores divisibility; the decoder cannot
    /// choose (the wide path returns `None` for these too).
    Ambiguous,
    /// Exactly one filling works; fetch per-symbol contents with
    /// [`ErasureTable::content_of`].
    Unique(
        /// Packed filling token (erased symbols' contents concatenated).
        u32,
    ),
}

/// Precomputed residue-space erasure solver for one fixed set of erased
/// symbols — degraded-mode (known-failed-chip) decoding as table lookups.
///
/// The wide decoder ([`MuseCode::recover_erasures`](crate::MuseCode::recover_erasures))
/// zeroes the erased bits and enumerates every filling per read. This table
/// runs that enumeration **once** at construction: for each combined
/// content assignment `f` of the erased symbols it records the residue
/// `Σ_s R_s(f_s) mod m`, so a read reduces to
///
/// 1. accumulate `rem_rest`, the syndrome contribution of the *non-erased*
///    symbols (incrementally, via [`SyndromeKernel::residue`] /
///    [`SyndromeKernel::flip_delta`] — no wide word);
/// 2. look up `target = (m − rem_rest) mod m`: the unique filling with that
///    residue restores divisibility; zero or several fillings mean the
///    read is detected-uncorrectable.
///
/// Cross-validated against the wide decoder by
/// `muse-core/tests/erasure_equivalence.rs` for every preset.
#[derive(Debug, Clone)]
pub struct ErasureTable {
    symbols: Vec<usize>,
    widths: Vec<u8>,
    /// Bit offset of each erased symbol's content in the packed filling.
    offsets: Vec<u8>,
    /// Residue → packed filling, [`NO_FILLING`], or [`AMBIGUOUS_FILLING`].
    table: Vec<u32>,
    /// The occupied residues `(residue, slot)` in ascending residue order —
    /// the combined solve's scan space (at most one entry per filling,
    /// instead of one per ELC remainder).
    occupied: Vec<(u64, u32)>,
    /// Whether every filling maps to a distinct residue (no ambiguity
    /// anywhere — every clean degraded read recovers).
    injective: bool,
}

/// Sentinel in the erasure table: no filling reaches this residue.
const NO_FILLING: u32 = u32::MAX;
/// Sentinel in the erasure table: several fillings reach this residue.
const AMBIGUOUS_FILLING: u32 = u32::MAX - 1;

/// Result of a combined erasure-plus-error solve
/// ([`ErasureTable::solve_combined`]): the MUSE analogue of Forney-style
/// combined Reed-Solomon decoding — fill the erased symbols *and* correct
/// one in-model error on a surviving symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinedSolve {
    /// No filling (with or without one correctable survivor error) explains
    /// the syndrome: detected-uncorrectable.
    None,
    /// More than one explanation exists; the decoder cannot choose.
    Ambiguous,
    /// A plain erasure solve succeeded — no survivor error assumed.
    Unique(
        /// Packed filling token ([`ErasureTable::content_of`]).
        u32,
    ),
    /// Exactly one (filling, ELC entry) pair explains the syndrome: fill
    /// the erased symbols and finish with
    /// [`SyndromeKernel::correct`]`(rem, current)` on the named survivor —
    /// whose confinement check may still reject the correction (detected).
    Corrected {
        /// Packed filling token ([`ErasureTable::content_of`]).
        filling: u32,
        /// The matched ELC remainder (feed to [`SyndromeKernel::correct`]).
        rem: u64,
        /// The surviving symbol the matched error is confined to.
        symbol: usize,
    },
}

impl ErasureTable {
    fn build(kernel: &SyndromeKernel, symbols: &[usize]) -> Self {
        let widths: Vec<u8> = symbols
            .iter()
            .map(|&s| {
                assert!(s < kernel.num_symbols(), "erased symbol {s} out of range");
                kernel.symbol_bits(s) as u8
            })
            .collect();
        for (i, &s) in symbols.iter().enumerate() {
            assert!(!symbols[..i].contains(&s), "duplicate erased symbol {s}");
        }
        let total_bits: u32 = widths.iter().map(|&w| w as u32).sum();
        assert!(total_bits <= 16, "erasure search space too large");
        let mut offsets = Vec::with_capacity(symbols.len());
        let mut acc = 0u8;
        for &w in &widths {
            offsets.push(acc);
            acc += w;
        }
        let mut table = vec![NO_FILLING; kernel.modulus() as usize];
        let mut injective = true;
        for filling in 0..1u32 << total_bits {
            let rem = symbols.iter().enumerate().fold(0u64, |r, (i, &s)| {
                let content = (filling >> offsets[i]) as u16 & ((1u16 << widths[i]) - 1);
                kernel.add_mod(r, kernel.residue(s, content))
            });
            let slot = &mut table[rem as usize];
            if *slot == NO_FILLING {
                *slot = filling;
            } else {
                *slot = AMBIGUOUS_FILLING;
                injective = false;
            }
        }
        let occupied = table
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != NO_FILLING)
            .map(|(rem, &slot)| (rem as u64, slot))
            .collect();
        Self {
            symbols: symbols.to_vec(),
            widths,
            offsets,
            table,
            occupied,
            injective,
        }
    }

    /// The erased symbols, in construction order.
    pub fn symbols(&self) -> &[usize] {
        &self.symbols
    }

    /// Whether every filling has a distinct residue: every *clean* degraded
    /// read (no additional errors) recovers uniquely. False means some
    /// stored contents are unrecoverable even without further faults — the
    /// wide decoder's "ambiguous" case — e.g. device pairs whose spanned
    /// width defeats the `2^w − 1 < m·2^v` condition of Section IV.
    pub fn is_injective(&self) -> bool {
        self.injective
    }

    /// Solves for the filling whose residue equals `target`
    /// (`= (m − rem_rest) mod m` where `rem_rest` is the syndrome
    /// contribution of the non-erased symbols as read).
    #[inline]
    pub fn solve(&self, target: u64) -> ErasureSolve {
        match self.table[target as usize] {
            NO_FILLING => ErasureSolve::None,
            AMBIGUOUS_FILLING => ErasureSolve::Ambiguous,
            filling => ErasureSolve::Unique(filling),
        }
    }

    /// Unpacks the content of the `i`-th erased symbol (construction order)
    /// from a [`ErasureSolve::Unique`] filling token.
    #[inline]
    pub fn content_of(&self, filling: u32, i: usize) -> u16 {
        (filling >> self.offsets[i]) as u16 & ((1u16 << self.widths[i]) - 1)
    }

    /// Combined erasure-plus-error solving: like [`Self::solve`], but when
    /// no plain filling reaches `target`, additionally considers **one**
    /// correctable (in-model) error on a *surviving* symbol — the MUSE
    /// analogue of Forney-style combined Reed-Solomon decoding. A filling
    /// `f` together with ELC entry `(rem, symbol ∉ erased)` explains the
    /// read when `residue(f) ≡ target + rem (mod m)`: the filled word then
    /// carries remainder `rem` and the ordinary fast-ELC correction
    /// finishes the decode.
    ///
    /// The plain solve wins when it succeeds (zero assumed errors beats
    /// one); otherwise the ELC entries are scanned and the solve commits
    /// only to a **unique** explanation — any second candidate, or any
    /// candidate whose filling is itself ambiguous, is detected
    /// uncorrectable (MUSE's single residue has no extra syndrome
    /// equations to disambiguate with, unlike the `2t` Reed-Solomon
    /// syndromes). Entries on erased symbols are skipped: a correction
    /// there is just another filling, which the plain solve already
    /// covered.
    ///
    /// `viable(rem, symbol)` is the caller's content-dependent confinement
    /// check ([`SyndromeKernel::correct`] on the survivor's current
    /// content): a wide decoder enumerating fillings rejects unconfined
    /// corrections during candidacy, and filtering here mirrors that —
    /// which is what keeps genuinely explainable reads from drowning in
    /// coincidental table hits. Pass `|_, _| true` for the
    /// content-independent variant.
    ///
    /// The scan walks this table's *occupied residues* (one per filling,
    /// ascending) rather than the ELC: a filling at residue `ρ` pairs with
    /// ELC remainder `ρ − target (mod m)`, checked with one fused-table
    /// load — so a failed solve costs `O(fillings)`, not `O(m)`.
    ///
    /// `kernel` must be the kernel this table was built from.
    pub fn solve_combined(
        &self,
        kernel: &SyndromeKernel,
        target: u64,
        mut viable: impl FnMut(u64, usize) -> bool,
    ) -> CombinedSolve {
        match self.solve(target) {
            ErasureSolve::Unique(filling) => return CombinedSolve::Unique(filling),
            ErasureSolve::Ambiguous => return CombinedSolve::Ambiguous,
            ErasureSolve::None => {}
        }
        let m = kernel.modulus();
        let mut found: Option<(u32, u64, usize)> = None;
        for &(rho, slot) in &self.occupied {
            // residue(filling) + rem_rest ≡ rem: the filled word carries
            // remainder ρ − target.
            let rem = if rho >= target {
                rho - target
            } else {
                rho + m - target
            };
            let FastDecode::Correct { symbol } = kernel.classify(rem) else {
                continue; // rem 0 is the (failed) pure solve; others no entry
            };
            if self.symbols.contains(&symbol) || !viable(rem, symbol) {
                continue;
            }
            if slot == AMBIGUOUS_FILLING || found.is_some() {
                // Two fillings share the shifted residue, or a second
                // (rem, filling) explanation exists: the decoder cannot
                // choose.
                return CombinedSolve::Ambiguous;
            }
            found = Some((slot, rem, symbol));
        }
        match found {
            Some((filling, rem, symbol)) => CombinedSolve::Corrected {
                filling,
                rem,
                symbol,
            },
            None => CombinedSolve::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{CombinedSolve, ErasureSolve, Mod64};
    use crate::{presets, Decoded, MuseCode, Word};

    fn payload_limbs(code: &MuseCode, raw: [u64; 5]) -> ([u64; 5], Word) {
        let word = Word::from_limbs(raw) & Word::mask(code.k_bits());
        (word.to_limbs(), word)
    }

    #[test]
    fn supports_matches_tabulation_limits() {
        use crate::SymbolMap;
        use crate::SyndromeKernel;
        // Every preset layout is supported (their kernels exist).
        for code in [
            presets::muse_144_132(),
            presets::muse_80_67(),
            presets::muse_268_256(),
        ] {
            assert!(SyndromeKernel::supports(
                code.symbol_map(),
                code.multiplier()
            ));
            assert!(code.kernel().is_some(), "{}", code.name());
        }
        // 13-bit symbols exceed the content-table width.
        let wide = SymbolMap::sequential(78, 13).unwrap();
        assert!(!SyndromeKernel::supports(&wide, 4065));
        // A symbol spanning bits 0..143 tabulates too: the chunked span
        // arithmetic removed the old 120-bit span limit.
        let mut groups: Vec<Vec<u32>> = (0..36).map(|i| (4 * i..4 * i + 4).collect()).collect();
        groups[0][3] = 143;
        groups[35][3] = 3;
        let spread = SymbolMap::from_groups(144, groups).unwrap();
        assert!(SyndromeKernel::supports(&spread, 4065));
        // Multipliers at or beyond 2^32 exceed the u64 fold.
        let seq = SymbolMap::sequential(144, 4).unwrap();
        assert!(SyndromeKernel::supports(&seq, 4065));
        assert!(!SyndromeKernel::supports(&seq, 1 << 32));
    }

    #[test]
    fn barrett_reduction_is_exact() {
        for m in [
            3u64,
            821,
            2005,
            4065,
            5621,
            65519,
            (1 << 31) - 1,
            u64::MAX - 58,
        ] {
            let reducer = Mod64::new(m);
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..2_000 {
                assert_eq!(reducer.rem(x), x % m, "x={x} m={m}");
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(1);
            }
            for x in [0, 1, m - 1, m, m + 1, u64::MAX, u64::MAX - 1] {
                assert_eq!(reducer.rem(x), x % m, "x={x} m={m}");
            }
        }
    }

    #[test]
    fn check_value_matches_encoder() {
        for code in [
            presets::muse_144_132(),
            presets::muse_80_69(),
            presets::muse_80_67(),
        ] {
            let kernel = code.kernel().expect("presets support the kernel");
            let (limbs, payload) =
                payload_limbs(&code, [0xDEAD_BEEF, 0x0123_4567_89AB_CDEF, 0x55AA, 0, 7]);
            let cw = code.encode(&payload);
            let x = kernel.check_value(&limbs);
            assert_eq!(
                Word::from(x),
                cw & Word::mask(code.r_bits()),
                "check bits for {}",
                code.name()
            );
        }
    }

    #[test]
    fn check_value_of_parts_matches_fold() {
        for code in [
            presets::muse_144_132(),
            presets::muse_80_67(),
            presets::muse_80_70(),
        ] {
            let kernel = code.kernel().expect("presets support the kernel");
            let (limbs, payload) = payload_limbs(&code, [0xABCD, !0, 0x1234_5678, 0, 0]);
            let cw = code.encode(&payload);
            let contents = kernel.contents_of_word(code.symbol_map(), &cw);
            let parts: Vec<u16> = (0..kernel.num_symbols())
                .map(|s| contents[s] & kernel.payload_mask(s))
                .collect();
            assert_eq!(
                kernel.check_value_of_parts(&parts),
                kernel.check_value(&limbs),
                "{}",
                code.name()
            );
            // And applying the check bits reproduces the full contents.
            let x = kernel.check_value(&limbs);
            for s in 0..kernel.num_symbols() {
                assert_eq!(kernel.apply_check_bits(s, parts[s], x), contents[s]);
            }
        }
    }

    #[test]
    fn encoded_contents_match_wide_word() {
        for code in [
            presets::muse_144_132(),
            presets::muse_80_67(),
            presets::muse_80_70(),
        ] {
            let kernel = code.kernel().expect("presets support the kernel");
            let (limbs, payload) = payload_limbs(&code, [!0, 0x1357_9BDF, !0, 0xFFFF, 1]);
            let cw = code.encode(&payload);
            let reference = kernel.contents_of_word(code.symbol_map(), &cw);
            let x = kernel.check_value(&limbs);
            for (sym, &expected) in reference.iter().enumerate() {
                assert_eq!(
                    kernel.encoded_content(sym, &limbs, x),
                    expected,
                    "symbol {sym} of {}",
                    code.name()
                );
            }
            assert_eq!(kernel.residue_of_contents(&reference), 0);
        }
    }

    #[test]
    fn flip_delta_matches_wide_remainder() {
        let code = presets::muse_80_69();
        let kernel = code.kernel().expect("presets support the kernel");
        let (_, payload) = payload_limbs(&code, [42, 99, 0, 0, 0]);
        let cw = code.encode(&payload);
        let contents = kernel.contents_of_word(code.symbol_map(), &cw);
        for sym in [0usize, 7, 19] {
            for pattern in 1u16..16 {
                let mut corrupted = cw;
                for (i, &bit) in code.symbol_map().bits_of(sym).iter().enumerate() {
                    if pattern >> i & 1 == 1 {
                        corrupted.toggle_bit(bit);
                    }
                }
                assert_eq!(
                    kernel.flip_delta(sym, contents[sym], pattern),
                    code.remainder(&corrupted),
                    "sym {sym} pattern {pattern:04b}"
                );
            }
        }
    }

    #[test]
    fn fast_decode_agrees_on_single_device_errors() {
        for code in [presets::muse_144_132(), presets::muse_80_69()] {
            let kernel = code.kernel().expect("presets support the kernel");
            let (_, payload) = payload_limbs(&code, [0xFEED_FACE, 3, 0, 0, 0]);
            let cw = code.encode(&payload);
            let contents = kernel.contents_of_word(code.symbol_map(), &cw);
            for (sym, &content) in contents.iter().enumerate() {
                for pattern in 1u16..1 << kernel.symbol_bits(sym) {
                    let rem = kernel.flip_delta(sym, content, pattern);
                    match kernel.classify(rem) {
                        super::FastDecode::Correct { symbol } => {
                            assert_eq!(symbol, sym);
                            let corrupted = contents[sym] ^ pattern;
                            assert_eq!(
                                kernel.correct(rem, corrupted),
                                Some(contents[sym]),
                                "in-model error must correct back"
                            );
                        }
                        other => {
                            panic!("{}: sym {sym} pattern {pattern:b}: {other:?}", code.name())
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_decode_matches_wide_on_double_errors() {
        let code = presets::muse_144_132();
        let kernel = code.kernel().expect("presets support the kernel");
        let (_, payload) = payload_limbs(&code, [0x0F1E_2D3C, 0, 0, 0, 0]);
        let cw = code.encode(&payload);
        let contents = kernel.contents_of_word(code.symbol_map(), &cw);
        let mut seen_detected = false;
        let mut seen_miscorrected = false;
        for a in 0..code.symbol_map().num_symbols() {
            for b in a + 1..code.symbol_map().num_symbols() {
                let (pat_a, pat_b) = (0b0010u16, 0b0101u16);
                let mut corrupted = cw;
                for (pat, sym) in [(pat_a, a), (pat_b, b)] {
                    for (i, &bit) in code.symbol_map().bits_of(sym).iter().enumerate() {
                        if pat >> i & 1 == 1 {
                            corrupted.toggle_bit(bit);
                        }
                    }
                }
                let rem = kernel.add_mod(
                    kernel.flip_delta(a, contents[a], pat_a),
                    kernel.flip_delta(b, contents[b], pat_b),
                );
                assert_eq!(rem, code.remainder(&corrupted));
                let wide = code.decode(&corrupted);
                match kernel.classify(rem) {
                    super::FastDecode::Clean => {
                        panic!("double error must not alias to zero here")
                    }
                    super::FastDecode::Detected => {
                        assert_eq!(wide, Decoded::Detected);
                        seen_detected = true;
                    }
                    super::FastDecode::Correct { symbol } => {
                        let current = if symbol == a {
                            contents[a] ^ pat_a
                        } else if symbol == b {
                            contents[b] ^ pat_b
                        } else {
                            contents[symbol]
                        };
                        match (kernel.correct(rem, current), wide) {
                            (None, Decoded::Detected) => seen_detected = true,
                            (Some(_), Decoded::Corrected { symbol: ws, .. }) => {
                                assert_eq!(ws, symbol);
                                seen_miscorrected = true;
                            }
                            (fast, wide) => panic!("fast {fast:?} vs wide {wide:?}"),
                        }
                    }
                }
            }
        }
        assert!(
            seen_detected && seen_miscorrected,
            "both outcomes exercised"
        );
    }

    #[test]
    fn combined_scan_matches_elc_entry_brute_force() {
        // The occupied-residue scan of `solve_combined` must find exactly
        // the candidates a brute-force walk of `elc_entries()` finds: a
        // filling at residue ρ pairs with ELC remainder ρ − target, i.e.
        // table[target + rem] occupied for entry `rem` — the two scan
        // directions are bijective.
        let code = presets::muse_80_69();
        let kernel = code.kernel().expect("presets support the kernel");
        let table = kernel.erasure_table(&[4]);
        let m = kernel.modulus();
        for target in (0..m).step_by(7) {
            // Brute force over every ELC entry, content-independent.
            let mut found: Vec<(u64, usize)> = Vec::new();
            let mut ambiguous = false;
            for (rem, symbol) in kernel.elc_entries() {
                if symbol == 4 {
                    continue;
                }
                match table.solve(kernel.add_mod(target, rem)) {
                    ErasureSolve::None => {}
                    ErasureSolve::Ambiguous => ambiguous = true,
                    ErasureSolve::Unique(_) => found.push((rem, symbol)),
                }
            }
            let fast = table.solve_combined(kernel, target, |_, _| true);
            match fast {
                CombinedSolve::Unique(_) => {
                    assert!(matches!(table.solve(target), ErasureSolve::Unique(_)));
                }
                CombinedSolve::Corrected { rem, symbol, .. } => {
                    assert!(!ambiguous && found.len() == 1, "target {target}");
                    assert_eq!(found[0], (rem, symbol), "target {target}");
                }
                CombinedSolve::Ambiguous => {
                    assert!(
                        ambiguous
                            || found.len() > 1
                            || matches!(table.solve(target), ErasureSolve::Ambiguous),
                        "target {target}"
                    );
                }
                CombinedSolve::None => {
                    assert!(!ambiguous && found.is_empty(), "target {target}");
                }
            }
        }
    }

    #[test]
    fn masks_partition_symbol_bits() {
        for code in [
            presets::muse_80_69(),
            presets::muse_80_67(),
            presets::muse_80_70(),
        ] {
            let kernel = code.kernel().expect("presets support the kernel");
            for sym in 0..kernel.num_symbols() {
                let full = kernel.width_mask(sym);
                assert_eq!(kernel.check_mask(sym) | kernel.payload_mask(sym), full);
                assert_eq!(kernel.check_mask(sym) & kernel.payload_mask(sym), 0);
                assert_eq!(kernel.needs_check_value(sym), kernel.check_mask(sym) != 0);
            }
            // Every check bit is owned by exactly one symbol.
            let owned: u32 = (0..kernel.num_symbols())
                .map(|s| kernel.check_mask(s).count_ones())
                .sum();
            assert_eq!(owned, code.r_bits());
        }
    }
}
