//! The MUSE code itself: systematic encoder and correcting decoder
//! (paper Sections II, III and V).
//!
//! Encoding uses Chien's systematic construction (Eq. 4): the payload is
//! shifted left by `r` bits and a check value `X = (m − (payload·2^r mod m))
//! mod m` is attached so the codeword is divisible by `m`. Decoding computes
//! the remainder; a nonzero remainder is looked up in the
//! [`ErrorLookup`](crate::ErrorLookup) and the matched error value is
//! subtracted. Corrections that ripple outside the matched symbol — or
//! remainders with no ELC entry — flag a detected-but-uncorrectable
//! multi-symbol error (Figure 4).

use std::fmt;

use crate::{
    ErrorLookup, ErrorModel, ErrorValueInt, FastMod, FastModError, MultiplierRejection, SymbolMap,
    SyndromeKernel, Word,
};

/// Error constructing a [`MuseCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The multiplier does not give unique nonzero remainders.
    InvalidMultiplier(MultiplierRejection),
    /// The redundancy (bit width of `m`) leaves no room for data.
    RedundancyTooLarge {
        /// Codeword width.
        n_bits: u32,
        /// Bit width of the multiplier.
        redundancy: u32,
    },
    /// No exact fast-modulo constants exist for this multiplier/width.
    FastMod(FastModError),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidMultiplier(r) => write!(f, "invalid multiplier: {r}"),
            Self::RedundancyTooLarge { n_bits, redundancy } => {
                write!(
                    f,
                    "redundancy {redundancy} leaves no data bits in {n_bits}-bit codeword"
                )
            }
            Self::FastMod(e) => write!(f, "fast-modulo derivation failed: {e}"),
        }
    }
}

impl std::error::Error for CodeError {}

impl From<MultiplierRejection> for CodeError {
    fn from(r: MultiplierRejection) -> Self {
        Self::InvalidMultiplier(r)
    }
}

impl From<FastModError> for CodeError {
    fn from(e: FastModError) -> Self {
        Self::FastMod(e)
    }
}

/// Outcome of decoding one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Remainder was zero: the payload is read out directly (zero added
    /// latency — the systematic fast path).
    Clean {
        /// The recovered `k`-bit payload.
        payload: Word,
    },
    /// A correctable error was found and removed.
    Corrected {
        /// The recovered `k`-bit payload.
        payload: Word,
        /// Symbol (device) the error was confined to.
        symbol: usize,
        /// The error value that was subtracted.
        error: ErrorValueInt,
    },
    /// A detected-but-uncorrectable (multi-symbol) error.
    Detected,
}

impl Decoded {
    /// The payload, if the word was clean or corrected.
    pub fn payload(&self) -> Option<Word> {
        match self {
            Self::Clean { payload } | Self::Corrected { payload, .. } => Some(*payload),
            Self::Detected => None,
        }
    }

    /// Whether any error (corrected or not) was observed.
    pub fn saw_error(&self) -> bool {
        !matches!(self, Self::Clean { .. })
    }
}

/// A fully constructed MUSE code: layout + validated multiplier + ELC +
/// fast-modulo constants.
///
/// # Examples
///
/// ```
/// use muse_core::presets;
/// use muse_wideint::U320;
///
/// let code = presets::muse_80_69();
/// let payload = U320::from(0xDEAD_BEEF_1234u64);
/// let cw = code.encode(&payload);
///
/// // Corrupt all four bits of device 7 (a chip failure):
/// let corrupted = cw ^ *code.symbol_map().mask(7);
/// let decoded = code.decode(&corrupted);
/// assert_eq!(decoded.payload(), Some(payload));
/// ```
#[derive(Debug, Clone)]
pub struct MuseCode {
    name: String,
    n_bits: u32,
    k_bits: u32,
    r_bits: u32,
    m: u64,
    map: SymbolMap,
    model: ErrorModel,
    elc: ErrorLookup,
    fastmod: FastMod,
    kernel: Option<SyndromeKernel>,
}

impl MuseCode {
    /// Builds and validates a code from a layout and multiplier.
    ///
    /// The redundancy is `r = ⌈log2 m⌉` bits and the payload width is
    /// `k = n − r`.
    ///
    /// # Errors
    ///
    /// Fails if the multiplier is invalid for the layout, leaves no data
    /// bits, or admits no exact fast-modulo constants.
    ///
    /// # Examples
    ///
    /// Build the paper's MUSE(144,132) from first principles:
    ///
    /// ```
    /// use muse_core::{Direction, ErrorModel, MuseCode, SymbolMap};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let map = SymbolMap::sequential(144, 4)?; // 36 x4 devices
    /// let code = MuseCode::new(map, ErrorModel::symbol(Direction::Bidirectional), 4065)?;
    /// assert_eq!(code.name(), "MUSE(144,132)");
    /// assert_eq!((code.k_bits(), code.r_bits()), (132, 12));
    /// assert!(code.kernel().is_some(), "hot-path kernel precomputed");
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(map: SymbolMap, model: ErrorModel, m: u64) -> Result<Self, CodeError> {
        let n_bits = map.n_bits();
        let r_bits = 64 - m.leading_zeros();
        if r_bits >= n_bits {
            return Err(CodeError::RedundancyTooLarge {
                n_bits,
                redundancy: r_bits,
            });
        }
        let elc = ErrorLookup::build(&map, &model, m)?;
        let fastmod = FastMod::minimal(m, n_bits)?;
        let kernel =
            SyndromeKernel::supports(&map, m).then(|| SyndromeKernel::build(&map, &elc, m, r_bits));
        let k_bits = n_bits - r_bits;
        let name = format!("MUSE({n_bits},{k_bits})");
        Ok(Self {
            name,
            n_bits,
            k_bits,
            r_bits,
            m,
            map,
            model,
            elc,
            fastmod,
            kernel,
        })
    }

    /// `MUSE(n,k)` display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Codeword length `n` in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Payload length `k` in bits.
    pub fn k_bits(&self) -> u32 {
        self.k_bits
    }

    /// Redundancy `r = n − k` in bits.
    pub fn r_bits(&self) -> u32 {
        self.r_bits
    }

    /// The code multiplier `m`.
    pub fn multiplier(&self) -> u64 {
        self.m
    }

    /// Payload bits beyond the protected 64-bit data words — the "saved
    /// bits" available for metadata (Section VI). A 69-bit payload holds
    /// one 64-bit word + 5 spares; a 132-bit payload holds two words + 4.
    pub fn spare_bits(&self) -> u32 {
        self.k_bits - (self.k_bits / 64) * 64
    }

    /// The bit-to-symbol assignment.
    pub fn symbol_map(&self) -> &SymbolMap {
        &self.map
    }

    /// The covered error model.
    pub fn error_model(&self) -> &ErrorModel {
        &self.model
    }

    /// The error lookup table.
    pub fn elc(&self) -> &ErrorLookup {
        &self.elc
    }

    /// The incremental residue-syndrome kernel precomputed for this code
    /// (per-symbol residue tables + fast ELC transitions). This is the
    /// simulators' hot path: see [`SyndromeKernel`].
    ///
    /// `None` when the layout is outside the kernel's tabulation limits
    /// ([`SyndromeKernel::supports`]); such codes still encode and decode
    /// through the wide path, and the simulators fall back to wide-word
    /// trials.
    pub fn kernel(&self) -> Option<&SyndromeKernel> {
        self.kernel.as_ref()
    }

    /// Drops the precomputed kernel, forcing the simulators onto their
    /// wide-word fallback path.
    ///
    /// A test/benchmark hook (used to exercise and time the fallback); not
    /// useful in production.
    #[doc(hidden)]
    pub fn disable_syndrome_kernel(&mut self) {
        self.kernel = None;
    }

    /// The PST classification name, e.g. `C4B` (Section IV).
    pub fn class_name(&self) -> String {
        let bits = self.map.bits_of(0).len() as u32;
        self.model.name(bits)
    }

    /// Encodes a `k`-bit payload into an `n`-bit codeword divisible by `m`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `k` bits.
    pub fn encode(&self, payload: &Word) -> Word {
        assert!(
            payload.bit_len() <= self.k_bits,
            "payload wider than the {}-bit data field",
            self.k_bits
        );
        let shifted = *payload << self.r_bits;
        let rem = self.fastmod.rem(&shifted);
        let check = if rem == 0 { 0 } else { self.m - rem };
        shifted | Word::from(check)
    }

    /// Computes the codeword remainder mod `m` (the decoder's syndrome).
    pub fn remainder(&self, codeword: &Word) -> u64 {
        self.fastmod.rem(codeword)
    }

    /// Decodes a (possibly corrupted) codeword.
    pub fn decode(&self, codeword: &Word) -> Decoded {
        let rem = self.remainder(codeword);
        if rem == 0 {
            return Decoded::Clean {
                payload: *codeword >> self.r_bits,
            };
        }
        let Some(entry) = self.elc.lookup(rem) else {
            return Decoded::Detected; // no matching remainder (Fig. 4, method 1)
        };
        let corrected = entry.error.unapply_from(codeword);
        // Overflow/underflow detection (Fig. 4, method 2): the correction
        // must only change bits inside the matched symbol and must not
        // escape the n-bit codeword.
        if corrected.bit_len() > self.n_bits {
            return Decoded::Detected;
        }
        let diff = corrected ^ *codeword;
        if !(diff & !*self.map.mask(entry.symbol)).is_zero() {
            return Decoded::Detected;
        }
        Decoded::Corrected {
            payload: corrected >> self.r_bits,
            symbol: entry.symbol,
            error: entry.error,
        }
    }

    /// Extracts the payload of a codeword assumed error-free.
    pub fn payload_of(&self, codeword: &Word) -> Word {
        *codeword >> self.r_bits
    }

    /// Erasure decoding: recovers the payload when the listed symbols
    /// (devices) are *known* to be unreliable — the permanent chip-failure
    /// case, e.g. "two consecutive device-failures" on a DDR5 DIMM.
    ///
    /// The erased symbols' bits are treated as unknown and solved for the
    /// unique filling that makes the codeword divisible by `m`. Returns
    /// `None` when no filling (or more than one) restores divisibility.
    ///
    /// For contiguous symbol maps any *pair* of erased symbols is uniquely
    /// recoverable whenever the spanned width `w` satisfies `2^w − 1 < m·2^v`
    /// for the pair's bit offset `v` — in particular MUSE(80,69) recovers
    /// any two adjacent x4 devices (the paper's Section IV claim).
    ///
    /// # Panics
    ///
    /// Panics if more than 16 total bits are erased (the search space is
    /// enumerated) or a symbol index is out of range.
    pub fn recover_erasures(&self, codeword: &Word, symbols: &[usize]) -> Option<Word> {
        let erased: Vec<u32> = symbols
            .iter()
            .flat_map(|&s| self.map.bits_of(s).iter().copied())
            .collect();
        assert!(erased.len() <= 16, "erasure search space too large");
        let mut base = *codeword;
        for &bit in &erased {
            base.set_bit(bit, false);
        }
        let mut solution = None;
        for filling in 0..(1u64 << erased.len()) {
            let mut candidate = base;
            for (i, &bit) in erased.iter().enumerate() {
                if filling >> i & 1 == 1 {
                    candidate.set_bit(bit, true);
                }
            }
            if self.fastmod.rem(&candidate) == 0 {
                if solution.is_some() {
                    return None; // ambiguous
                }
                solution = Some(candidate >> self.r_bits);
            }
        }
        solution
    }

    /// Packs a 64-bit data word and metadata into a payload
    /// (data in the low 64 bits, metadata above — Section VI-A).
    ///
    /// # Panics
    ///
    /// Panics if `k < 64` or the metadata exceeds the spare bits.
    pub fn pack_metadata(&self, data: u64, metadata: u64) -> Word {
        assert!(
            self.k_bits >= 64,
            "payload too narrow for a 64-bit data word"
        );
        assert!(
            metadata == 0 || 64 - metadata.leading_zeros() <= self.spare_bits(),
            "metadata wider than the {} spare bits",
            self.spare_bits()
        );
        Word::from(data) | (Word::from(metadata) << 64)
    }

    /// Splits a payload back into (data, metadata).
    pub fn unpack_metadata(&self, payload: &Word) -> (u64, u64) {
        let data = payload.to_limbs()[0];
        let meta = (*payload >> 64).to_u64().expect("metadata fits u64");
        (data, meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Direction, SymbolMap};

    fn code_80_69() -> MuseCode {
        MuseCode::new(
            SymbolMap::sequential(80, 4).unwrap(),
            ErrorModel::symbol(Direction::Bidirectional),
            2005,
        )
        .unwrap()
    }

    #[test]
    fn parameters() {
        let code = code_80_69();
        assert_eq!(code.name(), "MUSE(80,69)");
        assert_eq!(code.n_bits(), 80);
        assert_eq!(code.k_bits(), 69);
        assert_eq!(code.r_bits(), 11);
        assert_eq!(code.spare_bits(), 5);
        assert_eq!(code.class_name(), "C4B");
    }

    #[test]
    fn encode_is_divisible_and_systematic() {
        let code = code_80_69();
        let payload = Word::from(0x0123_4567_89AB_CDEFu64 >> 4);
        let cw = code.encode(&payload);
        assert_eq!(cw.rem_u64(2005), 0);
        assert_eq!(code.payload_of(&cw), payload);
        assert!(cw.bit_len() <= 80);
    }

    #[test]
    fn clean_decode() {
        let code = code_80_69();
        let payload = Word::from(42u64);
        match code.decode(&code.encode(&payload)) {
            Decoded::Clean { payload: p } => assert_eq!(p, payload),
            other => panic!("expected clean decode, got {other:?}"),
        }
    }

    #[test]
    fn corrects_every_single_device_error() {
        let code = code_80_69();
        let payload = Word::from(0xFEED_FACE_CAFEu64);
        let cw = code.encode(&payload);
        for sym in 0..code.symbol_map().num_symbols() {
            for pattern in 1u64..16 {
                let mut corrupted = cw;
                for (i, &bit) in code.symbol_map().bits_of(sym).iter().enumerate() {
                    if pattern >> i & 1 == 1 {
                        corrupted.toggle_bit(bit);
                    }
                }
                match code.decode(&corrupted) {
                    Decoded::Corrected {
                        payload: p, symbol, ..
                    } => {
                        assert_eq!(p, payload, "sym {sym} pattern {pattern:04b}");
                        assert_eq!(symbol, sym);
                    }
                    other => panic!("sym {sym} pattern {pattern:04b}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn payload_extremes_roundtrip() {
        let code = code_80_69();
        for payload in [Word::ZERO, Word::mask(69), Word::pow2(68)] {
            let cw = code.encode(&payload);
            assert_eq!(code.decode(&cw).payload(), Some(payload));
            // and still corrects under a full-device flip
            let corrupted = cw ^ *code.symbol_map().mask(3);
            assert_eq!(code.decode(&corrupted).payload(), Some(payload));
        }
    }

    #[test]
    #[should_panic(expected = "payload wider")]
    fn oversized_payload_panics() {
        let code = code_80_69();
        let _ = code.encode(&Word::mask(70));
    }

    #[test]
    fn saw_error_flags() {
        let code = code_80_69();
        let payload = Word::from(5u64);
        let cw = code.encode(&payload);
        assert!(!code.decode(&cw).saw_error());
        let mut bad = cw;
        bad.toggle_bit(3);
        assert!(code.decode(&bad).saw_error());
    }

    #[test]
    fn erasure_recovery_of_known_pairs() {
        let code = code_80_69();
        let payload = Word::from(0x0FAC_E0FFu64);
        let cw = code.encode(&payload);
        // Garbage in devices 4 and 5 (adjacent pair).
        let corrupted = cw ^ *code.symbol_map().mask(4) ^ *code.symbol_map().mask(5);
        assert_eq!(code.recover_erasures(&corrupted, &[4, 5]), Some(payload));
        // Single known-bad device also recovers.
        let corrupted = cw ^ *code.symbol_map().mask(9);
        assert_eq!(code.recover_erasures(&corrupted, &[9]), Some(payload));
        // No erasures: clean word passes, corrupted word fails.
        assert_eq!(code.recover_erasures(&cw, &[]), Some(payload));
    }

    #[test]
    #[should_panic(expected = "search space too large")]
    fn erasure_limit_enforced() {
        let code = code_80_69();
        let cw = code.encode(&Word::ZERO);
        let _ = code.recover_erasures(&cw, &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn metadata_pack_roundtrip() {
        let code = code_80_69();
        let payload = code.pack_metadata(0xDEAD_BEEF, 0b10110);
        let (data, meta) = code.unpack_metadata(&payload);
        assert_eq!(data, 0xDEAD_BEEF);
        assert_eq!(meta, 0b10110);
        // survives an error
        let cw = code.encode(&payload);
        let corrupted = cw ^ *code.symbol_map().mask(19);
        let recovered = code.decode(&corrupted).payload().unwrap();
        assert_eq!(code.unpack_metadata(&recovered), (0xDEAD_BEEF, 0b10110));
    }

    #[test]
    #[should_panic(expected = "metadata wider")]
    fn oversized_metadata_panics() {
        let code = code_80_69();
        let _ = code.pack_metadata(1, 0b100000); // 6 bits > 5 spare
    }

    #[test]
    fn invalid_multiplier_is_rejected() {
        let err = MuseCode::new(
            SymbolMap::sequential(80, 4).unwrap(),
            ErrorModel::symbol(Direction::Bidirectional),
            2007,
        );
        assert!(matches!(err, Err(CodeError::InvalidMultiplier(_))));
    }

    #[test]
    fn double_device_errors_never_silently_clean() {
        // Beyond-model errors must never decode as Clean; the vast majority
        // are flagged Detected (Table IV measures the exact rate).
        let code = code_80_69();
        let payload = Word::from(0x0F1E_2D3C_4B5Au64);
        let cw = code.encode(&payload);
        let mut detected = 0u32;
        let mut miscorrected = 0u32;
        let mut total = 0u32;
        for a in 0..code.symbol_map().num_symbols() {
            for b in a + 1..code.symbol_map().num_symbols() {
                // A fixed non-trivial corruption in each of two devices.
                let mut corrupted = cw;
                corrupted.toggle_bit(code.symbol_map().bits_of(a)[1]);
                corrupted.toggle_bit(code.symbol_map().bits_of(b)[2]);
                corrupted.toggle_bit(code.symbol_map().bits_of(b)[0]);
                total += 1;
                match code.decode(&corrupted) {
                    Decoded::Clean { .. } => panic!("double error decoded clean"),
                    Decoded::Detected => detected += 1,
                    Decoded::Corrected { payload: p, .. } => {
                        assert_ne!(p, payload, "a miscorrection cannot restore the payload");
                        miscorrected += 1;
                    }
                }
            }
        }
        assert_eq!(detected + miscorrected, total);
        assert!(
            detected * 2 > total,
            "most double-device errors are detected"
        );
    }
}
