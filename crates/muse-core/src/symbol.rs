//! Bit-to-symbol assignment ("shuffling", paper Section III-B).
//!
//! A *symbol* is the group of codeword bits written to one DRAM device. With
//! the traditional *sequential* assignment, symbol `i` holds the contiguous
//! bits `[s·i, s·(i+1))`. *Shuffling* re-routes the wires between the memory
//! controller and the DRAM interface so that a device holds scattered bit
//! positions, which changes the numerical error values a device failure can
//! produce and lets small multipliers disambiguate them.

use std::fmt;

use crate::Word;

/// Error constructing a [`SymbolMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolMapError {
    /// A bit position is out of the codeword range.
    BitOutOfRange {
        /// The offending bit position.
        bit: u32,
        /// The codeword width.
        n_bits: u32,
    },
    /// A bit position appears in more than one symbol (or twice in one).
    DuplicateBit(u32),
    /// Some codeword bit belongs to no symbol.
    UncoveredBit(u32),
    /// The codeword length is not divisible by the symbol size.
    UnevenSymbols {
        /// The codeword width.
        n_bits: u32,
        /// The requested symbol width (or symbol count for interleaving).
        symbol_bits: u32,
    },
    /// The codeword exceeds the fixed word width.
    TooWide {
        /// The requested codeword width.
        n_bits: u32,
    },
}

impl fmt::Display for SymbolMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BitOutOfRange { bit, n_bits } => {
                write!(f, "bit {bit} out of range for {n_bits}-bit codeword")
            }
            Self::DuplicateBit(bit) => write!(f, "bit {bit} assigned to more than one symbol"),
            Self::UncoveredBit(bit) => write!(f, "bit {bit} not assigned to any symbol"),
            Self::UnevenSymbols {
                n_bits,
                symbol_bits,
            } => {
                write!(
                    f,
                    "{n_bits}-bit codeword not divisible into {symbol_bits}-bit symbols"
                )
            }
            Self::TooWide { n_bits } => {
                write!(
                    f,
                    "{n_bits}-bit codeword exceeds the {} bit word width",
                    Word::BITS
                )
            }
        }
    }
}

impl std::error::Error for SymbolMapError {}

/// A partition of the `n` codeword bits into symbols (one symbol per DRAM
/// device).
///
/// # Examples
///
/// ```
/// use muse_core::SymbolMap;
///
/// # fn main() -> Result<(), muse_core::SymbolMapError> {
/// // DDR4 x4 layout: 144 bits over 36 devices, 4 bits each.
/// let map = SymbolMap::sequential(144, 4)?;
/// assert_eq!(map.num_symbols(), 36);
/// assert_eq!(map.symbol_of_bit(7), 1);
///
/// // Paper Eq. 5: ten 8-bit symbols, bit i belongs to symbol i mod 10.
/// let shuffled = SymbolMap::interleaved(80, 10)?;
/// assert_eq!(shuffled.bits_of(0), &[0, 10, 20, 30, 40, 50, 60, 70]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolMap {
    n_bits: u32,
    symbols: Vec<Vec<u32>>,
    masks: Vec<Word>,
    bit_to_symbol: Vec<u32>,
}

impl SymbolMap {
    /// Sequential assignment: symbol `i` holds bits `[s·i, s·(i+1))`.
    ///
    /// # Errors
    ///
    /// Fails if `n_bits` is not a multiple of `symbol_bits` or exceeds the
    /// word width.
    pub fn sequential(n_bits: u32, symbol_bits: u32) -> Result<Self, SymbolMapError> {
        if symbol_bits == 0 || !n_bits.is_multiple_of(symbol_bits) {
            return Err(SymbolMapError::UnevenSymbols {
                n_bits,
                symbol_bits,
            });
        }
        let groups = (0..n_bits / symbol_bits)
            .map(|i| (i * symbol_bits..(i + 1) * symbol_bits).collect())
            .collect();
        Self::from_groups(n_bits, groups)
    }

    /// Interleaved ("shuffled") assignment with `num_symbols` symbols:
    /// bit `j` belongs to symbol `j mod num_symbols`.
    ///
    /// With `num_symbols = 10` over 80 bits this is exactly the paper's
    /// Eq. 5 shuffle for MUSE(80,67).
    ///
    /// # Errors
    ///
    /// Fails if `n_bits` is not a multiple of `num_symbols`.
    pub fn interleaved(n_bits: u32, num_symbols: u32) -> Result<Self, SymbolMapError> {
        if num_symbols == 0 || !n_bits.is_multiple_of(num_symbols) {
            return Err(SymbolMapError::UnevenSymbols {
                n_bits,
                symbol_bits: num_symbols,
            });
        }
        let groups = (0..num_symbols)
            .map(|i| {
                (0..n_bits / num_symbols)
                    .map(|k| k * num_symbols + i)
                    .collect()
            })
            .collect();
        Self::from_groups(n_bits, groups)
    }

    /// The paper's Eq. 6 shuffle for MUSE(80,70): twenty 4-bit symbols where
    /// `S_{2i} = [b_i, b_{10+i}, b_{20+i}, b_{30+i}]` and
    /// `S_{2i+1} = [b_{40+i}, b_{50+i}, b_{60+i}, b_{70+i}]` for `i ∈ [0, 10)`.
    pub fn eq6_hybrid_80() -> Self {
        let mut groups = Vec::with_capacity(20);
        for i in 0..10u32 {
            groups.push(vec![i, 10 + i, 20 + i, 30 + i]);
            groups.push(vec![40 + i, 50 + i, 60 + i, 70 + i]);
        }
        Self::from_groups(80, groups).expect("eq6 shuffle is a valid partition")
    }

    /// Builds a map from explicit bit groups.
    ///
    /// # Errors
    ///
    /// Fails unless `groups` is an exact partition of `[0, n_bits)`.
    pub fn from_groups(n_bits: u32, groups: Vec<Vec<u32>>) -> Result<Self, SymbolMapError> {
        if n_bits > Word::BITS {
            return Err(SymbolMapError::TooWide { n_bits });
        }
        let mut bit_to_symbol = vec![u32::MAX; n_bits as usize];
        for (sym, bits) in groups.iter().enumerate() {
            for &bit in bits {
                if bit >= n_bits {
                    return Err(SymbolMapError::BitOutOfRange { bit, n_bits });
                }
                if bit_to_symbol[bit as usize] != u32::MAX {
                    return Err(SymbolMapError::DuplicateBit(bit));
                }
                bit_to_symbol[bit as usize] = sym as u32;
            }
        }
        if let Some(bit) = bit_to_symbol.iter().position(|&s| s == u32::MAX) {
            return Err(SymbolMapError::UncoveredBit(bit as u32));
        }
        let masks = groups
            .iter()
            .map(|bits| {
                let mut mask = Word::ZERO;
                for &bit in bits {
                    mask.set_bit(bit, true);
                }
                mask
            })
            .collect();
        Ok(Self {
            n_bits,
            symbols: groups,
            masks,
            bit_to_symbol,
        })
    }

    /// Codeword length in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Number of symbols (devices).
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The bit positions held by symbol `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_symbols()`.
    pub fn bits_of(&self, i: usize) -> &[u32] {
        &self.symbols[i]
    }

    /// Bitmask of symbol `i`'s positions in the logical codeword.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_symbols()`.
    pub fn mask(&self, i: usize) -> &Word {
        &self.masks[i]
    }

    /// The symbol owning bit `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= n_bits()`.
    pub fn symbol_of_bit(&self, pos: u32) -> usize {
        self.bit_to_symbol[pos as usize] as usize
    }

    /// Whether every symbol holds a contiguous, aligned run of bits
    /// (i.e. the identity shuffle).
    pub fn is_sequential(&self) -> bool {
        self.symbols.iter().enumerate().all(|(i, bits)| {
            bits.iter()
                .enumerate()
                .all(|(j, &b)| b == i as u32 * bits.len() as u32 + j as u32)
        })
    }

    /// XORs a symbol-local flip `pattern` (bit `i` of the pattern flips
    /// the symbol's `i`-th bit position) onto `word` — the canonical way
    /// the simulators inject a device fault.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is out of range.
    pub fn apply_xor_pattern(&self, word: &mut Word, symbol: usize, pattern: u64) {
        for (i, &bit) in self.bits_of(symbol).iter().enumerate() {
            if pattern >> i & 1 == 1 {
                word.toggle_bit(bit);
            }
        }
    }

    /// Routes a logical codeword to the storage (wire) layout: device `d`
    /// receives the bits of symbol `d`, packed in declaration order.
    ///
    /// For a sequential map this is the identity.
    pub fn shuffle_to_storage(&self, logical: &Word) -> Word {
        let mut stored = Word::ZERO;
        let mut out_pos = 0;
        for bits in &self.symbols {
            for &bit in bits {
                if logical.bit(bit) {
                    stored.set_bit(out_pos, true);
                }
                out_pos += 1;
            }
        }
        stored
    }

    /// Inverse of [`Self::shuffle_to_storage`].
    pub fn unshuffle_from_storage(&self, stored: &Word) -> Word {
        let mut logical = Word::ZERO;
        let mut in_pos = 0;
        for bits in &self.symbols {
            for &bit in bits {
                if stored.bit(in_pos) {
                    logical.set_bit(bit, true);
                }
                in_pos += 1;
            }
        }
        logical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_layout() {
        let map = SymbolMap::sequential(144, 4).unwrap();
        assert_eq!(map.num_symbols(), 36);
        assert_eq!(map.bits_of(0), &[0, 1, 2, 3]);
        assert_eq!(map.bits_of(35), &[140, 141, 142, 143]);
        assert!(map.is_sequential());
        assert_eq!(map.symbol_of_bit(143), 35);
        assert_eq!(map.mask(1).to_u64(), Some(0xF0));
    }

    #[test]
    fn interleaved_eq5_layout() {
        // Paper Eq. 5: S_i = [b_i, b_{10+i}, ..., b_{70+i}]
        let map = SymbolMap::interleaved(80, 10).unwrap();
        assert_eq!(map.num_symbols(), 10);
        for i in 0..10u32 {
            let expect: Vec<u32> = (0..8).map(|k| 10 * k + i).collect();
            assert_eq!(map.bits_of(i as usize), expect.as_slice());
        }
        assert!(!map.is_sequential());
    }

    #[test]
    fn eq6_layout() {
        let map = SymbolMap::eq6_hybrid_80();
        assert_eq!(map.num_symbols(), 20);
        assert_eq!(map.bits_of(0), &[0, 10, 20, 30]);
        assert_eq!(map.bits_of(1), &[40, 50, 60, 70]);
        assert_eq!(map.bits_of(2), &[1, 11, 21, 31]);
        assert_eq!(map.bits_of(19), &[49, 59, 69, 79]);
        assert_eq!(map.symbol_of_bit(79), 19);
    }

    #[test]
    fn rejects_bad_partitions() {
        assert!(matches!(
            SymbolMap::sequential(80, 3),
            Err(SymbolMapError::UnevenSymbols { .. })
        ));
        assert!(matches!(
            SymbolMap::from_groups(8, vec![vec![0, 1], vec![1, 2]]),
            Err(SymbolMapError::DuplicateBit(1))
        ));
        assert!(matches!(
            SymbolMap::from_groups(8, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]),
            Err(SymbolMapError::UncoveredBit(7))
        ));
        assert!(matches!(
            SymbolMap::from_groups(4, vec![vec![0, 1, 2, 9]]),
            Err(SymbolMapError::BitOutOfRange { bit: 9, .. })
        ));
        assert!(matches!(
            SymbolMap::sequential(400, 4),
            Err(SymbolMapError::TooWide { .. })
        ));
    }

    #[test]
    fn apply_xor_pattern_flips_symbol_bits() {
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let mut word = Word::ZERO;
        map.apply_xor_pattern(&mut word, 3, 0b101);
        // Symbol 3 holds bits {3, 13, 23, ...}; pattern 0b101 flips its
        // 0th and 2nd positions.
        assert_eq!(word.count_ones(), 2);
        assert!(word.bit(3) && word.bit(23));
        map.apply_xor_pattern(&mut word, 3, 0b101);
        assert!(word.is_zero(), "applying twice cancels");
    }

    #[test]
    fn storage_roundtrip_identity_for_sequential() {
        let map = SymbolMap::sequential(80, 4).unwrap();
        let word = Word::from(0xDEAD_BEEF_CAFE_u64);
        assert_eq!(map.shuffle_to_storage(&word), word);
        assert_eq!(map.unshuffle_from_storage(&word), word);
    }

    #[test]
    fn storage_roundtrip_shuffled() {
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let mut word = Word::ZERO;
        for i in [0u32, 3, 17, 42, 79] {
            word.set_bit(i, true);
        }
        let stored = map.shuffle_to_storage(&word);
        assert_ne!(stored, word);
        assert_eq!(map.unshuffle_from_storage(&stored), word);
        // Bit 0 of the logical word lands at storage bit 0 (symbol 0, first slot);
        // bit 10 lands at storage bit 1.
        let mut one = Word::ZERO;
        one.set_bit(10, true);
        assert_eq!(map.shuffle_to_storage(&one), Word::from(2u64));
    }

    #[test]
    fn storage_view_groups_device_bits() {
        // After shuffling, storage bits [8i, 8i+8) all come from symbol i:
        // corrupting them corresponds to a single-device failure.
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let stored_mask = Word::mask(8); // device 0 in storage layout
        let logical = map.unshuffle_from_storage(&stored_mask);
        assert_eq!(&logical, map.mask(0));
    }
}
