//! Fast modulo by a constant via multiplication (paper Section V-B,
//! Table III), after Granlund–Montgomery division-by-invariant-integers and
//! Lemire–Kaser–Kurz direct remainder computation.
//!
//! With `M = ⌊2^F / m⌋ + 1`, the remainder of an `N`-bit value `x` is
//! `((M·x mod 2^F) · m) >> F`, exact whenever `(M·m − 2^F)·(2^N − 1) < 2^F`.
//! The decoder hardware implements exactly this: one multiply by the wide
//! constant `M`, one multiply of the kept fraction by the small constant `m`,
//! no division.

use std::fmt;

use muse_wideint::U320;

use crate::Word;

/// Error constructing a [`FastMod`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastModError {
    /// `m` must be at least 3 (and odd multipliers are the practical case).
    ModulusTooSmall,
    /// No shift `F` within the word width satisfies the exactness criterion
    /// for `n_bits`-wide inputs.
    NoValidShift,
}

impl fmt::Display for FastModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ModulusTooSmall => write!(f, "modulus must be at least 3"),
            Self::NoValidShift => write!(f, "no shift satisfies the exactness criterion"),
        }
    }
}

impl std::error::Error for FastModError {}

/// Precomputed constants for exact remainder-by-multiplication.
///
/// # Examples
///
/// ```
/// use muse_core::FastMod;
/// use muse_wideint::U320;
///
/// # fn main() -> Result<(), muse_core::FastModError> {
/// // Table III row 1: m = 4065 for 144-bit codewords.
/// let fm = FastMod::minimal(4065, 144)?;
/// assert_eq!(fm.shift(), 156);
/// assert_eq!(
///     fm.inverse().to_string(),
///     "22470812382086453231913973442747278899998963"
/// );
/// let x = U320::from(123_456_789_123_456_789u64);
/// assert_eq!(fm.rem(&x), x.rem_u64(4065));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastMod {
    m: u64,
    shift: u32,
    inverse: U320,
    n_bits: u32,
}

impl FastMod {
    /// Derives the constants with the *minimal* shift `F` that is exact for
    /// all inputs below `2^n_bits` — the choice that minimizes multiplier
    /// hardware, reproducing Table III.
    ///
    /// # Errors
    ///
    /// Fails if `m < 3` or no shift up to the word width qualifies.
    pub fn minimal(m: u64, n_bits: u32) -> Result<Self, FastModError> {
        if m < 3 {
            return Err(FastModError::ModulusTooSmall);
        }
        // Smallest F with (M·m − 2^F)·(2^N − 1) < 2^F, M = ⌊2^F/m⌋ + 1.
        // The inverse M must also fit the word, as must M·m ≈ 2^F + m.
        for shift in m.ilog2()..Word::BITS {
            let pow = U320::pow2(shift);
            let (quotient, _) = pow.div_rem_u64(m);
            let inverse = quotient + U320::ONE;
            let (scaled, carry) = inverse.overflowing_mul_u64(m);
            if carry != 0 {
                return Err(FastModError::NoValidShift);
            }
            let excess = scaled
                .checked_sub(&pow)
                .expect("M*m >= 2^F by construction")
                .to_u64()
                .expect("excess is at most m");
            // excess·(2^N − 1) < 2^F, computed exactly in 320 bits.
            let n_mask = U320::mask(n_bits);
            let (lhs, overflow) = n_mask.overflowing_mul_u64(excess);
            if overflow == 0 && lhs < pow {
                return Ok(Self {
                    m,
                    shift,
                    inverse,
                    n_bits,
                });
            }
        }
        Err(FastModError::NoValidShift)
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// The shift amount `F`.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// The scaled inverse `M = ⌊2^F/m⌋ + 1`.
    pub fn inverse(&self) -> &U320 {
        &self.inverse
    }

    /// The guaranteed input width in bits.
    pub fn input_bits(&self) -> u32 {
        self.n_bits
    }

    /// Computes `x mod m` with two multiplications and no division.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` exceeds the guaranteed input width.
    pub fn rem(&self, x: &Word) -> u64 {
        debug_assert!(
            x.bit_len() <= self.n_bits,
            "fastmod input wider than the guaranteed {} bits",
            self.n_bits
        );
        // Fraction of M·x below the binary point at F.
        let (lo, _hi) = self.inverse.widening_mul(x);
        let frac = lo & U320::mask(self.shift);
        // (frac · m) >> F: the product may carry one limb past 320 bits.
        let (prod, carry) = frac.overflowing_mul_u64(self.m);
        extract_u64_window(&prod, carry, self.shift)
    }
}

/// Reads the 64-bit window starting at `offset` from the 384-bit value
/// `carry·2^320 + prod`.
fn extract_u64_window(prod: &U320, carry: u64, offset: u32) -> u64 {
    let limbs = prod.to_limbs();
    let idx = (offset / 64) as usize;
    let shift = offset % 64;
    let get = |i: usize| -> u64 {
        if i < 5 {
            limbs[i]
        } else if i == 5 {
            carry
        } else {
            0
        }
    };
    if shift == 0 {
        get(idx)
    } else {
        (get(idx) >> shift) | (get(idx + 1) << (64 - shift))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table III of the paper: multiplier, inverse value, shift.
    const TABLE3: &[(u64, &str, u32, u32)] = &[
        (
            4065,
            "22470812382086453231913973442747278899998963",
            156,
            144,
        ),
        (2005, "77178306688614730355307", 87, 80),
        (5621, "1761878725188230243585305", 93, 80),
        (821, "753922070210341214920295", 89, 80),
    ];

    #[test]
    fn table3_constants_reproduced() {
        for &(m, inverse, shift, n_bits) in TABLE3 {
            let fm = FastMod::minimal(m, n_bits).unwrap();
            assert_eq!(fm.shift(), shift, "shift for m={m}");
            assert_eq!(fm.inverse().to_string(), inverse, "inverse for m={m}");
        }
    }

    #[test]
    fn rem_matches_division_across_range() {
        for &(m, _, _, n_bits) in TABLE3 {
            let fm = FastMod::minimal(m, n_bits).unwrap();
            // Deterministic pseudo-random sweep plus adversarial extremes.
            let mut x = U320::from(0x9E37_79B9_7F4A_7C15u64);
            for _ in 0..500 {
                let probe = x & U320::mask(n_bits);
                assert_eq!(fm.rem(&probe), probe.rem_u64(m), "m={m} x={probe:x}");
                // xorshift-ish scramble across the full width
                x = (x << 13) ^ (x >> 7) ^ U320::from(0xBF58_476D_1CE4_E5B9u64);
                x = x | (x << 64);
            }
            for probe in [U320::ZERO, U320::ONE, U320::mask(n_bits)] {
                assert_eq!(fm.rem(&probe), probe.rem_u64(m), "m={m} extreme");
            }
        }
    }

    #[test]
    fn shift_is_minimal() {
        // One shift below the derived value must violate the criterion:
        // verify by checking an explicit counterexample input.
        for &(m, _, shift, n_bits) in TABLE3 {
            let smaller = FastMod {
                m,
                shift: shift - 1,
                inverse: U320::pow2(shift - 1).div_rem_u64(m).0 + U320::ONE,
                n_bits,
            };
            let mut found_mismatch = false;
            // Scan multiples of m near the top of the range: the fastmod
            // error term e·x/2^F is largest for large x.
            let top = U320::mask(n_bits);
            let (q, _) = top.div_rem_u64(m);
            for k in 0..2000u64 {
                let candidate = (q - U320::from(k)).wrapping_mul(&U320::from(m));
                if smaller.rem(&candidate) != candidate.rem_u64(m) {
                    found_mismatch = true;
                    break;
                }
            }
            assert!(found_mismatch, "shift {} was not minimal for m={m}", shift);
        }
    }

    #[test]
    fn rejects_tiny_modulus() {
        assert_eq!(FastMod::minimal(2, 80), Err(FastModError::ModulusTooSmall));
        assert_eq!(FastMod::minimal(0, 80), Err(FastModError::ModulusTooSmall));
    }

    #[test]
    fn pim_multiplier_has_constants() {
        // The Section VI-B PIM code: m = 3621 over 268-bit codewords.
        let fm = FastMod::minimal(3621, 268).unwrap();
        assert!(fm.shift() >= 268);
        let x = U320::mask(268);
        assert_eq!(fm.rem(&x), x.rem_u64(3621));
    }
}
