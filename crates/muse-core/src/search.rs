//! Multiplier search (paper Algorithm 1).
//!
//! A multiplier `m` is valid for a code layout when the mapping
//! `error value ↦ error value mod m` is injective over the layout's distinct
//! error values and never yields zero. The search enumerates all odd `p`-bit
//! candidates `m ∈ [2^(p−1)+1, 2^p−1]` and returns those that qualify.

use std::fmt;

use crate::{enumerate_error_values, ErrorModel, ErrorValue, SymbolMap};

/// Why a candidate multiplier was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiplierRejection {
    /// Some error value is divisible by the multiplier, so it would be
    /// indistinguishable from the no-error case.
    ZeroRemainder {
        /// Index (in enumeration order) of the offending error value.
        value_index: usize,
    },
    /// Two distinct error values share a remainder.
    Collision {
        /// Enumeration index of the first colliding value.
        first: usize,
        /// Enumeration index of the second colliding value.
        second: usize,
    },
}

impl fmt::Display for MultiplierRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroRemainder { value_index } => {
                write!(f, "error value #{value_index} has remainder zero")
            }
            Self::Collision { first, second } => {
                write!(f, "error values #{first} and #{second} share a remainder")
            }
        }
    }
}

impl std::error::Error for MultiplierRejection {}

/// Generation-stamped remainder-ownership scratch, reused across the
/// thousands of candidates a search checks: no per-candidate allocation and
/// no O(m) refill — beginning a new candidate just bumps a generation
/// counter.
#[derive(Debug, Clone, Default)]
struct StampedOwner {
    owner: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
}

impl StampedOwner {
    /// Prepares for a candidate with modulus `m`.
    fn begin(&mut self, m: u64) {
        let m = m as usize;
        if self.owner.len() < m {
            self.owner.resize(m, 0);
            self.stamp.resize(m, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: old stamps could alias; clear once per 2^32.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// Claims `rem` for value `idx`; returns the previous claimant of this
    /// candidate, if any.
    #[inline]
    fn claim(&mut self, rem: usize, idx: u32) -> Option<u32> {
        if self.stamp[rem] == self.generation {
            return Some(self.owner[rem]);
        }
        self.stamp[rem] = self.generation;
        self.owner[rem] = idx;
        None
    }
}

/// Reusable multiplier validator: owns the remainder scratch so checking
/// many candidates against the same (or different) value lists allocates
/// nothing after the first call.
///
/// # Examples
///
/// ```
/// use muse_core::{
///     enumerate_error_values, Direction, ErrorModel, MultiplierValidator, SymbolMap,
/// };
///
/// # fn main() -> Result<(), muse_core::SymbolMapError> {
/// let map = SymbolMap::sequential(80, 4)?;
/// let values = enumerate_error_values(&map, &ErrorModel::symbol(Direction::Bidirectional));
/// let mut validator = MultiplierValidator::new();
/// let valid: Vec<u64> = (1025..2048u64)
///     .step_by(2)
///     .filter(|&m| validator.validate(&values, m).is_ok())
///     .collect();
/// assert_eq!(valid, vec![1491, 1721, 1763, 1833, 1875, 1899, 1955, 2005]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultiplierValidator {
    scratch: StampedOwner,
}

impl MultiplierValidator {
    /// An empty validator (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks one multiplier against a pre-enumerated error-value list.
    ///
    /// # Errors
    ///
    /// Returns the first [`MultiplierRejection`] encountered.
    pub fn validate(&mut self, values: &[ErrorValue], m: u64) -> Result<(), MultiplierRejection> {
        self.scratch.begin(m);
        for (idx, ev) in values.iter().enumerate() {
            let rem = ev.value.rem_euclid_u64(m);
            if rem == 0 {
                return Err(MultiplierRejection::ZeroRemainder { value_index: idx });
            }
            if let Some(first) = self.scratch.claim(rem as usize, idx as u32) {
                return Err(MultiplierRejection::Collision {
                    first: first as usize,
                    second: idx,
                });
            }
        }
        Ok(())
    }
}

/// Checks a single multiplier against a pre-enumerated error-value list.
///
/// For repeated checks, hold a [`MultiplierValidator`] instead — this
/// convenience wrapper sets up fresh scratch per call.
///
/// # Errors
///
/// Returns the first [`MultiplierRejection`] encountered.
pub fn validate_multiplier_over(values: &[ErrorValue], m: u64) -> Result<(), MultiplierRejection> {
    MultiplierValidator::new().validate(values, m)
}

/// Checks whether `m` is a valid multiplier for the layout.
///
/// # Errors
///
/// Returns the first [`MultiplierRejection`] encountered.
///
/// # Examples
///
/// ```
/// use muse_core::{validate_multiplier, Direction, ErrorModel, SymbolMap};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = SymbolMap::sequential(144, 4)?;
/// let model = ErrorModel::symbol(Direction::Bidirectional);
/// // Table I: m = 4065 defines MUSE(144,132).
/// validate_multiplier(&map, &model, 4065)?;
/// // ...but m = 4067 does not qualify.
/// assert!(validate_multiplier(&map, &model, 4067).is_err());
/// # Ok(())
/// # }
/// ```
pub fn validate_multiplier(
    map: &SymbolMap,
    model: &ErrorModel,
    m: u64,
) -> Result<(), MultiplierRejection> {
    validate_multiplier_over(&enumerate_error_values(map, model), m)
}

/// Options for [`find_multipliers`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchOptions {
    /// Worker threads (0 ⇒ one per available CPU).
    pub threads: usize,
    /// Stop after this many valid multipliers (0 ⇒ exhaustive).
    pub limit: usize,
}

/// Exhaustively searches the odd `p`-bit multipliers `[2^(p−1)+1, 2^p−1]`
/// for values that give every error value a unique nonzero remainder
/// (Algorithm 1).
///
/// Returns the valid multipliers in ascending order (possibly empty — e.g.
/// the paper notes MUSE(80,67) has *no* valid multiplier without shuffling).
///
/// # Panics
///
/// Panics if `p` is 0 or greater than 30 (the ELC would be impractical).
///
/// # Examples
///
/// ```
/// use muse_core::{find_multipliers, Direction, ErrorModel, SearchOptions, SymbolMap};
///
/// # fn main() -> Result<(), muse_core::SymbolMapError> {
/// // Appendix F: 80-bit codewords, 11-bit redundancy, 4-bit symbols
/// // yield exactly eight multipliers, the largest being 2005.
/// let map = SymbolMap::sequential(80, 4)?;
/// let model = ErrorModel::symbol(Direction::Bidirectional);
/// let found = find_multipliers(&map, &model, 11, SearchOptions::default());
/// assert_eq!(found.last(), Some(&2005));
/// # Ok(())
/// # }
/// ```
pub fn find_multipliers(
    map: &SymbolMap,
    model: &ErrorModel,
    p: u32,
    options: SearchOptions,
) -> Vec<u64> {
    assert!(
        p > 0 && p <= 30,
        "multiplier width {p} out of the practical range"
    );
    let values = enumerate_error_values(map, model);
    let lo = (1u64 << (p - 1)) + 1;
    let hi = (1u64 << p) - 1;
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        options.threads
    };

    let candidates: Vec<u64> = (lo..=hi).step_by(2).collect();
    let mut found: Vec<u64> = if threads <= 1 || candidates.len() < 64 {
        scan(&values, &candidates)
    } else {
        let chunk = candidates.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk)
                .map(|part| scope.spawn(|| scan(&values, part)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
    };
    found.sort_unstable();
    if options.limit > 0 {
        found.truncate(options.limit);
    }
    found
}

fn scan(values: &[ErrorValue], candidates: &[u64]) -> Vec<u64> {
    // Residues are recomputed per candidate from a power table: each error
    // value is a short signed sum of powers of two, so `rem = Σ ±2^b mod m`.
    let mut out = Vec::new();
    let n_bits = values
        .iter()
        .map(|v| v.value.magnitude().bit_len())
        .max()
        .unwrap_or(0);
    // (bit positions, negative) per value for fast residue evaluation.
    let decomposed: Vec<(Vec<u32>, bool)> = values
        .iter()
        .map(|v| {
            let mag = v.value.magnitude();
            let bits: Vec<u32> = (0..mag.bit_len()).filter(|&b| mag.bit(b)).collect();
            (bits, v.value.is_negative())
        })
        .collect();
    let mut pow = vec![0u64; n_bits as usize + 1];
    let mut owner = StampedOwner::default();
    for &m in candidates {
        pow[0] = 1 % m;
        for i in 1..pow.len() {
            pow[i] = pow[i - 1] * 2 % m;
        }
        owner.begin(m);
        let mut ok = true;
        for (idx, (bits, negative)) in decomposed.iter().enumerate() {
            let mut rem: u64 = 0;
            for &b in bits {
                rem += pow[b as usize];
                if rem >= m {
                    rem -= m;
                }
            }
            if *negative && rem != 0 {
                rem = m - rem;
            }
            if rem == 0 {
                ok = false;
                break;
            }
            if owner.claim(rem as usize, idx as u32).is_some() {
                ok = false;
                break;
            }
        }
        if ok {
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn c4b(n: u32) -> (SymbolMap, ErrorModel) {
        (
            SymbolMap::sequential(n, 4).unwrap(),
            ErrorModel::symbol(Direction::Bidirectional),
        )
    }

    #[test]
    fn table1_multiplier_4065_is_valid() {
        let (map, model) = c4b(144);
        assert_eq!(validate_multiplier(&map, &model, 4065), Ok(()));
    }

    #[test]
    fn table1_multiplier_2005_is_valid() {
        let (map, model) = c4b(80);
        assert_eq!(validate_multiplier(&map, &model, 2005), Ok(()));
    }

    #[test]
    fn table1_multiplier_5621_is_valid_with_eq5_shuffle() {
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let model = ErrorModel::symbol(Direction::OneToZero);
        assert_eq!(validate_multiplier(&map, &model, 5621), Ok(()));
    }

    #[test]
    fn table1_multiplier_821_is_valid_for_hybrid() {
        let map = SymbolMap::eq6_hybrid_80();
        let model = ErrorModel::hybrid_symbol_plus_single_bit();
        assert_eq!(validate_multiplier(&map, &model, 821), Ok(()));
    }

    #[test]
    fn appendix_f_80bit_11bit_list() {
        // Appendix F: exactly these eight multipliers for 80b / 11-bit / 4-bit.
        let (map, model) = c4b(80);
        let found = find_multipliers(&map, &model, 11, SearchOptions::default());
        assert_eq!(found, vec![1491, 1721, 1763, 1833, 1875, 1899, 1955, 2005]);
    }

    #[test]
    fn search_limit_and_single_thread() {
        let (map, model) = c4b(80);
        let opts = SearchOptions {
            threads: 1,
            limit: 3,
        };
        let found = find_multipliers(&map, &model, 11, opts);
        assert_eq!(found, vec![1491, 1721, 1763]);
    }

    #[test]
    fn muse_80_67_needs_shuffling() {
        // Paper Section IV: with sequential assignment of 8-bit symbols there
        // is no valid 13-bit multiplier; the Eq. 5 shuffle yields exactly 5621.
        let map = SymbolMap::sequential(80, 8).unwrap();
        let model = ErrorModel::symbol(Direction::OneToZero);
        assert!(find_multipliers(&map, &model, 13, SearchOptions::default()).is_empty());

        let shuffled = SymbolMap::interleaved(80, 10).unwrap();
        let found = find_multipliers(&shuffled, &model, 13, SearchOptions::default());
        assert_eq!(found, vec![5621]);
    }

    #[test]
    fn muse_80_70_needs_shuffling() {
        // Appendix G: MUSE(80,70) without shuffling finds no multiplier.
        let model = ErrorModel::hybrid_symbol_plus_single_bit();
        let sequential = SymbolMap::sequential(80, 4).unwrap();
        assert!(find_multipliers(&sequential, &model, 10, SearchOptions::default()).is_empty());

        let found = find_multipliers(
            &SymbolMap::eq6_hybrid_80(),
            &model,
            10,
            SearchOptions::default(),
        );
        assert_eq!(found, vec![821]);
    }

    #[test]
    fn rejection_reasons_are_reported() {
        use crate::{ErrorValue, ErrorValueInt};
        // Zero remainder: an error value divisible by m.
        let divisible = vec![ErrorValue {
            value: ErrorValueInt::from(3 * 1025),
            symbol: 0,
        }];
        assert_eq!(
            validate_multiplier_over(&divisible, 1025),
            Err(MultiplierRejection::ZeroRemainder { value_index: 0 })
        );
        // Collision: two values congruent mod m.
        let colliding = vec![
            ErrorValue {
                value: ErrorValueInt::from(7),
                symbol: 0,
            },
            ErrorValue {
                value: ErrorValueInt::from(7 + 1025),
                symbol: 1,
            },
        ];
        assert_eq!(
            validate_multiplier_over(&colliding, 1025),
            Err(MultiplierRejection::Collision {
                first: 0,
                second: 1
            })
        );
        // A negative value collides with its positive complement image.
        let signed = vec![
            ErrorValue {
                value: ErrorValueInt::from(-3),
                symbol: 0,
            },
            ErrorValue {
                value: ErrorValueInt::from(1022),
                symbol: 1,
            },
        ];
        assert_eq!(
            validate_multiplier_over(&signed, 1025),
            Err(MultiplierRejection::Collision {
                first: 0,
                second: 1
            })
        );
        // For an all-positive-power layout, odd multipliers can never hit a
        // zero remainder (values are Δ·2^i with Δ < m), only collisions:
        let (map, model) = c4b(80);
        let values = enumerate_error_values(&map, &model);
        for m in (1025u64..2048).step_by(2) {
            if let Err(rejection) = validate_multiplier_over(&values, m) {
                assert!(
                    matches!(rejection, MultiplierRejection::Collision { .. }),
                    "m={m}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (map, model) = c4b(80);
        let serial = find_multipliers(
            &map,
            &model,
            11,
            SearchOptions {
                threads: 1,
                limit: 0,
            },
        );
        let parallel = find_multipliers(
            &map,
            &model,
            11,
            SearchOptions {
                threads: 4,
                limit: 0,
            },
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "out of the practical range")]
    fn rejects_huge_widths() {
        let (map, model) = c4b(80);
        let _ = find_multipliers(&map, &model, 31, SearchOptions::default());
    }
}
