//! The Error Lookup Circuit (ELC, paper Section V-A).
//!
//! The ELC maps a nonzero remainder to the unique error value that produced
//! it, together with the owning symbol (used for the overflow/underflow
//! multi-symbol detection of Figure 4). In hardware this is a match-line
//! CAM; in software a dense table indexed by remainder.

use crate::{
    enumerate_error_values, ErrorModel, ErrorValue, ErrorValueInt, MultiplierRejection, SymbolMap,
};

/// One ELC entry: the error value to subtract and the symbol it is confined
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrectionEntry {
    /// The signed error value `e` with `corrupted = original + e`.
    pub error: ErrorValueInt,
    /// Index of the symbol the error is confined to.
    pub symbol: usize,
}

/// Dense remainder → correction lookup.
///
/// # Examples
///
/// ```
/// use muse_core::{Direction, ErrorLookup, ErrorModel, SymbolMap};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = SymbolMap::sequential(144, 4)?;
/// let model = ErrorModel::symbol(Direction::Bidirectional);
/// let elc = ErrorLookup::build(&map, &model, 4065)?;
/// // Section V: the MUSE(144,132) ELC has 1080 entries.
/// assert_eq!(elc.len(), 1080);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ErrorLookup {
    m: u64,
    table: Vec<Option<CorrectionEntry>>,
    entries: usize,
}

impl ErrorLookup {
    /// Builds the lookup for multiplier `m`, validating injectivity in the
    /// process.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiplierRejection`] if `m` is not a valid multiplier
    /// for the layout.
    pub fn build(map: &SymbolMap, model: &ErrorModel, m: u64) -> Result<Self, MultiplierRejection> {
        Self::from_values(&enumerate_error_values(map, model), m)
    }

    /// Builds the lookup from a pre-enumerated error-value list.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiplierRejection`] if `m` is not valid over `values`.
    pub fn from_values(values: &[ErrorValue], m: u64) -> Result<Self, MultiplierRejection> {
        let mut table: Vec<Option<CorrectionEntry>> = vec![None; m as usize];
        let mut first_idx: Vec<u32> = vec![u32::MAX; m as usize];
        for (idx, ev) in values.iter().enumerate() {
            let rem = ev.value.rem_euclid_u64(m);
            if rem == 0 {
                return Err(MultiplierRejection::ZeroRemainder { value_index: idx });
            }
            if table[rem as usize].is_some() {
                return Err(MultiplierRejection::Collision {
                    first: first_idx[rem as usize] as usize,
                    second: idx,
                });
            }
            table[rem as usize] = Some(CorrectionEntry {
                error: ev.value,
                symbol: ev.symbol,
            });
            first_idx[rem as usize] = idx as u32;
        }
        Ok(Self {
            m,
            table,
            entries: values.len(),
        })
    }

    /// The multiplier this lookup was built for.
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// Number of populated entries (= number of correctable error values).
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the lookup has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Looks up the correction for a remainder, or `None` when the remainder
    /// corresponds to no correctable error (a detected multi-symbol error).
    ///
    /// # Panics
    ///
    /// Panics if `remainder >= m`.
    pub fn lookup(&self, remainder: u64) -> Option<&CorrectionEntry> {
        self.table[remainder as usize].as_ref()
    }

    /// Fraction of the remainder space `[1, m)` left unused — the headroom
    /// that powers detection method 1 of Figure 4.
    pub fn unused_remainder_fraction(&self) -> f64 {
        1.0 - self.entries as f64 / (self.m - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn build_144() -> ErrorLookup {
        let map = SymbolMap::sequential(144, 4).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        ErrorLookup::build(&map, &model, 4065).unwrap()
    }

    #[test]
    fn entry_count_matches_paper() {
        // Section V: "the error correction is built around ELC with 1080
        // entries" for MUSE(144,132).
        assert_eq!(build_144().len(), 1080);
        assert!(!build_144().is_empty());
    }

    #[test]
    fn zero_remainder_never_mapped() {
        let elc = build_144();
        assert!(elc.lookup(0).is_none());
    }

    #[test]
    fn every_error_value_roundtrips() {
        let map = SymbolMap::sequential(144, 4).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        let values = enumerate_error_values(&map, &model);
        let elc = ErrorLookup::from_values(&values, 4065).unwrap();
        for ev in &values {
            let rem = ev.value.rem_euclid_u64(4065);
            let entry = elc.lookup(rem).expect("every value has an entry");
            assert_eq!(entry.error, ev.value);
            assert_eq!(entry.symbol, ev.symbol);
        }
    }

    #[test]
    fn invalid_multiplier_rejected() {
        let map = SymbolMap::sequential(144, 4).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        assert!(ErrorLookup::build(&map, &model, 4067).is_err());
    }

    #[test]
    fn unused_fraction() {
        let elc = build_144();
        // 1080 of 4064 nonzero remainders in use.
        let expect = 1.0 - 1080.0 / 4064.0;
        assert!((elc.unused_remainder_fraction() - expect).abs() < 1e-12);
    }
}
