//! Cache-line-granularity encoding: the memory-controller view.
//!
//! Controllers move 64-byte lines, not words: a line is eight 64-bit words,
//! each stored as one codeword, with the per-word spare bits pooled into a
//! single line-level metadata field (Section VI-A pools 8 × 5 bits into a
//! 40-bit hash; Section VII-D stores 16 bits of MTE tags the same way).

use std::fmt;

use crate::{Decoded, MuseCode, Word};

/// Words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 8;

/// Error from [`LineCodec`] construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCodecError {
    /// The word code cannot hold a 64-bit data word.
    PayloadTooNarrow {
        /// The code's payload width.
        k_bits: u32,
    },
    /// A word of the line was uncorrectable.
    Uncorrectable {
        /// Index of the failing word.
        word: usize,
    },
}

impl fmt::Display for LineCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PayloadTooNarrow { k_bits } => {
                write!(f, "code payload of {k_bits} bits cannot hold a 64-bit word")
            }
            Self::Uncorrectable { word } => write!(f, "word {word} uncorrectable"),
        }
    }
}

impl std::error::Error for LineCodecError {}

/// A decoded line: data, pooled metadata, and which devices were corrected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLine {
    /// The eight data words.
    pub data: [u64; WORDS_PER_LINE],
    /// The pooled line metadata.
    pub metadata: u64,
    /// `(word, device)` pairs that needed correction.
    pub corrections: Vec<(usize, usize)>,
}

/// Encodes/decodes whole cache lines over a word-level [`MuseCode`].
///
/// # Examples
///
/// ```
/// use muse_core::{presets, LineCodec};
///
/// # fn main() -> Result<(), muse_core::LineCodecError> {
/// let codec = LineCodec::new(presets::muse_80_69())?;
/// assert_eq!(codec.metadata_bits(), 40); // 8 × 5 spare bits pooled
///
/// let data = [7u64; 8];
/// let mut stored = codec.encode_line(&data, 0xABCD);
/// stored[3].toggle_bit(17); // a fault in word 3
/// let line = codec.decode_line(&stored)?;
/// assert_eq!(line.data, data);
/// assert_eq!(line.metadata, 0xABCD);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LineCodec {
    code: MuseCode,
}

impl LineCodec {
    /// Wraps a word code; it must carry at least 64 payload bits.
    ///
    /// # Errors
    ///
    /// Fails when the code's payload is narrower than a 64-bit word.
    pub fn new(code: MuseCode) -> Result<Self, LineCodecError> {
        if code.k_bits() < 64 {
            return Err(LineCodecError::PayloadTooNarrow {
                k_bits: code.k_bits(),
            });
        }
        Ok(Self { code })
    }

    /// The underlying word code.
    pub fn code(&self) -> &MuseCode {
        &self.code
    }

    /// Pooled metadata capacity per line (8 × the word spare bits, capped
    /// at 64 for the `u64` interface).
    pub fn metadata_bits(&self) -> u32 {
        (self.code.spare_bits() * WORDS_PER_LINE as u32).min(64)
    }

    /// Encodes eight words plus pooled metadata into eight codewords.
    ///
    /// # Panics
    ///
    /// Panics if `metadata` exceeds [`Self::metadata_bits`].
    pub fn encode_line(&self, data: &[u64; WORDS_PER_LINE], metadata: u64) -> Vec<Word> {
        let cap = self.metadata_bits();
        assert!(
            cap == 64 || metadata < (1u64 << cap),
            "metadata exceeds the {cap}-bit line capacity"
        );
        let spare = self.code.spare_bits();
        let mask = if spare >= 64 {
            u64::MAX
        } else {
            (1u64 << spare) - 1
        };
        (0..WORDS_PER_LINE)
            .map(|i| {
                let slice = if spare == 0 {
                    0
                } else {
                    metadata.checked_shr(spare * i as u32).unwrap_or(0) & mask
                };
                self.code.encode(&self.code.pack_metadata(data[i], slice))
            })
            .collect()
    }

    /// Decodes eight stored codewords back into a line.
    ///
    /// # Errors
    ///
    /// Returns [`LineCodecError::Uncorrectable`] on the first word whose
    /// decode fails.
    ///
    /// # Panics
    ///
    /// Panics if `stored` does not hold exactly eight words.
    pub fn decode_line(&self, stored: &[Word]) -> Result<DecodedLine, LineCodecError> {
        assert_eq!(stored.len(), WORDS_PER_LINE, "a line is eight codewords");
        let spare = self.code.spare_bits();
        let mut data = [0u64; WORDS_PER_LINE];
        let mut metadata = 0u64;
        let mut corrections = Vec::new();
        for (i, cw) in stored.iter().enumerate() {
            let payload = match self.code.decode(cw) {
                Decoded::Detected => return Err(LineCodecError::Uncorrectable { word: i }),
                Decoded::Clean { payload } => payload,
                Decoded::Corrected {
                    payload, symbol, ..
                } => {
                    corrections.push((i, symbol));
                    payload
                }
            };
            let (word, meta) = self.code.unpack_metadata(&payload);
            data[i] = word;
            if spare > 0 && spare * (i as u32) < 64 {
                metadata |= meta << (spare * i as u32);
            }
        }
        Ok(DecodedLine {
            data,
            metadata,
            corrections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn codec() -> LineCodec {
        LineCodec::new(presets::muse_80_69()).unwrap()
    }

    #[test]
    fn capacity_accounting() {
        assert_eq!(codec().metadata_bits(), 40);
        assert_eq!(
            LineCodec::new(presets::muse_80_67())
                .unwrap()
                .metadata_bits(),
            24
        );
        assert_eq!(
            LineCodec::new(presets::muse_80_70())
                .unwrap()
                .metadata_bits(),
            48
        );
        assert!(matches!(
            LineCodec::new(
                crate::CodeBuilder::new(48)
                    .redundancy_bits(11)
                    .build()
                    .unwrap()
            ),
            Err(LineCodecError::PayloadTooNarrow { .. })
        ));
    }

    #[test]
    fn clean_roundtrip_with_metadata() {
        let codec = codec();
        let data = [1, 2, 3, 4, 5, 6, 7, u64::MAX];
        let meta = 0xAB_CDEF_0123u64; // 40 bits
        let stored = codec.encode_line(&data, meta);
        let line = codec.decode_line(&stored).unwrap();
        assert_eq!(line.data, data);
        assert_eq!(line.metadata, meta);
        assert!(line.corrections.is_empty());
    }

    #[test]
    fn corrections_reported_per_word() {
        let codec = codec();
        let data = [9u64; 8];
        let mut stored = codec.encode_line(&data, 0x1F);
        stored[2] = stored[2] ^ *codec.code().symbol_map().mask(5);
        stored[6] = stored[6] ^ *codec.code().symbol_map().mask(0);
        let line = codec.decode_line(&stored).unwrap();
        assert_eq!(line.data, data);
        assert_eq!(line.metadata, 0x1F);
        assert_eq!(line.corrections, vec![(2, 5), (6, 0)]);
    }

    #[test]
    fn uncorrectable_word_reported() {
        let codec = codec();
        let mut stored = codec.encode_line(&[0u64; 8], 0);
        stored[4] =
            stored[4] ^ *codec.code().symbol_map().mask(1) ^ *codec.code().symbol_map().mask(8);
        match codec.decode_line(&stored) {
            Err(LineCodecError::Uncorrectable { word: 4 }) => {}
            other => {
                // A miscorrection is also possible for 2-device errors; it
                // must at least not return the original data silently.
                let line = other.expect("either uncorrectable or miscorrected");
                assert_ne!(line.data, [0u64; 8]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "metadata exceeds")]
    fn oversized_metadata_panics() {
        let _ = codec().encode_line(&[0u64; 8], 1 << 41);
    }

    #[test]
    fn mte_tags_fit_with_room_for_hash() {
        // Section VII-D: 16 tag bits per line; MUSE(80,69) pools 40 —
        // tags plus a 24-bit integrity hash fit together.
        let codec = codec();
        let tags = 0xBEEFu64;
        let hash = 0x123456u64;
        let meta = tags | (hash << 16);
        let stored = codec.encode_line(&[42u64; 8], meta);
        let line = codec.decode_line(&stored).unwrap();
        assert_eq!(line.metadata & 0xFFFF, tags);
        assert_eq!(line.metadata >> 16, hash);
    }
}
