//! Enumeration of the signed error values a code layout must disambiguate
//! (paper Sections II–III).
//!
//! An error flipping bits `P⁺` from 0→1 and `P⁻` from 1→0 changes the
//! codeword by `e = Σ_{i∈P⁺} 2^i − Σ_{i∈P⁻} 2^i`. Correction only needs the
//! *value* `e` (the fix is `codeword − e`), so enumeration deduplicates
//! distinct flip patterns that produce the same value (e.g. `+2^{a+1} − 2^a`
//! and `+2^a` inside one contiguous symbol).
//!
//! Because every signed power-of-two representation of a value shares its
//! lowest set bit, a value can only arise within the single symbol owning
//! that bit — so each distinct value has a well-defined owning symbol.

use std::collections::HashMap;

use muse_wideint::SignedWide;

use crate::{ErrorModel, ErrorTerm, ErrorValueInt, SymbolMap};

/// A distinct error value together with the symbol able to produce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorValue {
    /// The signed change to the codeword.
    pub value: ErrorValueInt,
    /// Index of the owning symbol in the [`SymbolMap`].
    pub symbol: usize,
}

/// Enumerates the distinct error values of `model` over `map`.
///
/// The result is sorted by magnitude (ascending), then by sign, so it is
/// deterministic across runs.
///
/// # Examples
///
/// ```
/// use muse_core::{enumerate_error_values, Direction, ErrorModel, SymbolMap};
///
/// # fn main() -> Result<(), muse_core::SymbolMapError> {
/// // A contiguous 4-bit symbol has 2·(2^4−1) = 30 distinct values;
/// // the paper's MUSE(144,132) has 36 such symbols -> 1080 ELC entries.
/// let map = SymbolMap::sequential(144, 4)?;
/// let model = ErrorModel::symbol(Direction::Bidirectional);
/// assert_eq!(enumerate_error_values(&map, &model).len(), 1080);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_error_values(map: &SymbolMap, model: &ErrorModel) -> Vec<ErrorValue> {
    let mut seen: HashMap<ErrorValueInt, usize> = HashMap::new();
    for term in model.terms() {
        match term {
            ErrorTerm::Symbol(direction) => {
                for sym in 0..map.num_symbols() {
                    for value in symbol_error_values(map.bits_of(sym), *direction) {
                        record(&mut seen, value, sym);
                    }
                }
            }
            ErrorTerm::SingleBit(direction) => {
                for bit in 0..map.n_bits() {
                    let sym = map.symbol_of_bit(bit);
                    if direction.allows_rising() {
                        record(&mut seen, SignedWide::from_bit(bit, true), sym);
                    }
                    if direction.allows_falling() {
                        record(&mut seen, SignedWide::from_bit(bit, false), sym);
                    }
                }
            }
        }
    }
    let mut out: Vec<ErrorValue> = seen
        .into_iter()
        .map(|(value, symbol)| ErrorValue { value, symbol })
        .collect();
    out.sort_by_key(|a| a.value);
    out
}

fn record(seen: &mut HashMap<ErrorValueInt, usize>, value: ErrorValueInt, symbol: usize) {
    let prev = seen.insert(value, symbol);
    // Disjoint symbols cannot produce the same value (shared lowest set bit),
    // so any duplicate must come from the same symbol.
    debug_assert!(prev.is_none() || prev == Some(symbol));
}

/// All distinct signed error values producible by flips within one symbol.
///
/// Bidirectional symbols enumerate every sign assignment over every
/// non-empty subset of the symbol's bits (up to `3^s − 1` combinations,
/// fewer distinct values when bits are adjacent); asymmetric directions
/// enumerate the `2^s − 1` single-sign subsets.
pub fn symbol_error_values(bits: &[u32], direction: crate::Direction) -> Vec<ErrorValueInt> {
    let s = bits.len();
    assert!(s <= 20, "symbol size {s} unreasonably large");
    let mut out = Vec::new();
    if direction == crate::Direction::Bidirectional {
        // Ternary counter: digit 0 = no flip, 1 = rising (+), 2 = falling (−).
        let mut digits = vec![0u8; s];
        loop {
            // Increment base-3.
            let mut i = 0;
            loop {
                if i == s {
                    return dedup_sorted(out);
                }
                digits[i] += 1;
                if digits[i] < 3 {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
            let mut value = ErrorValueInt::ZERO;
            for (d, &bit) in digits.iter().zip(bits) {
                match d {
                    1 => value = value + SignedWide::from_bit(bit, true),
                    2 => value = value + SignedWide::from_bit(bit, false),
                    _ => {}
                }
            }
            out.push(value);
        }
    } else {
        let rising = direction.allows_rising();
        for pattern in 1u32..(1 << s) {
            let mut value = ErrorValueInt::ZERO;
            for (i, &bit) in bits.iter().enumerate() {
                if pattern >> i & 1 == 1 {
                    value = value + SignedWide::from_bit(bit, rising);
                }
            }
            out.push(value);
        }
        dedup_sorted(out)
    }
}

fn dedup_sorted(mut values: Vec<ErrorValueInt>) -> Vec<ErrorValueInt> {
    values.sort();
    values.dedup();
    values
}

/// Counts error-value magnitudes per power-of-two bin: entry `b` is the
/// number of distinct *positive* error values `v` with `⌊log2 v⌋ = b`.
///
/// This regenerates the data behind Figure 1(b), which plots the error-value
/// distribution of MUSE(80,69) with sequential vs shuffled bit assignment
/// (positive values only, matching the paper's convention).
pub fn positive_value_histogram(map: &SymbolMap, model: &ErrorModel) -> Vec<u32> {
    let mut bins = vec![0u32; map.n_bits() as usize];
    for ev in enumerate_error_values(map, model) {
        if !ev.value.is_negative() && !ev.value.is_zero() {
            let bin = (ev.value.magnitude().bit_len() - 1) as usize;
            bins[bin] += 1;
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Direction;

    fn values_i128(bits: &[u32], dir: Direction) -> Vec<i128> {
        symbol_error_values(bits, dir)
            .iter()
            .map(|v| v.to_i128().unwrap())
            .collect()
    }

    #[test]
    fn contiguous_symbol_collapses_to_30() {
        // Paper III-A: a contiguous 4-bit symbol has 2·(2^4−1) = 30 distinct
        // error values even though there are 3^4−1 = 80 flip patterns.
        let vals = values_i128(&[0, 1, 2, 3], Direction::Bidirectional);
        assert_eq!(vals.len(), 30);
        let expect: Vec<i128> = (-15..=15).filter(|&v| v != 0).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn offset_symbol_scales_values() {
        let vals = values_i128(&[4, 5, 6, 7], Direction::Bidirectional);
        let expect: Vec<i128> = (-15..=15).filter(|&v| v != 0).map(|v| v * 16).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn spread_symbol_keeps_all_ternary_values() {
        // Non-adjacent bits -> all 3^s − 1 sign patterns are distinct values.
        let vals = values_i128(&[0, 10], Direction::Bidirectional);
        assert_eq!(vals.len(), 8); // 3^2 − 1
        let expect: Vec<i128> = vec![-1025, -1024, -1023, -1, 1, 1023, 1024, 1025];
        assert_eq!(vals, expect);
    }

    #[test]
    fn paper_figure1_toy_example() {
        // Fig. 1(a): 4-bit codeword, x2 devices. Sequential: symbol {b0,b1}
        // has positive values 1, 2, 3; shuffled symbol {b0,b3} has 1, 7, 8, 9.
        let seq = values_i128(&[0, 1], Direction::Bidirectional);
        let pos: Vec<i128> = seq.into_iter().filter(|v| *v > 0).collect();
        assert_eq!(pos, vec![1, 2, 3]);
        let shuf = values_i128(&[0, 3], Direction::Bidirectional);
        let pos: Vec<i128> = shuf.into_iter().filter(|v| *v > 0).collect();
        assert_eq!(pos, vec![1, 7, 8, 9]);
    }

    #[test]
    fn asymmetric_values_all_negative() {
        let vals = values_i128(&[0, 1, 2, 3], Direction::OneToZero);
        assert_eq!(vals.len(), 15);
        assert!(vals.iter().all(|&v| v < 0));
        assert_eq!(vals.first(), Some(&-15));
        assert_eq!(vals.last(), Some(&-1));
    }

    #[test]
    fn zero_to_one_values_all_positive() {
        let vals = values_i128(&[2, 5], Direction::ZeroToOne);
        assert_eq!(vals, vec![4, 32, 36]);
    }

    #[test]
    fn full_code_counts() {
        let map = SymbolMap::sequential(80, 4).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        assert_eq!(enumerate_error_values(&map, &model).len(), 20 * 30);

        // Eq.5 shuffle, asymmetric 8-bit symbols: 10 × (2^8 − 1).
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let model = ErrorModel::symbol(Direction::OneToZero);
        assert_eq!(enumerate_error_values(&map, &model).len(), 10 * 255);
    }

    #[test]
    fn hybrid_count_matches_dedup() {
        // Eq.6: 20 asymmetric 4-bit symbols (20×15 = 300 negative values) plus
        // 160 single-bit values, of which the 80 negative ones are duplicates.
        let map = SymbolMap::eq6_hybrid_80();
        let model = ErrorModel::hybrid_symbol_plus_single_bit();
        let values = enumerate_error_values(&map, &model);
        assert_eq!(values.len(), 300 + 80);
        let positives = values.iter().filter(|v| !v.value.is_negative()).count();
        assert_eq!(positives, 80);
    }

    #[test]
    fn symbol_attribution_follows_lowest_bit() {
        let map = SymbolMap::interleaved(80, 10).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        for ev in enumerate_error_values(&map, &model) {
            let low_bit = ev.value.magnitude().trailing_zeros();
            assert_eq!(map.symbol_of_bit(low_bit), ev.symbol);
        }
    }

    #[test]
    fn histogram_sums_to_positive_count() {
        let map = SymbolMap::sequential(80, 4).unwrap();
        let model = ErrorModel::symbol(Direction::Bidirectional);
        let hist = positive_value_histogram(&map, &model);
        let total: u32 = hist.iter().sum();
        assert_eq!(total, 20 * 15); // positive half of 20×30
    }
}
