//! Fluent construction of MUSE codes, with integrated multiplier search —
//! the "design a code for *your* DIMM" workflow of Section VII-E.

use crate::{
    find_multipliers, CodeError, Direction, ErrorModel, ErrorTerm, MuseCode, SearchOptions,
    SymbolMap, SymbolMapError,
};

/// How codeword bits are assigned to device symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Shuffle {
    /// Symbol `i` holds the contiguous bits `[s·i, s·(i+1))`.
    #[default]
    Sequential,
    /// Bit `j` belongs to symbol `j mod num_symbols` (the Eq. 5 family).
    Interleaved,
}

/// Error building a code from a [`CodeBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested layout is not a valid partition.
    Layout(SymbolMapError),
    /// The search found no multiplier of the requested width.
    NoMultiplier {
        /// The redundancy width searched.
        redundancy_bits: u32,
    },
    /// A supplied multiplier failed validation.
    Code(CodeError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "layout error: {e}"),
            Self::NoMultiplier { redundancy_bits } => {
                write!(
                    f,
                    "no valid {redundancy_bits}-bit multiplier exists for this layout"
                )
            }
            Self::Code(e) => write!(f, "code error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SymbolMapError> for BuildError {
    fn from(e: SymbolMapError) -> Self {
        Self::Layout(e)
    }
}

impl From<CodeError> for BuildError {
    fn from(e: CodeError) -> Self {
        Self::Code(e)
    }
}

/// Builder for [`MuseCode`]s: pick a geometry and error model, then either
/// supply a known multiplier or let the builder run Algorithm 1.
///
/// # Examples
///
/// Design a ChipKill code for a hypothetical 72-bit x4 channel:
///
/// ```
/// use muse_core::CodeBuilder;
///
/// # fn main() -> Result<(), muse_core::BuildError> {
/// let code = CodeBuilder::new(72)
///     .symbol_bits(4)
///     .redundancy_bits(12)
///     .build()?;
/// assert_eq!(code.k_bits(), 60);
/// assert_eq!(code.class_name(), "C4B");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodeBuilder {
    n_bits: u32,
    symbol_bits: u32,
    shuffle: Shuffle,
    direction: Direction,
    single_bit: Option<Direction>,
    redundancy_bits: u32,
    multiplier: Option<u64>,
    search: SearchOptions,
}

impl CodeBuilder {
    /// Starts a builder for an `n_bits`-wide codeword.
    ///
    /// Defaults: 4-bit symbols, sequential assignment, bidirectional
    /// errors, 12 redundancy bits, multiplier found by search (largest).
    pub fn new(n_bits: u32) -> Self {
        Self {
            n_bits,
            symbol_bits: 4,
            shuffle: Shuffle::Sequential,
            direction: Direction::Bidirectional,
            single_bit: None,
            redundancy_bits: 12,
            multiplier: None,
            search: SearchOptions::default(),
        }
    }

    /// Device (symbol) width in bits.
    pub fn symbol_bits(mut self, bits: u32) -> Self {
        self.symbol_bits = bits;
        self
    }

    /// Bit-to-symbol assignment.
    pub fn shuffle(mut self, shuffle: Shuffle) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Symbol-error direction (`Bidirectional` = `B`, `OneToZero` = `A`).
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Additionally cover single-bit errors of the given direction
    /// (hybrid codes like `C4A_U1B`).
    pub fn with_single_bit_errors(mut self, direction: Direction) -> Self {
        self.single_bit = Some(direction);
        self
    }

    /// Redundancy budget in bits (the multiplier width to search).
    pub fn redundancy_bits(mut self, bits: u32) -> Self {
        self.redundancy_bits = bits;
        self
    }

    /// Uses a known multiplier instead of searching.
    pub fn multiplier(mut self, m: u64) -> Self {
        self.multiplier = Some(m);
        self
    }

    /// Search options (threads, limit) when no multiplier is supplied.
    pub fn search_options(mut self, options: SearchOptions) -> Self {
        self.search = options;
        self
    }

    /// The symbol map this builder describes.
    ///
    /// # Errors
    ///
    /// Fails if the geometry is not a valid partition.
    pub fn layout(&self) -> Result<SymbolMap, SymbolMapError> {
        match self.shuffle {
            Shuffle::Sequential => SymbolMap::sequential(self.n_bits, self.symbol_bits),
            Shuffle::Interleaved => {
                SymbolMap::interleaved(self.n_bits, self.n_bits / self.symbol_bits)
            }
        }
    }

    /// The error model this builder describes.
    pub fn model(&self) -> ErrorModel {
        let mut terms = vec![ErrorTerm::Symbol(self.direction)];
        if let Some(d) = self.single_bit {
            terms.push(ErrorTerm::SingleBit(d));
        }
        ErrorModel::from_terms(terms)
    }

    /// Builds the code, running the multiplier search when needed (the
    /// *largest* found multiplier is used, maximizing detection headroom).
    ///
    /// # Errors
    ///
    /// Fails on an invalid layout, an exhausted search, or an invalid
    /// supplied multiplier.
    pub fn build(&self) -> Result<MuseCode, BuildError> {
        let map = self.layout()?;
        let model = self.model();
        let m = match self.multiplier {
            Some(m) => m,
            None => *find_multipliers(&map, &model, self.redundancy_bits, self.search)
                .last()
                .ok_or(BuildError::NoMultiplier {
                    redundancy_bits: self.redundancy_bits,
                })?,
        };
        Ok(MuseCode::new(map, model, m)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reproduces_presets() {
        let code = CodeBuilder::new(144)
            .symbol_bits(4)
            .redundancy_bits(12)
            .build()
            .unwrap();
        assert_eq!(code.multiplier(), 4065); // largest of the 25
        assert_eq!(code.name(), "MUSE(144,132)");

        let code = CodeBuilder::new(80)
            .symbol_bits(8)
            .shuffle(Shuffle::Interleaved)
            .direction(Direction::OneToZero)
            .redundancy_bits(13)
            .build()
            .unwrap();
        assert_eq!(code.multiplier(), 5621);
    }

    #[test]
    fn builder_with_explicit_multiplier_skips_search() {
        let code = CodeBuilder::new(80)
            .multiplier(2005)
            .redundancy_bits(11)
            .build()
            .unwrap();
        assert_eq!(code.name(), "MUSE(80,69)");
    }

    #[test]
    fn builder_rejects_exhausted_search() {
        let err = CodeBuilder::new(144)
            .redundancy_bits(10)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::NoMultiplier {
                redundancy_bits: 10
            }
        );
    }

    #[test]
    fn builder_rejects_bad_layout() {
        assert!(matches!(
            CodeBuilder::new(80).symbol_bits(3).build(),
            Err(BuildError::Layout(_))
        ));
    }

    #[test]
    fn builder_rejects_bad_multiplier() {
        assert!(matches!(
            CodeBuilder::new(80).multiplier(2007).build(),
            Err(BuildError::Code(_))
        ));
    }

    #[test]
    fn custom_channel_width() {
        // A 48-bit x2 channel with 2-bit devices and single-bit coverage.
        let code = CodeBuilder::new(48)
            .symbol_bits(2)
            .direction(Direction::OneToZero)
            .with_single_bit_errors(Direction::Bidirectional)
            .redundancy_bits(8)
            .build()
            .unwrap();
        assert_eq!(code.class_name(), "C2A_U1B");
        let payload = crate::Word::mask(40);
        let cw = code.encode(&payload);
        let mut corrupted = cw;
        corrupted.toggle_bit(17);
        assert_eq!(code.decode(&corrupted).payload(), Some(payload));
    }
}
