//! Static analysis of a constructed code: remainder-space occupancy,
//! detection headroom, and aliasing structure.
//!
//! Section VII-A observes that detection strength comes from *unused*
//! remainders: a larger multiplier leaves more of the remainder space
//! unmapped, so more multi-symbol errors land outside the ELC and are
//! flagged. These utilities quantify that headroom for any code.

use crate::{Decoded, MuseCode, Word};

/// Summary of a code's remainder-space structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemainderProfile {
    /// The multiplier (remainder space is `[0, m)`).
    pub multiplier: u64,
    /// Populated ELC entries (= distinct correctable error values).
    pub used: usize,
    /// Unused nonzero remainders — the detection headroom.
    pub unused: u64,
    /// `unused / (m − 1)`: the first-order probability that a uniformly
    /// aliasing multi-symbol error is detected by ELC miss alone.
    pub headroom: f64,
}

/// Computes the remainder occupancy profile of a code.
pub fn remainder_profile(code: &MuseCode) -> RemainderProfile {
    let m = code.multiplier();
    let used = code.elc().len();
    RemainderProfile {
        multiplier: m,
        used,
        unused: (m - 1) - used as u64,
        headroom: code.elc().unused_remainder_fraction(),
    }
}

/// First-order analytic MSED estimate: the probability that a random
/// multi-symbol error misses the ELC, assuming its remainder is uniform
/// over `[0, m)`. The Monte-Carlo simulator
/// ([`muse_faultsim`](https://docs.rs/muse-faultsim)) measures the true
/// rate; this closed form explains the Table IV trend (larger `m` ⇒ more
/// headroom ⇒ higher detection).
pub fn analytic_msed_estimate(code: &MuseCode) -> f64 {
    100.0 * remainder_profile(code).headroom
}

/// Exhaustive single-symbol coverage check: decodes every possible
/// in-model error of every symbol against a fixed payload and confirms
/// correction. Returns the number of error patterns verified.
///
/// This is the code-level proof obligation behind the ChipKill claim; it
/// is fast enough to run as a test for every preset (≤ a few thousand
/// patterns).
pub fn verify_single_symbol_coverage(code: &MuseCode, payload: &Word) -> Result<usize, String> {
    let cw = code.encode(payload);
    let mut verified = 0;
    for ev in crate::enumerate_error_values(code.symbol_map(), code.error_model()) {
        let corrupted = ev.value.apply_to(&cw);
        if corrupted.bit_len() > code.n_bits() {
            // This payload cannot physically produce the error (e.g. a 1→0
            // flip of a bit that stores 0); skip.
            continue;
        }
        // Only apply physically consistent errors: every +2^i flip needs a
        // stored 0, every −2^i a stored 1. `apply_to` already encodes the
        // arithmetic; consistency shows up as the XOR being symbol-confined.
        let diff = corrupted ^ cw;
        if !(diff & !*code.symbol_map().mask(ev.symbol)).is_zero() {
            continue; // carried out of the symbol: not a realizable flip set
        }
        if diff.is_zero() {
            continue;
        }
        match code.decode(&corrupted) {
            Decoded::Corrected {
                payload: p, symbol, ..
            } => {
                if p != *payload {
                    return Err(format!("error {} miscorrected", ev.value));
                }
                if symbol != ev.symbol {
                    return Err(format!("error {} attributed to wrong symbol", ev.value));
                }
                verified += 1;
            }
            other => return Err(format!("error {} decoded as {other:?}", ev.value)),
        }
    }
    Ok(verified)
}

/// The distribution of ELC entries per symbol — shuffled codes spread
/// their correctable values across symbols evenly.
pub fn entries_per_symbol(code: &MuseCode) -> Vec<usize> {
    let mut counts = vec![0usize; code.symbol_map().num_symbols()];
    for ev in crate::enumerate_error_values(code.symbol_map(), code.error_model()) {
        counts[ev.symbol] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn profile_of_the_paper_codes() {
        let p = remainder_profile(&presets::muse_144_132());
        assert_eq!(p.multiplier, 4065);
        assert_eq!(p.used, 1080);
        assert_eq!(p.unused, 4064 - 1080);

        // Larger multiplier, same error count, more headroom.
        let big = remainder_profile(&presets::muse_144_128());
        assert_eq!(big.used, 1080);
        assert!(big.headroom > p.headroom);
    }

    #[test]
    fn analytic_estimate_tracks_table4_ordering() {
        // The analytic estimate reproduces the Table IV ordering
        // (98.4% vs 73.4% headroom for m = 65519 vs 4065).
        let small = analytic_msed_estimate(&presets::muse_144_132());
        let big = analytic_msed_estimate(&presets::muse_144_128());
        assert!(big > 95.0 && small > 70.0 && big > small);
    }

    #[test]
    fn coverage_proof_for_every_preset() {
        for code in presets::table1() {
            let payload = Word::mask(code.k_bits()) ^ (Word::from(0xA5u64) << 8);
            let verified = verify_single_symbol_coverage(&code, &payload)
                .unwrap_or_else(|e| panic!("{}: {e}", code.name()));
            assert!(verified > 0, "{}", code.name());
        }
    }

    #[test]
    fn entries_split_evenly_for_uniform_codes() {
        let counts = entries_per_symbol(&presets::muse_144_132());
        assert_eq!(counts.len(), 36);
        assert!(
            counts.iter().all(|&c| c == 30),
            "contiguous 4-bit symbols: 30 each"
        );

        let counts = entries_per_symbol(&presets::muse_80_67());
        assert_eq!(counts.len(), 10);
        assert!(
            counts.iter().all(|&c| c == 255),
            "asym 8-bit symbols: 255 each"
        );
    }

    #[test]
    fn hybrid_entries_include_single_bit_extras() {
        let counts = entries_per_symbol(&presets::muse_80_70());
        assert_eq!(counts.iter().sum::<usize>(), 380); // 300 + 80 positives
    }
}
