//! Runs every experiment binary in sequence (the full reproduction pass).
//!
//! `cargo run --release -p muse-bench --bin repro_all`

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1",
        "appendix_search",
        "fig1b",
        "table3",
        "table4",
        "table5",
        "fig6",
        "fig7",
        "pim",
        "rowhammer",
        "fit",
        "ablation",
        "ondie",
    ];
    for bin in bins {
        println!("\n######## {bin} ########");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
