//! Appendix F: the full multiplier lists produced by the Algorithm 1 search,
//! checked against the artifact's expected results (including the negative
//! results of Appendix G — no multipliers without shuffling).

use muse_core::{find_multipliers, Direction, ErrorModel, SearchOptions, SymbolMap};

fn check(name: &str, found: &[u64], expected: &[u64]) {
    let verdict = if found == expected { "MATCH" } else { "DIFFER" };
    println!("\n{name}: [{verdict}]");
    println!("  paper: {expected:?}");
    println!("  found: {found:?}");
}

fn main() {
    let bidir = ErrorModel::symbol(Direction::Bidirectional);
    let asym = ErrorModel::symbol(Direction::OneToZero);
    let hybrid = ErrorModel::hybrid_symbol_plus_single_bit();
    let opts = SearchOptions::default();

    // 144-bit codewords, 12-bit redundancy, 4-bit symbols.
    let found = find_multipliers(
        &SymbolMap::sequential(144, 4).expect("layout"),
        &bidir,
        12,
        opts,
    );
    check(
        "144b / 12-bit / 4-bit symbols",
        &found,
        &[
            2397, 2883, 2967, 3009, 3259, 3295, 3371, 3417, 3431, 3459, 3469, 3505, 3523, 3531,
            3551, 3555, 3621, 3679, 3739, 3857, 3909, 3995, 4017, 4043, 4065,
        ],
    );

    // 80-bit codewords, 11-bit redundancy, 4-bit symbols.
    let found = find_multipliers(
        &SymbolMap::sequential(80, 4).expect("layout"),
        &bidir,
        11,
        opts,
    );
    check(
        "80b / 11-bit / 4-bit symbols",
        &found,
        &[1491, 1721, 1763, 1833, 1875, 1899, 1955, 2005],
    );

    // 80-bit codewords, 13-bit redundancy, asymmetric 8-bit symbols, Eq. 5.
    let found = find_multipliers(
        &SymbolMap::interleaved(80, 10).expect("layout"),
        &asym,
        13,
        opts,
    );
    check(
        "80b / 13-bit / asym 8-bit symbols / shuffled",
        &found,
        &[5621],
    );

    // 80-bit codewords, 10-bit redundancy, hybrid, Eq. 6.
    let found = find_multipliers(&SymbolMap::eq6_hybrid_80(), &hybrid, 10, opts);
    check("80b / 10-bit / C4A_U1B / shuffled", &found, &[821]);

    // Appendix G: without shuffling those searches come up empty.
    let none = find_multipliers(
        &SymbolMap::sequential(80, 8).expect("layout"),
        &asym,
        13,
        opts,
    );
    check(
        "80b / 13-bit / asym 8-bit / NO shuffle (expect none)",
        &none,
        &[],
    );
    let none = find_multipliers(
        &SymbolMap::sequential(80, 4).expect("layout"),
        &hybrid,
        10,
        opts,
    );
    check(
        "80b / 10-bit / hybrid / NO shuffle (expect none)",
        &none,
        &[],
    );
}
