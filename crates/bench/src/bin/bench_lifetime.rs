//! Machine-readable fleet-lifetime performance + rate snapshot.
//!
//! Measures the lifetime simulator's throughput (DIMM-epochs/sec and
//! erasure-mode classifications/sec) on an erasure-heavy configuration
//! with a worker-count sweep (1, 2, 4, … up to the core count), the
//! checkpoint overhead of the crash-safe sharded runner (plain vs
//! checkpointed vs resumed-from-half), runs the full scenario matrix at
//! the default fleet configuration — once with the naive estimator and
//! once with importance sampling — and writes `BENCH_lifetime.json`
//! (schema `lifetime-bench/v4`, field reference in the `muse-bench`
//! crate docs). Every scenario row carries its estimator, 95% confidence
//! intervals, and a rendered rate string that reports zero observed
//! events as the rule-of-three upper bound rather than a bare zero.
//!
//! Single-core honesty: a 1-core "all threads" leg is the serial path
//! re-timed with jitter, so on such hosts the throughput rows carry one
//! canonical `one_thread` measurement (no `all_threads` object) and the
//! sweep rows beyond 1 worker are explicit `"skipped_single_core": true`
//! markers.
//!
//! Usage:
//!
//! * `cargo run --release -p muse-bench --bin bench_lifetime` — full
//!   snapshot.
//! * `... -- --smoke` — CI mode: the small fixed-seed fleet of
//!   [`muse_lifetime::smoke_setup`] is run and its tallies asserted
//!   against [`muse_lifetime::smoke_expected`] (the same pins
//!   `crates/lifetime/tests/regression.rs` checks), then a reduced
//!   snapshot is written. Exits nonzero on any drift.

use std::time::Instant;

use muse_lifetime::{
    run_sharded, scenario_codes, simulate_fleet, smoke_setup, verify_smoke, Environment, Estimator,
    FleetCode, FleetConfig, LifetimeReport, RunnerConfig,
};

/// Best-of-3 wall-clock seconds for one run.
fn measure(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Sweep points 1, 2, 4, … up to the core count (which is appended when
/// not itself a power of two). A 1-core host keeps the canonical
/// [1, 2, 4] shape so consumers always see the same rows; the >1 entries
/// are emitted as `skipped_single_core` markers.
fn sweep_points(logical_cores: usize) -> Vec<usize> {
    let cap = logical_cores.max(4);
    let mut points = Vec::new();
    let mut t = 1;
    while t <= cap {
        points.push(t);
        t *= 2;
    }
    if logical_cores > 1 && !points.contains(&logical_cores) {
        points.push(logical_cores);
        points.sort_unstable();
    }
    if logical_cores > 1 {
        points.retain(|&p| p <= logical_cores);
    }
    points
}

/// The erasure-heavy throughput configuration: every DIMM starts degraded
/// and transient pressure is cranked so nearly every epoch classifies
/// reads through the erasure decoder.
fn throughput_setup() -> (Environment, FleetConfig) {
    (
        Environment {
            name: "erasure-throughput",
            transient_fit_per_device: 5.0e7,
            permanent_scale: [0.0, 0.0, 0.0],
            asymmetric_transients: false,
        },
        FleetConfig {
            dimms: 256,
            years: 5.0,
            scrub_interval_hours: 168.0,
            initial_failed_devices: 1,
            spares_per_dimm: 0,
            seed: 0xBEAC,
            ..FleetConfig::default()
        },
    )
}

fn scenario_json(r: &LifetimeReport) -> String {
    format!(
        concat!(
            "    {{\"code\": \"{}\", \"environment\": \"{}\", ",
            "\"machine_years\": {:.1}, ",
            "\"estimator\": \"{}\", \"bias\": {}, ",
            "\"due_per_machine_year\": {:.6e}, \"due_events\": {}, ",
            "\"due_ci95\": [{:.6e}, {:.6e}], \"due_display\": \"{}\", ",
            "\"sdc_per_machine_year\": {:.6e}, \"sdc_events\": {}, ",
            "\"sdc_ci95\": [{:.6e}, {:.6e}], \"sdc_display\": \"{}\", ",
            "\"repairs_per_machine_year\": {:.6}, \"degraded_fraction\": {:.6}, ",
            "\"erasure_reads\": {}, \"data_loss_events\": {}}}"
        ),
        r.code,
        r.environment,
        r.machine_years,
        r.estimator.name(),
        r.estimator.bias(),
        r.due_estimate.mean,
        r.due_estimate.events,
        r.due_estimate.lo,
        r.due_estimate.hi,
        r.due_estimate.render(),
        r.sdc_estimate.mean,
        r.sdc_estimate.events,
        r.sdc_estimate.lo,
        r.sdc_estimate.hi,
        r.sdc_estimate.render(),
        r.repairs_per_machine_year,
        r.degraded_fraction,
        r.tally.erasure_reads,
        r.tally.data_loss_events,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());

    if smoke {
        // Assert the pinned smoke tallies (the single source of truth
        // shared with crates/lifetime/tests/regression.rs).
        let (env, config) = smoke_setup();
        let reports: Vec<_> = scenario_codes()
            .iter()
            .map(|code| simulate_fleet(code, &env, &config))
            .collect();
        if let Err(drift) = verify_smoke(&reports) {
            panic!("pinned smoke tally drifted: {drift}");
        }
        println!(
            "smoke tallies match the pins for all {} codes",
            reports.len()
        );
    }

    let single_core = threads_available == 1;

    // Throughput: erasure-heavy fleet, MUSE and RS. One canonical serial
    // measurement per code; the parallel leg only exists on multi-core
    // hosts. The first code additionally gets the worker-count sweep.
    let (thr_env, thr_config) = throughput_setup();
    let thr_codes = [
        FleetCode::muse(muse_core::presets::muse_80_69()),
        FleetCode::rs(muse_rs::RsMemoryCode::new(8, 144, 1).expect("geometry"), 4),
    ];
    let mut throughput_rows = Vec::new();
    let mut sweep_rows = Vec::new();
    for (idx, code) in thr_codes.iter().enumerate() {
        let run = |threads: usize| {
            let config = FleetConfig {
                threads,
                dimms: if smoke { 32 } else { thr_config.dimms },
                ..thr_config
            };
            let mut tally = Default::default();
            let secs = measure(|| {
                tally = simulate_fleet(code, &thr_env, &config).tally;
            });
            (secs, tally)
        };
        let (secs_one, tally) = run(1);
        let epochs = tally.epochs as f64;
        let reads = tally.erasure_reads as f64;
        println!(
            "{:<18} {:>12.0} epochs/s {:>12.0} erasure-reads/s (1 thread; {} reads)",
            code.name(),
            epochs / secs_one,
            reads / secs_one,
            tally.erasure_reads,
        );
        let mut row = format!(
            concat!(
                "    {{\"code\": \"{}\", \"epochs\": {}, \"erasure_reads\": {}, ",
                "\"one_thread\": {{\"seconds\": {:.6}, \"epochs_per_sec\": {:.0}, ",
                "\"erasure_reads_per_sec\": {:.0}}}"
            ),
            code.name(),
            tally.epochs,
            tally.erasure_reads,
            secs_one,
            epochs / secs_one,
            reads / secs_one,
        );
        if !single_core {
            let (secs_all, _) = run(0);
            row.push_str(&format!(
                concat!(
                    ", \"all_threads\": {{\"seconds\": {:.6}, \"epochs_per_sec\": {:.0}, ",
                    "\"erasure_reads_per_sec\": {:.0}}}"
                ),
                secs_all,
                epochs / secs_all,
                reads / secs_all,
            ));
        }
        row.push('}');
        throughput_rows.push(row);

        // Worker-count sweep over the first (MUSE erasure-heavy) code with
        // per-row parallel efficiency vs the 1-worker rate.
        if idx == 0 {
            let serial_rate = epochs / secs_one;
            for threads in sweep_points(threads_available) {
                if threads == 1 {
                    sweep_rows.push(format!(
                        "      {{\"threads\": 1, \"seconds\": {:.6}, \"epochs_per_sec\": {:.0}, \"efficiency\": 1.0}}",
                        secs_one, serial_rate,
                    ));
                } else if single_core {
                    sweep_rows.push(format!(
                        "      {{\"threads\": {threads}, \"skipped_single_core\": true}}"
                    ));
                } else {
                    let (secs, _) = run(threads);
                    let rate = epochs / secs;
                    sweep_rows.push(format!(
                        "      {{\"threads\": {}, \"seconds\": {:.6}, \"epochs_per_sec\": {:.0}, \"efficiency\": {:.3}}}",
                        threads,
                        secs,
                        rate,
                        rate / (serial_rate * threads as f64),
                    ));
                }
            }
        }
    }

    // Checkpoint overhead of the crash-safe sharded runner: the same
    // erasure-heavy fleet plain, checkpointed every shard, and resumed
    // from a half-complete checkpoint.
    let ckpt_code = &thr_codes[0];
    let ckpt_config = FleetConfig {
        threads: 1,
        dimms: if smoke { 32 } else { thr_config.dimms },
        ..thr_config
    };
    let shards = 8u32;
    let dir = std::env::temp_dir().join(format!("muse-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runner = RunnerConfig {
        shards,
        checkpoint_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    let plain_seconds = measure(|| {
        simulate_fleet(ckpt_code, &thr_env, &ckpt_config);
    });
    let mut checkpoint_writes = 0;
    let checkpointed_seconds = measure(|| {
        let outcome = run_sharded(ckpt_code, &thr_env, &ckpt_config, &runner, None)
            .expect("checkpointed run");
        checkpoint_writes = outcome.stats().checkpoint_writes;
    });
    // Resume: re-prime a half-complete checkpoint before every timed leg.
    let resume_from_half_seconds = (0..3)
        .map(|_| {
            run_sharded(
                ckpt_code,
                &thr_env,
                &ckpt_config,
                &RunnerConfig {
                    stop_after_shards: Some(u64::from(shards) / 2),
                    ..runner.clone()
                },
                None,
            )
            .expect("interrupted half run");
            let start = Instant::now();
            run_sharded(
                ckpt_code,
                &thr_env,
                &ckpt_config,
                &RunnerConfig {
                    resume: true,
                    ..runner.clone()
                },
                None,
            )
            .expect("resumed run");
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let _ = std::fs::remove_dir_all(&dir);
    let overhead_pct = 100.0 * (checkpointed_seconds - plain_seconds) / plain_seconds;
    println!(
        "\ncheckpointing: plain {plain_seconds:.3}s, checkpointed {checkpointed_seconds:.3}s \
         ({overhead_pct:+.1}% over {checkpoint_writes} writes), resume-from-half \
         {resume_from_half_seconds:.3}s"
    );
    let resume_json = format!(
        concat!(
            "  \"resume\": {{\"shards\": {}, \"checkpoint_writes\": {}, ",
            "\"plain_seconds\": {:.6}, \"checkpointed_seconds\": {:.6}, ",
            "\"overhead_pct\": {:.3}, \"resume_from_half_seconds\": {:.6}}},\n"
        ),
        shards,
        checkpoint_writes,
        plain_seconds,
        checkpointed_seconds,
        overhead_pct,
        resume_from_half_seconds,
    );

    // Scenario matrix rates: the full code x environment grid, once with
    // the naive counter and once with importance sampling (16x inflation),
    // so the snapshot always contains SDC rows with usable error bars.
    let matrix_config = if smoke {
        FleetConfig {
            dimms: 64,
            years: 2.0,
            ..FleetConfig::default()
        }
    } else {
        FleetConfig::default()
    };
    let mut reports = muse_lifetime::run_matrix(&matrix_config);
    reports.extend(muse_lifetime::run_matrix(&FleetConfig {
        estimator: Estimator::importance(16.0),
        ..matrix_config
    }));
    println!(
        "\n{:<16} {:<21} {:>6} {:>22} {:>22} {:>9}",
        "code", "environment", "est", "DUE/m-yr [95% CI]", "SDC/m-yr [95% CI]", "degraded"
    );
    for r in &reports {
        println!(
            "{:<16} {:<21} {:>6} {:>22} {:>22} {:>8.2}%",
            r.code,
            r.environment,
            r.estimator.name(),
            r.due_estimate.render(),
            r.sdc_estimate.render(),
            100.0 * r.degraded_fraction
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"lifetime-bench/v4\",\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        muse_bench::HostInfo::detect().json()
    ));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        concat!(
            "  \"fleet\": {{\"dimms\": {}, \"years\": {}, ",
            "\"scrub_interval_hours\": {}, \"spares_per_dimm\": {}, ",
            "\"dimms_per_machine\": {}}},\n"
        ),
        matrix_config.dimms,
        matrix_config.years,
        matrix_config.scrub_interval_hours,
        matrix_config.spares_per_dimm,
        matrix_config.dimms_per_machine,
    ));
    json.push_str("  \"throughput\": [\n");
    json.push_str(&throughput_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"thread_sweep\": {{\"code\": \"{}\", \"rows\": [\n",
        thr_codes[0].name()
    ));
    json.push_str(&sweep_rows.join(",\n"));
    json.push_str("\n    ]},\n");
    json.push_str(&resume_json);
    json.push_str("  \"scenarios\": [\n");
    let body: Vec<String> = reports.iter().map(scenario_json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_lifetime.json", &json).expect("write BENCH_lifetime.json");
    println!("\nwrote BENCH_lifetime.json ({threads_available} CPUs)");
}
