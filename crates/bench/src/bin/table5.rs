//! Table V: VLSI costs of the encoders and error correctors, from the
//! analytical synthesis model (substitute for Synopsys DC + NanGate 15 nm).

use muse_bench::print_table;
use muse_hw::{table5, TechParams};

fn main() {
    let tech = TechParams::default();
    // (name, paper encoder [ns, cells, µm², mW], paper corrector, gem5 enc cycles)
    let paper: &[(&str, [f64; 4], [f64; 4], u32)] = &[
        (
            "MUSE(144,132)",
            [1.129, 33312.0, 10999.0, 5.11],
            [1.048, 45493.0, 13648.0, 8.56],
            3,
        ),
        (
            "MUSE(80,69)",
            [1.177, 11953.0, 4166.0, 5.22],
            [1.179, 18422.0, 5593.0, 5.64],
            3,
        ),
        (
            "MUSE(80,67)",
            [1.154, 14655.0, 4896.0, 4.14],
            [1.018, 24043.0, 7092.0, 6.22],
            3,
        ),
        (
            "MUSE(80,70)",
            [1.181, 13775.0, 4772.0, 4.15],
            [0.859, 18937.0, 5719.0, 5.80],
            3,
        ),
        (
            "RS(144,128)",
            [0.219, 1158.0, 737.0, 2.67],
            [0.376, 2884.0, 1053.0, 2.70],
            1,
        ),
        (
            "RS(80,64)",
            [0.124, 542.0, 359.0, 1.31],
            [0.381, 2540.0, 617.0, 1.99],
            1,
        ),
    ];

    let rows: Vec<Vec<String>> = table5(&tech)
        .into_iter()
        .zip(paper)
        .flat_map(|(hw, (name, enc_p, corr_p, cycles_p))| {
            assert_eq!(&hw.name, name, "row order");
            vec![
                vec![
                    format!("{name} encoder"),
                    format!("{:.3} ({:.3})", hw.encoder.delay_ns(), enc_p[0]),
                    format!("{} ({})", hw.encoder.cells, enc_p[1]),
                    format!("{:.0} ({:.0})", hw.encoder.area_um2, enc_p[2]),
                    format!("{:.2} ({:.2})", hw.encoder.power_mw, enc_p[3]),
                    format!("{} ({})", hw.encode_cycles, cycles_p),
                ],
                vec![
                    format!("{name} corrector"),
                    format!("{:.3} ({:.3})", hw.corrector.delay_ns(), corr_p[0]),
                    format!("{} ({})", hw.corrector.cells, corr_p[1]),
                    format!("{:.0} ({:.0})", hw.corrector.area_um2, corr_p[2]),
                    format!("{:.2} ({:.2})", hw.corrector.power_mw, corr_p[3]),
                    format!("{} (-)", hw.correct_cycles),
                ],
            ]
        })
        .collect();

    print_table(
        "Table V: modelled VLSI costs, `ours (paper)` per cell",
        &[
            "block",
            "latency ns",
            "std cells",
            "area um2",
            "power mW",
            "cycles @2.4GHz",
        ],
        &rows,
    );
    println!("\nNote: analytical 15nm-class model (DESIGN.md §3.2); relative MUSE-vs-RS");
    println!("costs are the meaningful comparison, absolute numbers are estimates.");
}
