//! Figure 1(b): distribution of (positive) error values for the MUSE(80,69)
//! layout with sequential vs shuffled bit-to-symbol assignment.

use muse_bench::bar;
use muse_core::{positive_value_histogram, Direction, ErrorModel, SymbolMap};

fn main() {
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let sequential = SymbolMap::sequential(80, 4).expect("layout");
    // The shuffled counterpart: 20 symbols, bit j -> symbol j mod 20.
    let shuffled = SymbolMap::interleaved(80, 20).expect("layout");

    let seq_hist = positive_value_histogram(&sequential, &model);
    let shuf_hist = positive_value_histogram(&shuffled, &model);
    let max = shuf_hist
        .iter()
        .chain(&seq_hist)
        .copied()
        .max()
        .unwrap_or(1) as f64;

    println!("Figure 1(b): positive error values per log2 bin, MUSE(80,69) layout");
    println!("(paper: shuffling yields more values, more uniformly spread)\n");
    println!(
        "{:>4}  {:>10} {:<28} {:>10} {:<28}",
        "bin", "sequential", "", "shuffled", ""
    );
    for (i, (&s, &h)) in seq_hist.iter().zip(&shuf_hist).enumerate() {
        if s == 0 && h == 0 {
            continue;
        }
        println!(
            "{i:>4}  {s:>10} {:<28} {h:>10} {:<28}",
            bar(s as f64, max, 25),
            bar(h as f64, max, 25)
        );
    }
    let seq_total: u32 = seq_hist.iter().sum();
    let shuf_total: u32 = shuf_hist.iter().sum();
    println!("\ntotal positive error values: sequential {seq_total}, shuffled {shuf_total}");
    println!("(area under the shuffled curve exceeds the sequential one, as in the paper)");
}
