//! Table IV: multi-symbol error detection rates vs spare ("extra") bits for
//! Reed-Solomon and MUSE over a 144-bit codeword (extra-5 switches to the
//! 80-bit MUSE code, as in the paper).
//!
//! For each MUSE column the largest valid multiplier of the corresponding
//! width is found by search; MSED rates come from the Monte-Carlo simulator
//! (10 000 double-device errors, like the paper).

use muse_bench::print_table;
use muse_core::{find_multipliers, Direction, ErrorModel, MuseCode, SearchOptions, SymbolMap};
use muse_faultsim::{muse_msed, rs_msed, MsedConfig, RsDetectMode};
use muse_rs::RsMemoryCode;

fn main() {
    let config = MsedConfig::default(); // 10 000 trials, 2 failing devices
    let paper_rs = [
        Some(99.36),
        None,
        Some(95.55),
        None,
        Some(86.79),
        None,
        Some(53.96),
    ];
    let paper_muse = [
        Some(99.17),
        Some(98.35),
        Some(96.70),
        Some(93.39),
        Some(86.71),
        Some(85.03),
        None,
    ];

    // --- Reed-Solomon rows: extra bits 0/2/4/6 <-> symbol width 8/7/6/5.
    let mut rs_rows = Vec::new();
    for (extra, s) in [(0u32, 8u32), (2, 7), (4, 6), (6, 5)] {
        let code = RsMemoryCode::new(s, 144, 1).expect("geometry");
        let confined = rs_msed(&code, 4, RsDetectMode::DeviceConfined, config);
        let plain = rs_msed(&code, 4, RsDetectMode::SymbolSyndromes, config);
        rs_rows.push(vec![
            format!("{extra}"),
            format!("RS s={s}"),
            paper_rs[extra as usize].map_or("Ø".into(), |v| format!("{v:.2}")),
            format!("{:.2}", confined.detection_rate()),
            format!("{:.2}", plain.detection_rate()),
            if s == 8 {
                "chipkill"
            } else {
                "NOT practical (symbol spans devices)"
            }
            .to_string(),
        ]);
    }
    print_table(
        "Table IV (RS rows): MSED % for 2-device errors, 144-bit codeword",
        &[
            "extra",
            "code",
            "paper",
            "device-confined",
            "symbol-only",
            "note",
        ],
        &rs_rows,
    );

    // --- MUSE rows: extra bits 0..=4 on 144b (16..=12-bit multipliers),
    // extra 5 = the 80-bit MUSE(80,69) code.
    let map144 = SymbolMap::sequential(144, 4).expect("layout");
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let mut muse_rows = Vec::new();
    for extra in 0u32..=4 {
        let p_bits = 16 - extra;
        let found = find_multipliers(&map144, &model, p_bits, SearchOptions::default());
        let Some(&m) = found.last() else {
            muse_rows.push(vec![
                format!("{extra}"),
                format!("MUSE r={p_bits}"),
                paper_muse[extra as usize].map_or("Ø".into(), |v| format!("{v:.2}")),
                "Ø (no multiplier)".into(),
                String::new(),
                String::new(),
            ]);
            continue;
        };
        let code = MuseCode::new(map144.clone(), model.clone(), m).expect("searched multiplier");
        let stats = muse_msed(&code, config);
        muse_rows.push(vec![
            format!("{extra}"),
            format!("MUSE m={m}"),
            paper_muse[extra as usize].map_or("Ø".into(), |v| format!("{v:.2}")),
            format!("{:.2}", stats.detection_rate()),
            format!("{}", stats.miscorrected),
            "chipkill".into(),
        ]);
    }
    // Extra 5: the 80-bit code (the paper's footnote: 5-bit savings shows
    // MUSE(80,69)).
    let code = muse_core::presets::muse_80_69();
    let stats = muse_msed(&code, config);
    muse_rows.push(vec![
        "5".into(),
        "MUSE(80,69) m=2005".into(),
        format!("{:.2}", 85.03),
        format!("{:.2}", stats.detection_rate()),
        format!("{}", stats.miscorrected),
        "80b chipkill".into(),
    ]);
    // Extra 6 would need an 80b 10-bit C4B multiplier — show the search
    // comes up empty (the paper's Ø).
    let found80 = find_multipliers(
        &SymbolMap::sequential(80, 4).expect("layout"),
        &model,
        10,
        SearchOptions::default(),
    );
    muse_rows.push(vec![
        "6".into(),
        "MUSE r=10".into(),
        "Ø".into(),
        if found80.is_empty() {
            "Ø (no multiplier)".into()
        } else {
            format!("{found80:?}")
        },
        String::new(),
        String::new(),
    ]);
    print_table(
        "Table IV (MUSE rows): MSED % for 2-device errors",
        &["extra", "code", "paper", "measured", "miscorrected", "note"],
        &muse_rows,
    );
}
