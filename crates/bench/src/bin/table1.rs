//! Table I: design parameters of the MUSE codes, reproduced by running the
//! Algorithm 1 multiplier search for each configuration.

use muse_bench::print_table;
use muse_core::{find_multipliers, Direction, ErrorModel, SearchOptions, SymbolMap};

fn main() {
    let configs: Vec<(&str, &str, SymbolMap, ErrorModel, u32, u64, &str)> = vec![
        (
            "MUSE(144,132)",
            "C4B",
            SymbolMap::sequential(144, 4).expect("layout"),
            ErrorModel::symbol(Direction::Bidirectional),
            12,
            4065,
            "None",
        ),
        (
            "MUSE(80,69)",
            "C4B",
            SymbolMap::sequential(80, 4).expect("layout"),
            ErrorModel::symbol(Direction::Bidirectional),
            11,
            2005,
            "None",
        ),
        (
            "MUSE(80,67)",
            "C8A",
            SymbolMap::interleaved(80, 10).expect("layout"),
            ErrorModel::symbol(Direction::OneToZero),
            13,
            5621,
            "Eq.5",
        ),
        (
            "MUSE(80,70)",
            "C4A_U1B",
            SymbolMap::eq6_hybrid_80(),
            ErrorModel::hybrid_symbol_plus_single_bit(),
            10,
            821,
            "Eq.6",
        ),
    ];

    let mut rows = Vec::new();
    for (name, class, map, model, p_bits, paper_m, shuffle) in configs {
        let found = find_multipliers(&map, &model, p_bits, SearchOptions::default());
        let ours = found.last().copied();
        rows.push(vec![
            name.to_string(),
            class.to_string(),
            shuffle.to_string(),
            paper_m.to_string(),
            ours.map_or("(none)".into(), |m| m.to_string()),
            if ours == Some(paper_m) {
                "MATCH"
            } else {
                "DIFFER"
            }
            .to_string(),
            found.len().to_string(),
        ]);
    }
    print_table(
        "Table I: MUSE code design parameters (multiplier = largest found)",
        &[
            "code", "type", "shuffle", "paper m", "found m", "verdict", "#found",
        ],
        &rows,
    );
}
