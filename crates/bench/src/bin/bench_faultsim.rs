//! Machine-readable fault-simulation performance snapshot.
//!
//! Measures trials/second for every simulator, plus the pre-engine naive
//! MSED baseline and a thread-scaling sweep of the flagship MSED kernel,
//! and writes `BENCH_faultsim.json` (schema `faultsim-bench/v3`, field
//! reference in the `muse-bench` crate docs) to the current directory so
//! later PRs can compare against a recorded trajectory.
//!
//! Single-core honesty: on a 1-core host an `all_threads` leg would just
//! re-measure the serial path with jitter, so rows carry one canonical
//! `one_thread` measurement, `msed_speedup_vs_naive.all_threads` is
//! omitted, and the sweep rows beyond 1 thread are emitted as explicit
//! `"skipped_single_core": true` markers instead of noise.
//!
//! Usage: `cargo run --release --bin bench_faultsim [trials]`

use std::time::Instant;

use muse_bench::naive_msed;
use muse_core::presets;
use muse_faultsim::{
    measure_mode_threaded, muse_msed, rs_msed, simulate_attacks_threaded,
    simulate_retention_threaded, simulate_scrubbing_threaded, simulate_stack_threaded, FailureMode,
    LineHasher, MsedConfig, RetentionModel, RsDetectMode, ScrubConfig, Stack,
};
use muse_rs::RsMemoryCode;

/// Best-of-3 wall-clock seconds for one run.
fn measure(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures a simulator serially and, on multi-core hosts only, at all
/// workers. A 1-core "all threads" leg is the serial path re-timed with
/// jitter, so it is not measured at all there.
fn measure_pair(single_core: bool, mut run: impl FnMut(usize)) -> (f64, Option<f64>) {
    let one = measure(|| run(1));
    let all = (!single_core).then(|| measure(|| run(0)));
    (one, all)
}

/// Sweep points 1, 2, 4, … up to the core count (which is appended when
/// not itself a power of two). A 1-core host keeps the canonical
/// [1, 2, 4] shape so consumers always see the same rows; the >1 entries
/// are emitted as `skipped_single_core` markers.
fn sweep_points(logical_cores: usize) -> Vec<usize> {
    let cap = logical_cores.max(4);
    let mut points = Vec::new();
    let mut t = 1;
    while t <= cap {
        points.push(t);
        t *= 2;
    }
    if logical_cores > 1 && !points.contains(&logical_cores) {
        points.push(logical_cores);
        points.sort_unstable();
    }
    if logical_cores > 1 {
        points.retain(|&p| p <= logical_cores);
    }
    points
}

struct Row {
    name: &'static str,
    trials: u64,
    secs_one: f64,
    secs_all: Option<f64>,
}

impl Row {
    fn rate(trials: u64, secs: f64) -> f64 {
        trials as f64 / secs
    }

    fn json(&self) -> String {
        let mut row = format!(
            "    {{\"name\": \"{}\", \"trials\": {}, \"one_thread\": {{\"seconds\": {:.6}, \"trials_per_sec\": {:.0}}}",
            self.name,
            self.trials,
            self.secs_one,
            Self::rate(self.trials, self.secs_one),
        );
        if let Some(secs_all) = self.secs_all {
            row.push_str(&format!(
                ", \"all_threads\": {{\"seconds\": {:.6}, \"trials_per_sec\": {:.0}}}",
                secs_all,
                Self::rate(self.trials, secs_all),
            ));
        }
        row.push('}');
        row
    }
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let single_core = threads_available == 1;

    let muse = presets::muse_144_132();
    let muse_asym = presets::muse_80_67();
    let muse80 = presets::muse_80_69();
    let rs = RsMemoryCode::new(8, 144, 1).expect("geometry");
    let hasher = LineHasher::new(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);

    let msed_cfg = |threads| MsedConfig {
        trials,
        threads,
        ..MsedConfig::default()
    };
    let retention_model = RetentionModel {
        weak_fraction: 1e-3,
        ..RetentionModel::default()
    };
    let line_trials = trials / 10; // rowhammer episodes are ~8 codewords each
    let scrub_cfg = |_| ScrubConfig {
        device_fit: 2e6,
        words: trials / 20,
        horizon_hours: 10_000.0,
        ..ScrubConfig::default()
    };

    let naive_secs = measure(|| {
        std::hint::black_box(naive_msed(&muse, msed_cfg(1)));
    });
    let mut rows = vec![Row {
        name: "msed_naive_wide_serial",
        trials,
        secs_one: naive_secs,
        secs_all: None,
    }];

    let mut push = |name: &'static str, n: u64, (one, all): (f64, Option<f64>)| {
        rows.push(Row {
            name,
            trials: n,
            secs_one: one,
            secs_all: all,
        });
    };

    push(
        "msed_muse_144_132",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(muse_msed(&muse, msed_cfg(t)));
        }),
    );

    push(
        "msed_rs_144_128",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(rs_msed(&rs, 4, RsDetectMode::DeviceConfined, msed_cfg(t)));
        }),
    );

    // The t = 2 row measures the retired wide-PGZ-per-trial fallback's
    // replacement: closed-form syndrome-domain double-error location.
    let rs_t2 = RsMemoryCode::new(8, 144, 2).expect("geometry");
    push(
        "msed_rs_144_112_t2",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(rs_msed(
                &rs_t2,
                4,
                RsDetectMode::DeviceConfined,
                msed_cfg(t),
            ));
        }),
    );

    let pim = presets::muse_268_256();
    push(
        "msed_muse_268_256",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(muse_msed(&pim, msed_cfg(t)));
        }),
    );

    push(
        "retention_muse_80_67",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(simulate_retention_threaded(
                &muse_asym,
                &retention_model,
                1024.0,
                trials,
                1,
                t,
            ));
        }),
    );

    push(
        "rowhammer_muse_80_69",
        line_trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(simulate_attacks_threaded(
                &muse80,
                &hasher,
                8,
                line_trials,
                9,
                t,
            ));
        }),
    );

    let ondie_words = trials / 40; // each word simulates 36 on-die devices
    push(
        "ondie_stacked_144_132",
        ondie_words,
        measure_pair(single_core, |t| {
            std::hint::black_box(simulate_stack_threaded(
                Stack::Stacked,
                Some(&muse),
                1e-3,
                ondie_words,
                3,
                t,
            ));
        }),
    );

    push(
        "scrub_muse_80_69",
        scrub_cfg(()).words,
        measure_pair(single_core, |t| {
            std::hint::black_box(simulate_scrubbing_threaded(&muse80, &scrub_cfg(()), t));
        }),
    );

    push(
        "fit_two_devices_144_132",
        trials,
        measure_pair(single_core, |t| {
            std::hint::black_box(measure_mode_threaded(
                &muse,
                FailureMode::TwoDevices,
                trials,
                17,
                t,
            ));
        }),
    );

    // Thread-scaling sweep of the flagship MSED kernel: 1, 2, 4, … up to
    // the core count, with per-row parallel efficiency relative to the
    // 1-thread rate. On a 1-core host the >1 rows are skipped markers.
    let sweep_serial_secs = rows[1].secs_one;
    let sweep_serial_rate = Row::rate(trials, sweep_serial_secs);
    let mut sweep_rows = Vec::new();
    for threads in sweep_points(threads_available) {
        if threads == 1 {
            sweep_rows.push(format!(
                "      {{\"threads\": 1, \"seconds\": {:.6}, \"trials_per_sec\": {:.0}, \"efficiency\": 1.0}}",
                sweep_serial_secs, sweep_serial_rate,
            ));
        } else if single_core {
            sweep_rows.push(format!(
                "      {{\"threads\": {threads}, \"skipped_single_core\": true}}"
            ));
        } else {
            let secs = measure(|| {
                std::hint::black_box(muse_msed(&muse, msed_cfg(threads)));
            });
            let rate = Row::rate(trials, secs);
            sweep_rows.push(format!(
                "      {{\"threads\": {}, \"seconds\": {:.6}, \"trials_per_sec\": {:.0}, \"efficiency\": {:.3}}}",
                threads,
                secs,
                rate,
                rate / (sweep_serial_rate * threads as f64),
            ));
        }
    }

    let speedup_one = naive_secs / rows[1].secs_one;
    let speedup_all = rows[1].secs_all.map(|secs| naive_secs / secs);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"faultsim-bench/v3\",\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        muse_bench::HostInfo::detect().json()
    ));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    match speedup_all {
        Some(all) => json.push_str(&format!(
            "  \"msed_speedup_vs_naive\": {{\"one_thread\": {speedup_one:.2}, \"all_threads\": {all:.2}}},\n"
        )),
        None => json.push_str(&format!(
            "  \"msed_speedup_vs_naive\": {{\"one_thread\": {speedup_one:.2}}},\n"
        )),
    }
    json.push_str(&format!(
        "  \"thread_sweep\": {{\"name\": \"msed_muse_144_132\", \"trials\": {trials}, \"rows\": [\n"
    ));
    json.push_str(&sweep_rows.join(",\n"));
    json.push_str("\n    ]},\n");
    json.push_str("  \"results\": [\n");
    let body: Vec<String> = rows.iter().map(Row::json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write("BENCH_faultsim.json", &json).expect("write BENCH_faultsim.json");

    println!("wrote BENCH_faultsim.json ({threads_available} CPUs)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "simulator", "1-thread/s", "all-threads/s", "trials"
    );
    for row in &rows {
        let all = row.secs_all.map_or_else(
            || "-".into(),
            |s| format!("{:.0}", Row::rate(row.trials, s)),
        );
        println!(
            "{:<26} {:>14.0} {:>14} {:>10}",
            row.name,
            Row::rate(row.trials, row.secs_one),
            all,
            row.trials
        );
    }
    match speedup_all {
        Some(all) => println!(
            "\nmuse_msed vs naive wide loop: {speedup_one:.2}x (1 thread), {all:.2}x ({threads_available} threads)"
        ),
        None => println!(
            "\nmuse_msed vs naive wide loop: {speedup_one:.2}x (1 thread; single-core host, no parallel leg)"
        ),
    }
}
