//! Machine-readable fault-simulation performance snapshot.
//!
//! Measures trials/second for every simulator at one worker and at all
//! workers, plus the pre-engine naive MSED baseline, and writes
//! `BENCH_faultsim.json` to the current directory so later PRs can compare
//! against a recorded trajectory.
//!
//! Usage: `cargo run --release --bin bench_faultsim [trials]`

use std::time::Instant;

use muse_bench::naive_msed;
use muse_core::presets;
use muse_faultsim::{
    measure_mode_threaded, muse_msed, rs_msed, simulate_attacks_threaded,
    simulate_retention_threaded, simulate_scrubbing_threaded, simulate_stack_threaded, FailureMode,
    LineHasher, MsedConfig, RetentionModel, RsDetectMode, ScrubConfig, Stack,
};
use muse_rs::RsMemoryCode;

/// Best-of-3 wall-clock seconds for one run.
fn measure(mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Row {
    name: &'static str,
    trials: u64,
    secs_one: f64,
    secs_all: f64,
}

impl Row {
    fn rate(trials: u64, secs: f64) -> f64 {
        trials as f64 / secs
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"trials\": {}, ",
                "\"one_thread\": {{\"seconds\": {:.6}, \"trials_per_sec\": {:.0}}}, ",
                "\"all_threads\": {{\"seconds\": {:.6}, \"trials_per_sec\": {:.0}}}}}"
            ),
            self.name,
            self.trials,
            self.secs_one,
            Self::rate(self.trials, self.secs_one),
            self.secs_all,
            Self::rate(self.trials, self.secs_all),
        )
    }
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());

    let muse = presets::muse_144_132();
    let muse_asym = presets::muse_80_67();
    let muse80 = presets::muse_80_69();
    let rs = RsMemoryCode::new(8, 144, 1).expect("geometry");
    let hasher = LineHasher::new(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);

    let msed_cfg = |threads| MsedConfig {
        trials,
        threads,
        ..MsedConfig::default()
    };
    let retention_model = RetentionModel {
        weak_fraction: 1e-3,
        ..RetentionModel::default()
    };
    let line_trials = trials / 10; // rowhammer episodes are ~8 codewords each
    let scrub_cfg = |_| ScrubConfig {
        device_fit: 2e6,
        words: trials / 20,
        horizon_hours: 10_000.0,
        ..ScrubConfig::default()
    };

    let naive_secs = measure(|| {
        std::hint::black_box(naive_msed(&muse, msed_cfg(1)));
    });
    let mut rows = vec![Row {
        name: "msed_naive_wide_serial",
        trials,
        secs_one: naive_secs,
        secs_all: naive_secs,
    }];

    let mut push = |name: &'static str, n: u64, one: f64, all: f64| {
        rows.push(Row {
            name,
            trials: n,
            secs_one: one,
            secs_all: all,
        });
    };

    let one = measure(|| {
        std::hint::black_box(muse_msed(&muse, msed_cfg(1)));
    });
    let all = measure(|| {
        std::hint::black_box(muse_msed(&muse, msed_cfg(0)));
    });
    push("msed_muse_144_132", trials, one, all);

    let one = measure(|| {
        std::hint::black_box(rs_msed(&rs, 4, RsDetectMode::DeviceConfined, msed_cfg(1)));
    });
    let all = measure(|| {
        std::hint::black_box(rs_msed(&rs, 4, RsDetectMode::DeviceConfined, msed_cfg(0)));
    });
    push("msed_rs_144_128", trials, one, all);

    // The t = 2 row measures the retired wide-PGZ-per-trial fallback's
    // replacement: syndrome-domain double-error location.
    let rs_t2 = RsMemoryCode::new(8, 144, 2).expect("geometry");
    let one = measure(|| {
        std::hint::black_box(rs_msed(
            &rs_t2,
            4,
            RsDetectMode::DeviceConfined,
            msed_cfg(1),
        ));
    });
    let all = measure(|| {
        std::hint::black_box(rs_msed(
            &rs_t2,
            4,
            RsDetectMode::DeviceConfined,
            msed_cfg(0),
        ));
    });
    push("msed_rs_144_112_t2", trials, one, all);

    let pim = presets::muse_268_256();
    let one = measure(|| {
        std::hint::black_box(muse_msed(&pim, msed_cfg(1)));
    });
    let all = measure(|| {
        std::hint::black_box(muse_msed(&pim, msed_cfg(0)));
    });
    push("msed_muse_268_256", trials, one, all);

    let one = measure(|| {
        std::hint::black_box(simulate_retention_threaded(
            &muse_asym,
            &retention_model,
            1024.0,
            trials,
            1,
            1,
        ));
    });
    let all = measure(|| {
        std::hint::black_box(simulate_retention_threaded(
            &muse_asym,
            &retention_model,
            1024.0,
            trials,
            1,
            0,
        ));
    });
    push("retention_muse_80_67", trials, one, all);

    let one = measure(|| {
        std::hint::black_box(simulate_attacks_threaded(
            &muse80,
            &hasher,
            8,
            line_trials,
            9,
            1,
        ));
    });
    let all = measure(|| {
        std::hint::black_box(simulate_attacks_threaded(
            &muse80,
            &hasher,
            8,
            line_trials,
            9,
            0,
        ));
    });
    push("rowhammer_muse_80_69", line_trials, one, all);

    let ondie_words = trials / 40; // each word simulates 36 on-die devices
    let ondie = |threads| {
        measure(|| {
            std::hint::black_box(simulate_stack_threaded(
                Stack::Stacked,
                Some(&muse),
                1e-3,
                ondie_words,
                3,
                threads,
            ));
        })
    };
    push("ondie_stacked_144_132", ondie_words, ondie(1), ondie(0));

    let scrub = |threads| {
        measure(|| {
            std::hint::black_box(simulate_scrubbing_threaded(
                &muse80,
                &scrub_cfg(()),
                threads,
            ));
        })
    };
    push("scrub_muse_80_69", scrub_cfg(()).words, scrub(1), scrub(0));

    let fit = |threads| {
        measure(|| {
            std::hint::black_box(measure_mode_threaded(
                &muse,
                FailureMode::TwoDevices,
                trials,
                17,
                threads,
            ));
        })
    };
    push("fit_two_devices_144_132", trials, fit(1), fit(0));

    let engine_row = &rows[1];
    let speedup_one = naive_secs / engine_row.secs_one;
    let speedup_all = naive_secs / engine_row.secs_all;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"faultsim-bench/v2\",\n");
    json.push_str(&format!(
        "  \"host\": {},\n",
        muse_bench::HostInfo::detect().json()
    ));
    json.push_str(&format!("  \"threads_available\": {threads_available},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str(&format!(
        "  \"msed_speedup_vs_naive\": {{\"one_thread\": {speedup_one:.2}, \"all_threads\": {speedup_all:.2}}},\n"
    ));
    json.push_str("  \"results\": [\n");
    let body: Vec<String> = rows.iter().map(Row::json).collect();
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write("BENCH_faultsim.json", &json).expect("write BENCH_faultsim.json");

    println!("wrote BENCH_faultsim.json ({threads_available} CPUs)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>10}",
        "simulator", "1-thread/s", "all-threads/s", "trials"
    );
    for row in &rows {
        println!(
            "{:<26} {:>14.0} {:>14.0} {:>10}",
            row.name,
            Row::rate(row.trials, row.secs_one),
            Row::rate(row.trials, row.secs_all),
            row.trials
        );
    }
    println!(
        "\nmuse_msed vs naive wide loop: {speedup_one:.2}x (1 thread), {speedup_all:.2}x ({threads_available} threads)"
    );
}
