//! On-die ECC + MUSE co-design sweep (extension: the paper's stated future
//! work). Compares four protection stacks across retention fault rates.

use muse_bench::print_table;
use muse_core::presets;
use muse_faultsim::{simulate_stack, Stack};

fn main() {
    let code = presets::muse_144_132();
    let words = 4_000;
    let mut rows = Vec::new();
    for &cell_p in &[1e-4, 5e-4, 1e-3, 2e-3] {
        for (name, stack, rank) in [
            ("none", Stack::None, None),
            ("on-die SEC", Stack::OnDieOnly, None),
            ("rank MUSE", Stack::RankOnly, Some(&code)),
            ("stacked", Stack::Stacked, Some(&code)),
        ] {
            let stats = simulate_stack(stack, rank, cell_p, words, 0x0D1E);
            rows.push(vec![
                format!("{cell_p:.0e}"),
                name.to_string(),
                format!("{:.4}", stats.intact as f64 / stats.total() as f64),
                format!("{:.4}", stats.due_rate()),
                format!("{:.4}", stats.sdc_rate()),
            ]);
        }
    }
    print_table(
        "On-die SEC × rank MUSE co-design (4000 words per cell)",
        &["cell fault p", "stack", "intact", "DUE", "SDC"],
        &rows,
    );
    println!("\nReading: on-die SEC alone still leaks silent corruptions (double");
    println!("faults miscorrect); rank MUSE alone pays DUEs for multi-bit device");
    println!("events; the stack keeps words intact the longest and converts the");
    println!("remaining failures into detectable ones.");
}
