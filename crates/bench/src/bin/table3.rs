//! Table III: the fast-modulo inverse constants and shift amounts, derived
//! from scratch by the minimal-shift criterion.

use muse_bench::print_table;
use muse_core::FastMod;

fn main() {
    let paper: &[(u64, u32, &str, u32)] = &[
        (
            4065,
            144,
            "22470812382086453231913973442747278899998963",
            156,
        ),
        (2005, 80, "77178306688614730355307", 87),
        (5621, 80, "1761878725188230243585305", 93),
        (821, 80, "753922070210341214920295", 89),
    ];
    let mut rows = Vec::new();
    for &(m, n_bits, inverse, shift) in paper {
        let fm = FastMod::minimal(m, n_bits).expect("constants exist");
        let ok = fm.inverse().to_string() == inverse && fm.shift() == shift;
        rows.push(vec![
            m.to_string(),
            fm.inverse().to_string(),
            format!("{} (paper {})", fm.shift(), shift),
            if ok { "MATCH" } else { "DIFFER" }.to_string(),
        ]);
    }
    print_table(
        "Table III: multiplier inverses and shifts (derived, vs paper)",
        &["m", "inverse value", "shift", "verdict"],
        &rows,
    );
}
