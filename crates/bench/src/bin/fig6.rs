//! Figure 6: normalized slowdown of SPEC-shaped workloads when ECC
//! encode/correct latencies are added to the memory interface.

use muse_bench::{figure6, gmean, mean, print_table};

fn main() {
    let mem_ops = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150_000);
    let rows = figure6(mem_ops);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.4}", r.muse),
                format!("{:.4}", r.rs),
                format!("{:.4}", r.muse_always),
                format!("{:.4}", r.rs_always),
            ]
        })
        .collect();
    print_table(
        "Figure 6: slowdown normalized to no-ECC baseline",
        &[
            "benchmark",
            "MUSE",
            "RS",
            "MUSE always-corr",
            "RS always-corr",
        ],
        &table,
    );

    let avg = |f: fn(&muse_bench::Fig6Row) -> f64| mean(rows.iter().map(f));
    let gm = |f: fn(&muse_bench::Fig6Row) -> f64| gmean(rows.iter().map(f));
    println!(
        "\nAVERAGE : MUSE {:.4}  RS {:.4}  MUSE-AC {:.4}  RS-AC {:.4}",
        avg(|r| r.muse),
        avg(|r| r.rs),
        avg(|r| r.muse_always),
        avg(|r| r.rs_always)
    );
    println!(
        "GMEAN   : MUSE {:.4}  RS {:.4}  MUSE-AC {:.4}  RS-AC {:.4}",
        gm(|r| r.muse),
        gm(|r| r.rs),
        gm(|r| r.muse_always),
        gm(|r| r.rs_always)
    );
    println!("\nPaper: all bars within ~1% of baseline; error-free MUSE ≈ RS;");
    println!("always-correction costs MUSE ~0.2% vs RS ~0.09% on average.");
}
