//! Figure 7 + Table VI: the memory-tagging (MT) co-design study.
//! Three systems — MT with MUSE (tags inline in spare ECC bits), base MT
//! (disjoint tags, no cache), MT with a 32-entry metadata cache — compared
//! on slowdown, DRAM power, and DRAM traffic, normalized to MUSE.

use muse_bench::{figure7, mean, print_table};

fn main() {
    let mem_ops = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150_000);
    let (rows, table6) = figure7(mem_ops);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.4}", r.slowdown_base),
                format!("{:.4}", r.slowdown_cached),
                format!("{:.4}", r.power_base),
                format!("{:.4}", r.power_cached),
                format!("{:.3}", r.ops_base),
                format!("{:.3}", r.ops_cached),
            ]
        })
        .collect();
    print_table(
        "Figure 7: memory tagging normalized to MT-with-MUSE",
        &[
            "benchmark",
            "(a) slow base",
            "(a) slow cache",
            "(b) power base",
            "(b) power cache",
            "(c) ops base",
            "(c) ops cache",
        ],
        &table,
    );
    println!(
        "\nAVERAGE: slowdown base {:.4} / cached {:.4}; power base {:.4} / cached {:.4}; ops base {:.3} / cached {:.3}",
        mean(rows.iter().map(|r| r.slowdown_base)),
        mean(rows.iter().map(|r| r.slowdown_cached)),
        mean(rows.iter().map(|r| r.power_base)),
        mean(rows.iter().map(|r| r.power_cached)),
        mean(rows.iter().map(|r| r.ops_base)),
        mean(rows.iter().map(|r| r.ops_cached)),
    );
    println!(
        "Paper averages: power +1.7% (base) / +0.72% (cached); ops +67% (base) / +12% (cached)."
    );

    print_table(
        "Table VI: power consumption summary (mW)",
        &["scheme", "DRAM", "ECC", "total", "diff"],
        &[
            vec![
                "MT w/ MUSE".into(),
                format!("{:.0}", table6.muse.0),
                format!("{:.1}", table6.muse.1),
                format!("{:.0}", table6.muse.2),
                "0".into(),
            ],
            vec![
                "MT w/ 16kB cache".into(),
                format!("{:.0}", table6.cached.0),
                format!("{:.1}", table6.cached.1),
                format!("{:.0}", table6.cached.2),
                format!("{:+.0}", table6.cached.2 - table6.muse.2),
            ],
            vec![
                "MT w/o cache".into(),
                format!("{:.0}", table6.uncached.0),
                format!("{:.1}", table6.uncached.1),
                format!("{:.0}", table6.uncached.2),
                format!("{:+.0}", table6.uncached.2 - table6.muse.2),
            ],
        ],
    );
    println!("\nPaper: MUSE 6496 total; cached 6527 (+31); uncached 6611 (+115).");
}
