//! Section VI-A: Rowhammer resistance from 40-bit line hashes stored in the
//! MUSE(80,69) spare bits.

use muse_bench::print_table;
use muse_core::presets;
use muse_faultsim::{simulate_attacks, LineHasher};

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5_000);
    let code = presets::muse_80_69();
    let hasher = LineHasher::new(0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210);

    let mut rows = Vec::new();
    for flips in [1usize, 2, 4, 8, 16, 32, 64] {
        let stats = simulate_attacks(&code, &hasher, flips, trials, 0xBEEF);
        rows.push(vec![
            flips.to_string(),
            stats.blocked_by_ecc.to_string(),
            stats.blocked_by_hash.to_string(),
            stats.harmless.to_string(),
            stats.successful.to_string(),
        ]);
    }
    print_table(
        &format!("Rowhammer campaigns ({trials} blind attacks per row)"),
        &[
            "flips",
            "blocked by ECC",
            "blocked by hash",
            "harmless",
            "SUCCESSFUL",
        ],
        &rows,
    );
    println!("\nPaper: a blind attacker defeats the 40-bit hash with probability 2^-40");
    println!("≈ 9.1e-13 — every simulated campaign should show zero successes.");
}
