//! Section VI-B: reliable Processing-In-Memory with MUSE(268,256).
//!
//! Verifies the PIM code's parameters (12 redundancy bits vs the HBM2
//! standard's 32 per 256-bit word — 2.6× fewer), and demonstrates the
//! residue-code compute property `e(f(x,y)) = f(e(x), e(y))` with AN-coded
//! multiply-accumulate checks.

use muse_core::{presets, Word};

fn main() {
    let code = presets::muse_268_256();
    println!("PIM code: {} with m = {}", code.name(), code.multiplier());
    println!(
        "redundancy: {} bits for {} data bits; HBM2 provisions 32 bits per 256b word",
        code.r_bits(),
        code.k_bits()
    );
    println!(
        "storage advantage: {:.1}x fewer redundancy bits\n",
        32.0 / code.r_bits() as f64
    );
    assert_eq!(code.r_bits(), 12);

    // Storage protection: survive a whole-device failure on a 256-bit word.
    let payload = Word::mask(256) ^ (Word::from(0xBADC_0FFEu64) << 100);
    let stored = code.encode(&payload);
    let corrupted = stored ^ *code.symbol_map().mask(42);
    assert_eq!(code.decode(&corrupted).payload(), Some(payload));
    println!("storage check: device-failure on the 268b codeword corrected ✓");

    // Compute protection (AN-code form): codewords are multiples of m, and
    // sums/products of multiples of m stay multiples of m — so the MAC unit
    // can verify its own arithmetic with a residue check.
    let m = code.multiplier();
    let an = |x: u64| Word::from(x).wrapping_mul(&Word::from(m));
    let (a, b, c) = (123_456u64, 789_012u64, 555u64);
    // MAC: acc = a*b + c, computed entirely on encoded operands.
    let acc = an(a)
        .wrapping_mul(&an(b))
        .wrapping_add(&an(c).wrapping_mul(&Word::from(m)));
    assert_eq!(acc.rem_u64(m), 0, "fault-free MAC preserves the residue");
    let expected = Word::from(a as u128 * b as u128 + c as u128)
        .wrapping_mul(&Word::from(m))
        .wrapping_mul(&Word::from(m));
    assert_eq!(acc, expected);
    println!("compute check: AN-coded MAC keeps residue 0, e(f(x,y)) = f(e(x),e(y)) ✓");

    // A fault during computation breaks the residue and is caught.
    let mut faulty = acc;
    faulty.toggle_bit(37);
    assert_ne!(faulty.rem_u64(m), 0);
    println!("fault check: single-bit compute fault breaks the residue and is detected ✓");
}
