//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. Zero-partial-product elimination in the constant multipliers (§V-B).
//! 2. Lemire two-multiplier modulo vs the naive divide-multiply-subtract.
//! 3. Shuffling vs sequential bit assignment: multiplier-search yield.
//! 4. DRAM open- vs closed-page policy under the Figure 6 workloads.

use muse_bench::{measure, print_table, study_config};
use muse_core::{find_multipliers, Direction, ErrorModel, FastMod, SearchOptions, SymbolMap};
use muse_hw::{wallace_levels, BoothEncoding, ConstMultiplier, TechParams};
use muse_memsim::{spec2017_profiles, DramConfig, PagePolicy, SystemConfig};

fn main() {
    zero_pp_elimination();
    modulo_circuits();
    shuffling_yield();
    page_policy();
    prefetching();
}

/// Ablation 1: how much does dropping the zero Booth digits save?
fn zero_pp_elimination() {
    let tech = TechParams::default();
    let mut rows = Vec::new();
    for (m, n_bits) in [(4065u64, 144u32), (2005, 80), (5621, 80), (821, 80)] {
        let fm = FastMod::minimal(m, n_bits).expect("constants");
        let booth = BoothEncoding::of(fm.inverse());
        let with = wallace_levels(booth.nonzero_partial_products());
        let without = wallace_levels(booth.partial_products());
        rows.push(vec![
            format!("m={m}"),
            booth.partial_products().to_string(),
            booth.zero_partial_products().to_string(),
            format!("{without} -> {with}"),
            format!("{:.0} ps", (without - with) as f64 * tech.fa_ps),
        ]);
    }
    print_table(
        "Ablation 1: zero-partial-product elimination (inverse multipliers)",
        &["code", "PPs", "zero PPs", "tree levels", "latency saved"],
        &rows,
    );
}

/// Ablation 2: Lemire direct remainder vs naive `c − m·⌊c/m⌋`.
fn modulo_circuits() {
    let tech = TechParams::default();
    let mut rows = Vec::new();
    for (m, n_bits) in [(4065u64, 144u32), (2005, 80)] {
        let fm = FastMod::minimal(m, n_bits).expect("constants");
        // Lemire (Fig. 5b): wide multiply, then multiply the F-bit fraction
        // by the *small* constant m.
        let lemire = ConstMultiplier::new(n_bits, fm.inverse())
            .cost(&tech)
            .then(ConstMultiplier::new(fm.shift(), &muse_core::Word::from(m)).cost(&tech));
        // Naive: wide multiply for ⌊c/m⌋, then a multiply whose *operand*
        // is still n bits against m, then an n-bit subtractor.
        let naive = ConstMultiplier::new(n_bits, fm.inverse())
            .cost(&tech)
            .then(ConstMultiplier::new(n_bits, &muse_core::Word::from(m)).cost(&tech))
            .then(muse_hw::adder_cost(n_bits, &tech));
        rows.push(vec![
            format!("m={m}, {n_bits}b"),
            format!("{:.3} ns / {} cells", lemire.delay_ns(), lemire.cells),
            format!("{:.3} ns / {} cells", naive.delay_ns(), naive.cells),
            format!("{:.0}%", 100.0 * (1.0 - lemire.delay_ps / naive.delay_ps)),
        ]);
    }
    print_table(
        "Ablation 2: Lemire fast modulo vs naive divide-multiply-subtract",
        &["config", "Lemire", "naive", "latency saved"],
        &rows,
    );
}

/// Ablation 3: what shuffling buys the multiplier search.
fn shuffling_yield() {
    let mut rows = Vec::new();
    let asym = ErrorModel::symbol(Direction::OneToZero);
    let hybrid = ErrorModel::hybrid_symbol_plus_single_bit();
    let configs: Vec<(&str, SymbolMap, SymbolMap, &ErrorModel, u32)> = vec![
        (
            "80b C8A, 13-bit",
            SymbolMap::sequential(80, 8).expect("layout"),
            SymbolMap::interleaved(80, 10).expect("layout"),
            &asym,
            13,
        ),
        (
            "80b C4A_U1B, 10-bit",
            SymbolMap::sequential(80, 4).expect("layout"),
            SymbolMap::eq6_hybrid_80(),
            &hybrid,
            10,
        ),
        (
            "80b C8A, 14-bit",
            SymbolMap::sequential(80, 8).expect("layout"),
            SymbolMap::interleaved(80, 10).expect("layout"),
            &asym,
            14,
        ),
    ];
    for (name, sequential, shuffled, model, p) in configs {
        let seq = find_multipliers(&sequential, model, p, SearchOptions::default()).len();
        let shuf = find_multipliers(&shuffled, model, p, SearchOptions::default()).len();
        rows.push(vec![name.to_string(), seq.to_string(), shuf.to_string()]);
    }
    print_table(
        "Ablation 3: multiplier-search yield, sequential vs shuffled",
        &["configuration", "sequential", "shuffled"],
        &rows,
    );
}

/// Ablation 5: next-line prefetching under streaming vs pointer-chasing.
fn prefetching() {
    let mut rows = Vec::new();
    for bench in [8usize, 3] {
        let profile = spec2017_profiles()[bench];
        let off = measure(profile, study_config(), 60_000);
        let on = measure(
            profile,
            SystemConfig {
                prefetch_next_line: true,
                ..study_config()
            },
            60_000,
        );
        rows.push(vec![
            profile.name.to_string(),
            format!("{:.1}", off.llc_mpki()),
            format!("{:.1}", on.llc_mpki()),
            format!(
                "{:+.1}%",
                100.0 * (on.cycles as f64 / off.cycles as f64 - 1.0)
            ),
        ]);
    }
    print_table(
        "Ablation 5: next-line prefetch",
        &["benchmark", "MPKI off", "MPKI on", "cycle delta"],
        &rows,
    );
}

/// Ablation 4: DRAM page policy under a streaming and a scattered workload.
fn page_policy() {
    let mut rows = Vec::new();
    for bench in [8usize, 3] {
        let profile = spec2017_profiles()[bench];
        let open = measure(profile, study_config(), 60_000);
        let closed = measure(
            profile,
            SystemConfig {
                dram: DramConfig {
                    page_policy: PagePolicy::Closed,
                    ..DramConfig::default()
                },
                ..study_config()
            },
            60_000,
        );
        rows.push(vec![
            profile.name.to_string(),
            format!("{:.3}", open.ipc()),
            format!("{:.3}", closed.ipc()),
            format!("{:.1}%", 100.0 * open.dram.row_hit_ratio()),
            format!(
                "{:+.2}%",
                100.0 * (closed.cycles as f64 / open.cycles as f64 - 1.0)
            ),
        ]);
    }
    print_table(
        "Ablation 4: open vs closed page policy",
        &[
            "benchmark",
            "IPC open",
            "IPC closed",
            "row-hit % (open)",
            "closed-page slowdown",
        ],
        &rows,
    );
}
