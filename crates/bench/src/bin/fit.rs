//! Field-reliability projection (extension experiment): DIMM-level DUE and
//! SDC FIT rates for the MUSE codes under published DRAM failure-mode
//! shapes. Not a paper artifact — it extends Table IV's detection rates to
//! deployment-style reliability numbers.

use muse_bench::print_table;
use muse_core::presets;
use muse_faultsim::project_fit;

fn main() {
    let mut rows = Vec::new();
    for (code, devices) in [
        (presets::muse_144_132(), 36u32),
        (presets::muse_144_128(), 36),
        (presets::muse_80_69(), 20),
    ] {
        let proj = project_fit(&code, devices, 10_000, 0xF17);
        for o in &proj.outcomes {
            rows.push(vec![
                code.name().to_string(),
                format!("{:?}", o.mode),
                format!("{:.4}", o.p_correct),
                format!("{:.4}", o.p_due),
                format!("{:.4}", o.p_sdc),
            ]);
        }
        rows.push(vec![
            code.name().to_string(),
            "-> DIMM totals".into(),
            String::new(),
            format!("{:.3} FIT", proj.due_fit),
            format!("{:.3} FIT", proj.sdc_fit),
        ]);
    }
    print_table(
        "FIT projection (extension): per-mode outcomes and DIMM-level rates",
        &["code", "failure mode", "P(correct)", "P(DUE)", "P(SDC)"],
        &rows,
    );
    println!("\nAll single-device modes correct with probability 1 (ChipKill);");
    println!("residual DUE/SDC comes only from overlapping two-device faults, and");
    println!("a larger multiplier (MUSE(144,128)) converts most SDC into DUE.");
}
