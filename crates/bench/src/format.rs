//! Plain-text table rendering for experiment output.

/// Prints an aligned table with a title, header row, and data rows.
///
/// # Examples
///
/// ```
/// muse_bench::print_table(
///     "Demo",
///     &["code", "m"],
///     &[vec!["MUSE(80,69)".into(), "2005".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", line.join("  "));
    };
    render(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
    for row in rows {
        render(row);
    }
}

/// An ASCII bar for quick-look histograms: `#` per unit, scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(20.0, 10.0, 10), "##########"); // clamped
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn print_table_smoke() {
        print_table("t", &["a", "b"], &[vec!["1".into(), "22".into()]]);
    }
}
