//! Host identification for benchmark snapshots.
//!
//! Every `BENCH_*.json` row is a wall-clock measurement, so the snapshot
//! records where it was taken: logical core count, OS, and CPU
//! architecture. Comparing trajectories across machines without this
//! context is how phantom regressions get filed.

/// The host facts embedded in benchmark snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPUs visible to the process.
    pub logical_cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
}

impl HostInfo {
    /// Detects the current host.
    pub fn detect() -> Self {
        Self {
            logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
        }
    }

    /// The `"host"` JSON object embedded in `BENCH_*.json` snapshots.
    pub fn json(&self) -> String {
        format!(
            "{{\"logical_cores\": {}, \"os\": \"{}\", \"arch\": \"{}\"}}",
            self.logical_cores, self.os, self.arch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_and_render() {
        let host = HostInfo::detect();
        assert!(host.logical_cores >= 1);
        let json = host.json();
        assert!(json.starts_with("{\"logical_cores\": "));
        assert!(json.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(json.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
        // The object is flat JSON the CI schema checker can parse.
        assert!(!json.contains('\n'));
    }
}
