//! Shared experiment runners for the performance and power studies
//! (Figures 6 & 7, Table VI).

use muse_hw::{muse_hardware, rs_hardware, CodeHardware, TechParams};
use muse_memsim::{
    spec2017_profiles, DramPowerModel, EccLatency, RunStats, System, SystemConfig, TagStorage,
    Workload, WorkloadProfile,
};
use muse_rs::RsMemoryCode;

/// Converts a modelled circuit latency into CPU-clock interface cycles.
pub fn ecc_latency_cpu(hw: &CodeHardware, cpu_ghz: f64) -> EccLatency {
    let cycles = |ps: f64| (ps * cpu_ghz / 1000.0).ceil() as u64;
    EccLatency {
        encode: cycles(hw.encoder.delay_ps),
        correct: cycles(hw.corrector.delay_ps),
    }
}

/// The ECC latency pairs used by the performance studies: (MUSE, RS),
/// derived from the hardware model at the simulated CPU clock.
pub fn study_latencies(cpu_ghz: f64) -> (EccLatency, EccLatency) {
    let tech = TechParams::default();
    let muse = muse_hardware(&muse_core::presets::muse_144_132(), &tech);
    let rs = rs_hardware(&RsMemoryCode::new(8, 144, 1).expect("RS(144,128)"), &tech);
    (
        ecc_latency_cpu(&muse, cpu_ghz),
        ecc_latency_cpu(&rs, cpu_ghz),
    )
}

/// The hierarchy used by the performance studies: the paper's latencies,
/// but with L2/L3 capacities scaled down so the short synthetic windows
/// reach the same steady state (write-backs flowing, LLC behaving like a
/// warmed 8 MB cache under 10B-instruction SPEC runs).
pub fn study_config() -> SystemConfig {
    SystemConfig {
        l2_bytes: 128 * 1024,
        l3_bytes: 1024 * 1024,
        ..SystemConfig::default()
    }
}

/// Warm up, then measure: returns the steady-state window stats.
pub fn measure(profile: WorkloadProfile, config: SystemConfig, mem_ops: u64) -> RunStats {
    let mut system = System::new(config);
    let mut workload = Workload::new(profile, 0xF16);
    let warm = system.run(&mut workload, mem_ops / 2);
    system.run(&mut workload, mem_ops).since(&warm)
}

/// One Figure 6 row: normalized slowdown of each ECC configuration.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// MUSE, error-free path (encode-only).
    pub muse: f64,
    /// Reed-Solomon, error-free path.
    pub rs: f64,
    /// MUSE with correction on every read.
    pub muse_always: f64,
    /// Reed-Solomon with correction on every read.
    pub rs_always: f64,
}

/// Runs the Figure 6 sweep: 22 benchmarks × 4 ECC configurations,
/// normalized to a no-ECC baseline.
pub fn figure6(mem_ops: u64) -> Vec<Fig6Row> {
    let (muse_lat, rs_lat) = study_latencies(3.4);
    let configs = [
        EccLatency::NONE,
        EccLatency {
            correct: 0,
            ..muse_lat
        },
        EccLatency {
            correct: 0,
            ..rs_lat
        },
        muse_lat,
        rs_lat,
    ];
    spec2017_profiles()
        .into_iter()
        .map(|profile| {
            let cycles: Vec<u64> = configs
                .iter()
                .map(|&ecc| {
                    measure(
                        profile,
                        SystemConfig {
                            ecc,
                            ..study_config()
                        },
                        mem_ops,
                    )
                    .cycles
                })
                .collect();
            let base = cycles[0] as f64;
            Fig6Row {
                name: profile.name,
                muse: cycles[1] as f64 / base,
                rs: cycles[2] as f64 / base,
                muse_always: cycles[3] as f64 / base,
                rs_always: cycles[4] as f64 / base,
            }
        })
        .collect()
}

/// One Figure 7 row: the three memory-tagging systems, normalized to
/// MT-with-MUSE.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Normalized slowdown: base MT (no metadata cache) / MUSE.
    pub slowdown_base: f64,
    /// Normalized slowdown: MT with 32-entry metadata cache / MUSE.
    pub slowdown_cached: f64,
    /// Normalized DRAM power: base MT / MUSE.
    pub power_base: f64,
    /// Normalized DRAM power: cached MT / MUSE.
    pub power_cached: f64,
    /// Normalized DRAM rd+wr operations: base MT / MUSE.
    pub ops_base: f64,
    /// Normalized rd+wr: cached MT / MUSE.
    pub ops_cached: f64,
}

/// Aggregate power summary — Table VI.
#[derive(Debug, Clone, Copy)]
pub struct Table6 {
    /// MT w/ MUSE: (DRAM mW, ECC mW, total mW).
    pub muse: (f64, f64, f64),
    /// MT w/ 16 kB metadata cache: same triple.
    pub cached: (f64, f64, f64),
    /// MT w/o cache: same triple.
    pub uncached: (f64, f64, f64),
}

/// Runs the Figure 7 / Table VI memory-tagging study.
pub fn figure7(mem_ops: u64) -> (Vec<Fig7Row>, Table6) {
    let (muse_lat, rs_lat) = study_latencies(3.4);
    let tech = TechParams::default();
    // ECC engine power per channel (encoder + corrector), two channels.
    let muse_hw = muse_hardware(&muse_core::presets::muse_144_132(), &tech);
    let rs_hw = rs_hardware(&RsMemoryCode::new(8, 144, 1).expect("geometry"), &tech);
    let muse_ecc_mw = 2.0 * (muse_hw.encoder.power_mw + muse_hw.corrector.power_mw);
    let rs_ecc_mw = 2.0 * (rs_hw.encoder.power_mw + rs_hw.corrector.power_mw);

    let power_model = DramPowerModel::default();
    let mk_config = |ecc, tagging| SystemConfig {
        ecc,
        tagging,
        ..study_config()
    };

    let mut rows = Vec::new();
    let mut totals = [[0.0f64; 2]; 3]; // [config][dram_mw, cycles-weight]
    let mut count = 0.0;
    for profile in spec2017_profiles() {
        let muse = measure(profile, mk_config(muse_lat, TagStorage::InlineEcc), mem_ops);
        let cached = measure(
            profile,
            mk_config(
                rs_lat,
                TagStorage::Disjoint {
                    cache_entries: Some(32),
                },
            ),
            mem_ops,
        );
        let uncached = measure(
            profile,
            mk_config(
                rs_lat,
                TagStorage::Disjoint {
                    cache_entries: None,
                },
            ),
            mem_ops,
        );
        let power = |s: &RunStats, ecc_mw: f64| {
            power_model.report(&s.dram, s.cycles, 3.4, ecc_mw).dram_mw()
        };
        let p_muse = power(&muse, muse_ecc_mw);
        let p_cached = power(&cached, rs_ecc_mw);
        let p_uncached = power(&uncached, rs_ecc_mw);
        // Normalize per-instruction (runs execute the same instruction
        // window, but cycles differ).
        let cpi = |s: &RunStats| s.cycles as f64 / s.instructions as f64;
        let opspi = |s: &RunStats| s.dram.operations() as f64 / s.instructions as f64;
        rows.push(Fig7Row {
            name: profile.name,
            slowdown_base: cpi(&uncached) / cpi(&muse),
            slowdown_cached: cpi(&cached) / cpi(&muse),
            power_base: p_uncached / p_muse,
            power_cached: p_cached / p_muse,
            ops_base: opspi(&uncached) / opspi(&muse),
            ops_cached: opspi(&cached) / opspi(&muse),
        });
        totals[0][0] += p_muse;
        totals[1][0] += p_cached;
        totals[2][0] += p_uncached;
        count += 1.0;
    }
    let table6 = Table6 {
        muse: (
            totals[0][0] / count,
            muse_ecc_mw,
            totals[0][0] / count + muse_ecc_mw,
        ),
        cached: (
            totals[1][0] / count,
            rs_ecc_mw,
            totals[1][0] / count + rs_ecc_mw,
        ),
        uncached: (
            totals[2][0] / count,
            rs_ecc_mw,
            totals[2][0] / count + rs_ecc_mw,
        ),
    };
    (rows, table6)
}

/// Geometric mean.
pub fn gmean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u32), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u32), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_derivation() {
        let (muse, rs) = study_latencies(3.4);
        // MUSE: ~1.1-1.6 ns encode → 4-6 CPU cycles at 3.4 GHz; RS ≈ 1.
        assert!(
            (3..=6).contains(&muse.encode),
            "muse encode {}",
            muse.encode
        );
        assert!(muse.correct >= muse.encode);
        assert!(rs.encode <= 2, "rs encode {}", rs.encode);
        assert!(rs.correct < muse.correct);
    }

    #[test]
    fn means() {
        assert!((gmean([1.0, 4.0].into_iter()) - 2.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0].into_iter()) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(std::iter::empty()), 1.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn figure6_shape_small() {
        // Tiny run on a subset: slowdowns hover near 1.0 and never explode.
        let (muse_lat, _) = study_latencies(3.4);
        let profile = spec2017_profiles()[8]; // lbm
        let base = measure(profile, SystemConfig::default(), 20_000);
        let ecc = measure(
            profile,
            SystemConfig {
                ecc: muse_lat,
                ..SystemConfig::default()
            },
            20_000,
        );
        let slowdown = (ecc.cycles as f64 / ecc.instructions as f64)
            / (base.cycles as f64 / base.instructions as f64);
        assert!((0.98..1.06).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn figure7_orderings_small() {
        // One benchmark, small window: traffic ordering must hold.
        let (muse_lat, rs_lat) = study_latencies(3.4);
        let profile = spec2017_profiles()[4]; // cactuBSSN
        let muse = measure(
            profile,
            SystemConfig {
                ecc: muse_lat,
                tagging: TagStorage::InlineEcc,
                ..SystemConfig::default()
            },
            20_000,
        );
        let uncached = measure(
            profile,
            SystemConfig {
                ecc: rs_lat,
                tagging: TagStorage::Disjoint {
                    cache_entries: None,
                },
                ..SystemConfig::default()
            },
            20_000,
        );
        let opspi_muse = muse.dram.operations() as f64 / muse.instructions as f64;
        let opspi_unc = uncached.dram.operations() as f64 / uncached.instructions as f64;
        assert!(opspi_unc > opspi_muse);
    }
}
