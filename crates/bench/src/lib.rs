//! Experiment harness: shared runners and formatting for the binaries that
//! regenerate every table and figure of the paper.
//!
//! Each `src/bin/*.rs` target reproduces one artifact (run with
//! `--release`):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — code parameters via multiplier search |
//! | `appendix_search` | Appendix F — full multiplier lists |
//! | `fig1b` | Figure 1(b) — error-value histograms |
//! | `table3` | Table III — fast-modulo inverse constants |
//! | `table4` | Table IV — MSED rates vs extra bits |
//! | `table5` | Table V — VLSI cost model |
//! | `fig6` | Figure 6 — ECC latency slowdowns on SPEC-shaped workloads |
//! | `fig7` | Figure 7 + Table VI — memory tagging study |
//! | `pim` | Section VI-B — the MUSE(268,256) PIM code |
//! | `rowhammer` | Section VI-A — hash-protected lines vs Rowhammer |
//! | `fit` | extension — FIT-rate projection over field failure modes |
//! | `ablation` | extension — design-choice ablations |
//! | `ondie` | extension — on-die SEC × rank MUSE co-design |
//! | `repro_all` | Everything above in sequence |

pub mod baseline;
pub mod experiments;
pub mod format;

pub use baseline::naive_msed;
pub use experiments::*;
pub use format::{bar, print_table};
