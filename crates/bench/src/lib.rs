//! Experiment harness: shared runners and formatting for the binaries that
//! regenerate every table and figure of the paper.
//!
//! Each `src/bin/*.rs` target reproduces one artifact (run with
//! `--release`):
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — code parameters via multiplier search |
//! | `appendix_search` | Appendix F — full multiplier lists |
//! | `fig1b` | Figure 1(b) — error-value histograms |
//! | `table3` | Table III — fast-modulo inverse constants |
//! | `table4` | Table IV — MSED rates vs extra bits |
//! | `table5` | Table V — VLSI cost model |
//! | `fig6` | Figure 6 — ECC latency slowdowns on SPEC-shaped workloads |
//! | `fig7` | Figure 7 + Table VI — memory tagging study |
//! | `pim` | Section VI-B — the MUSE(268,256) PIM code |
//! | `rowhammer` | Section VI-A — hash-protected lines vs Rowhammer |
//! | `fit` | extension — FIT-rate projection over field failure modes |
//! | `ablation` | extension — design-choice ablations |
//! | `ondie` | extension — on-die SEC × rank MUSE co-design |
//! | `repro_all` | Everything above in sequence |
//!
//! # The `BENCH_faultsim.json` performance snapshot
//!
//! `cargo run --release -p muse-bench --bin bench_faultsim [trials]`
//! measures every fault simulator and (over)writes `BENCH_faultsim.json`
//! in the current directory, so each PR's hot-path numbers land next to
//! the previous baseline. Schema `faultsim-bench/v3` (v3 added the
//! `thread_sweep` object and made every parallel-leg field honest on
//! single-core hosts — see below; v2 added the `host` object so
//! trajectories are never compared across machines unknowingly):
//!
//! ```json
//! {
//!   "schema": "faultsim-bench/v3",
//!   "host": {"logical_cores": 8, "os": "linux", "arch": "x86_64"},
//!   "threads_available": 8,          // CPUs visible to the run
//!   "trials": 20000,                 // base trial count (CLI arg)
//!   "msed_speedup_vs_naive": {"one_thread": 9.8, "all_threads": 61.2},
//!   "thread_sweep": {                // flagship MSED kernel scaling proof
//!     "name": "msed_muse_144_132",
//!     "trials": 20000,
//!     "rows": [
//!       {"threads": 1, "seconds": 0.0003, "trials_per_sec": 60000000,
//!        "efficiency": 1.0},          // rate / (serial_rate * threads)
//!       {"threads": 2, "seconds": 0.0002, "trials_per_sec": 112000000,
//!        "efficiency": 0.93}
//!     ]
//!   },
//!   "results": [
//!     {
//!       "name": "msed_muse_144_132", // simulator + code under test
//!       "trials": 20000,             // this row's trial count (some rows
//!                                    // scale the base count down because a
//!                                    // trial covers many words/devices)
//!       "one_thread":  {"seconds": 0.0003, "trials_per_sec": 60000000},
//!       "all_threads": {"seconds": 0.0001, "trials_per_sec": 448000000}
//!     }
//!   ]
//! }
//! ```
//!
//! **Single-core hosts** (`host.logical_cores == 1`): an "all threads"
//! leg there would just re-time the serial path with jitter, so the
//! emitter measures one canonical `one_thread` object per row (no
//! `all_threads` key), omits `msed_speedup_vs_naive.all_threads` rather
//! than reporting a sub-1x artifact, and keeps the sweep's canonical
//! `[1, 2, 4]` row shape with the >1 rows as explicit markers:
//!
//! ```json
//! {"threads": 2, "skipped_single_core": true}
//! ```
//!
//! Timings are best-of-3 wall-clock; `msed_naive_wide_serial` is the
//! pre-engine wide-word loop kept as the speedup baseline (serial by
//! definition — it never has an `all_threads` leg), and
//! `msed_rs_144_112_t2` tracks the syndrome-domain `t = 2` RS path that
//! replaced the wide-PGZ-per-trial fallback. CI validates the committed
//! file against this schema (including the required simulator rows and
//! the sweep shape) and asserts a freshly measured
//! `msed_speedup_vs_naive.one_thread` floor so kernel regressions fail
//! loudly. Regenerate on a quiet machine and commit the file when a PR
//! changes simulator performance.
//!
//! # The `BENCH_lifetime.json` fleet snapshot
//!
//! `cargo run --release -p muse-bench --bin bench_lifetime` measures the
//! fleet-lifetime simulator (`muse-lifetime`) and (over)writes
//! `BENCH_lifetime.json`. Schema `lifetime-bench/v4` (v4 added the
//! `thread_sweep` object and the single-core honesty rule — on 1-core
//! hosts the throughput rows carry only `one_thread` and the sweep rows
//! beyond 1 worker are `{"threads": N, "skipped_single_core": true}`
//! markers, exactly as in `faultsim-bench/v3`; v3 added the `host`
//! object; v2 added the per-row estimator tag, event counts, 95%
//! confidence intervals, and the rendered rate strings; v1 rows carried
//! only the bare point rates):
//!
//! ```json
//! {
//!   "schema": "lifetime-bench/v4",
//!   "host": {"logical_cores": 8, "os": "linux", "arch": "x86_64"},
//!   "threads_available": 8,     // CPUs visible to the run
//!   "smoke": false,             // true under the CI `--smoke` mode
//!   "fleet": {                  // the scenario-matrix configuration
//!     "dimms": 1024, "years": 5.0, "scrub_interval_hours": 12.0,
//!     "spares_per_dimm": 0, "dimms_per_machine": 8
//!   },
//!   "throughput": [             // erasure-heavy fleet, 1 vs all workers
//!     {
//!       "code": "MUSE(80,69)",
//!       "epochs": 33280,         // DIMM-epochs simulated per run
//!       "erasure_reads": 158721, // degraded-mode classifications per run
//!       "one_thread":  {"seconds": 0.04, "epochs_per_sec": 700000,
//!                       "erasure_reads_per_sec": 13000000},
//!       "all_threads": {"seconds": 0.01, "epochs_per_sec": 4900000,
//!                       "erasure_reads_per_sec": 91000000}
//!     }
//!   ],
//!   "thread_sweep": {           // worker scaling of the first code
//!     "code": "MUSE(80,69)",
//!     "rows": [
//!       {"threads": 1, "seconds": 0.04, "epochs_per_sec": 700000,
//!        "efficiency": 1.0},    // rate / (serial_rate * threads)
//!       {"threads": 2, "seconds": 0.02, "epochs_per_sec": 1300000,
//!        "efficiency": 0.93}
//!     ]
//!   },
//!   "resume": {                 // crash-safe sharded-runner overhead
//!     "shards": 8,              // shard count of the measured run
//!     "checkpoint_writes": 8,   // generations persisted
//!     "plain_seconds": 0.21,            // simulate_fleet, no sharding
//!     "checkpointed_seconds": 0.21,     // sharded + checkpoint every shard
//!     "overhead_pct": 0.5,              // checkpointed vs plain
//!     "resume_from_half_seconds": 0.10  // resume of a half-done checkpoint
//!   },
//!   "scenarios": [              // one row per code x environment x estimator
//!     {
//!       "code": "MUSE(144,132)", "environment": "chipkill-heavy",
//!       "machine_years": 640.0,
//!       "estimator": "is",      // "naive" or "is" (importance sampling)
//!       "bias": 16.0,           // rate-inflation factor (1.0 for naive)
//!       "due_per_machine_year": 2.5,
//!       "due_events": 1600,     // observed (unweighted) DUE events
//!       "due_ci95": [2.1, 2.9], // 95% confidence interval on the rate
//!       "due_display": "2.5e0 [2.1e0,2.9e0]",
//!       "sdc_per_machine_year": 1.3e-4,
//!       "sdc_events": 3,
//!       "sdc_ci95": [0.0, 3.2e-4],
//!       "sdc_display": "1.3e-4 [0.0e0,3.2e-4]",
//!       "repairs_per_machine_year": 0.4, "degraded_fraction": 0.08,
//!       "erasure_reads": 1583, "data_loss_events": 0
//!     }
//!   ]
//! }
//! ```
//!
//! The matrix runs twice — once per estimator — so every snapshot holds
//! both the unbiased naive counts and the importance-sampled rates whose
//! likelihood-ratio reweighting resolves rare SDC events with error bars.
//! When a row observed zero events its `*_display` string is the
//! rule-of-three 95% upper bound (`"<4.7e-3 @95%"`), never a bare zero;
//! CI rejects snapshots whose SDC columns are neither positive nor
//! bounded that way.
//!
//! `--smoke` (used by CI) first asserts the pinned small-fleet tallies of
//! `crates/lifetime/tests/regression.rs` (via
//! `muse_lifetime::verify_smoke`), then writes a reduced snapshot.
//! All rates are deterministic — bit-identical at any worker count.
//!
//! The `resume` row exercises the `lifetime-ckpt/v1` checkpoint store
//! (two alternating generations, atomic write-temp-fsync-rename,
//! CRC-32-validated records; full layout in the `muse-lifetime`
//! `checkpoint` module docs): the overhead of persisting every shard
//! boundary, and the wall-clock of resuming a run interrupted halfway.
//!
//! # Observability artifacts: `muse-trace/v1` and the Prometheus textfile
//!
//! `muse-tool lifetime --trace <file> --metrics <file> [--progress]`
//! (any of the three routes cells through the sharded supervisor)
//! produces two machine-readable artifacts alongside the matrix. Both
//! are strictly observational: tallies and weighted sums are
//! bit-identical with telemetry on or off, at any thread count
//! (`crates/lifetime/tests/telemetry.rs` pins this).
//!
//! **Trace (`--trace`)** is JSONL, one flat object per line, schema
//! `muse-trace/v1`. Every line carries `schema`, a monotonically
//! increasing `seq`, and `event`; the remaining fields depend on the
//! event kind:
//!
//! ```json
//! {"schema": "muse-trace/v1", "seq": 0, "event": "run_start",
//!  "label": "MUSE(144,132)@smoke", "total_shards": 8,
//!  "dimms_per_shard": 4, "estimator": "naive", "threads": 1}
//! ```
//!
//! | `event` | fields |
//! |---|---|
//! | `run_start` | `label`, `total_shards`, `dimms_per_shard`, `estimator`, `threads` |
//! | `resume_adopted` | `generation`, `shards_done`, `total_shards`, `fell_back` |
//! | `shard_start` | `shard`, `dimm_lo`, `dimm_hi` |
//! | `shard_end` | `shard`, `wall_ms`, `dimms` |
//! | `shard_retry` | `shard`, `attempt`, `backoff_ms`, `error` |
//! | `checkpoint_written` | `generation`, `shards_done`, `write_ms` |
//! | `weight_cap_saturated` | `channel`, `requested_bias`, `cap` |
//! | `heartbeat` | `shards_done`, `total_shards`, `machine_years`, `due_ci_half`, `sdc_ci_half` |
//! | `run_end` | `shards_done`, `wall_ms`, `retries` |
//!
//! Events flow through a bounded channel to a writer thread and are
//! **dropped, never blocked on**, under backpressure; `seq` still
//! advances on a drop, so a gap in the file locates exactly where
//! pressure hit, and the CLI's final `trace: N events written,
//! D dropped` banner (plus the `muse_trace_dropped_events` gauge)
//! reports the count — CI asserts it is zero on the smoke run.
//!
//! **Metrics (`--metrics`)** is the Prometheus text exposition format
//! (`# HELP`/`# TYPE` comments; counters, gauges, and cumulative
//! log2-bucket histograms with `_bucket{le="..."}`/`_sum`/`_count`
//! series), written atomically (temp + rename) after every shard so a
//! node-exporter textfile collector can scrape mid-run. Instruments:
//! `muse_lifetime_shards_completed_total`,
//! `muse_lifetime_shard_retries_total`,
//! `muse_lifetime_checkpoint_writes_total`,
//! `muse_lifetime_dimms_simulated_total`, `muse_sim_trials_total`,
//! `muse_lifetime_due_events_total`, `muse_lifetime_sdc_events_total`,
//! histograms `muse_lifetime_shard_wall_ms` /
//! `muse_lifetime_checkpoint_write_ms`, and gauges
//! `muse_sim_trials_per_second`, `muse_lifetime_machine_years`,
//! `muse_lifetime_due_weighted_sum`, `muse_lifetime_sdc_weighted_sum`,
//! `muse_trace_dropped_events`.
//!
//! # Ops runbook: running the batch service (`muse-service`)
//!
//! The scenario matrix also runs as a crash-only daemon (`muse-tool
//! serve`) over a spool directory — the deployment shape for unattended
//! sweeps. The short version for operators:
//!
//! **Spool layout** (`--root`, default `muse-spool/`): `queue/` holds
//! `<id>.job` specs (`muse-job/v1` JSON; the 16-hex id *is* the config
//! hash, so identical submissions dedup structurally), `active/` the one
//! claimed job, `done/` `<id>.result` (`muse-result/v1`), `failed/` the
//! spec plus `<id>.err`, `cache/` `<id>.res` binary tally records
//! (`muse-result-cache/v1`, CRC-32 + embedded-hash fenced), and
//! `checkpoints/<id>/` the in-flight two-generation checkpoint store.
//! Every transition is an atomic rename; there is no other state.
//!
//! **Lifecycle**: `submit` (enqueue; prints `submitted <id>` or
//! `duplicate <id>`), `serve [--once]` (claim → run sharded with
//! watchdog + retries → cache + `done/`), `status`, `result <id>`,
//! `smoke-check` (asserts the four pinned smoke tallies from `done/`).
//!
//! **Drain**: SIGTERM/SIGINT sets a flag the runner checks at every
//! shard boundary — the in-flight job checkpoints, returns to `queue/`,
//! and the daemon exits `0` after printing `drained cleanly`. A
//! restarted daemon adopts `active/` orphans (a daemon that died without
//! draining), resumes from the checkpoint (`resume: job <id> adopted
//! checkpoint generation N`), and reproduces bit-identical tallies.
//!
//! **Exit codes**: `0` — all jobs done or a clean drain; nonzero — any
//! job failed (evidence in `failed/`) or the spool itself errored. Cache
//! hits recompute nothing (`shards_run: 0` in the result); a cache
//! record that fails its CRC or hash fence is discarded loudly and the
//! job recomputes.
//!
//! **Chaos**: `serve --inject
//! kill=p,hang=p,hang-ms=n,enospc=p,short-write=p,fsync-fail=p,`
//! `rename-fail=p,corrupt-record=p,sink-fail=p,sink-block-ms=n,delay=n`
//! drives the deterministic fault plans (`FaultPlan` + `IoFaultPlan`) —
//! the same seams `crates/service/tests/chaos.rs` uses to prove every
//! fault class either completes bit-identically or fails loudly with
//! resumable state. The CI `service-smoke` job runs the full drill:
//! submit, SIGTERM mid-run, restart-resume, pinned tallies, cache-served
//! resubmit.

pub mod baseline;
pub mod experiments;
pub mod format;
pub mod host;

pub use baseline::naive_msed;
pub use experiments::*;
pub use format::{bar, print_table};
pub use host::HostInfo;
