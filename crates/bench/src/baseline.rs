//! The pre-engine reference implementation of the MSED simulator: one
//! serial RNG stream, a full wide-word encode and decode per trial.
//!
//! Kept as the performance baseline the parallel residue-space engine is
//! measured against (`benches/faultsim_engine.rs`, `bin/bench_faultsim`),
//! and as an independent statistical cross-check: its detection-rate
//! estimates must agree with the fast path within Monte-Carlo error.

use muse_core::{Decoded, MuseCode};
use muse_faultsim::{random_payload, MsedConfig, MsedStats, Outcome, Rng};

/// Serial wide-path MSED estimation (the seed implementation of
/// `muse_msed`). `config.threads` is ignored — this path is single-threaded
/// by construction.
pub fn naive_msed(code: &MuseCode, config: MsedConfig) -> MsedStats {
    let mut rng = Rng::seeded(config.seed);
    let mut stats = MsedStats::default();
    let n_sym = code.symbol_map().num_symbols();
    for _ in 0..config.trials {
        let payload = random_payload(&mut rng, code.k_bits());
        let cw = code.encode(&payload);
        let mut corrupted = cw;
        for sym in rng.choose_k(n_sym, config.failing_devices) {
            let pattern = rng.nonzero_below(1 << code.symbol_map().bits_of(sym).len());
            code.symbol_map()
                .apply_xor_pattern(&mut corrupted, sym, pattern);
        }
        let outcome = match code.decode(&corrupted) {
            Decoded::Detected => Outcome::Detected,
            Decoded::Clean { .. } => Outcome::Silent,
            Decoded::Corrected { payload: p, .. } => {
                if p == payload {
                    Outcome::Corrected
                } else {
                    Outcome::Miscorrected
                }
            }
        };
        match outcome {
            Outcome::Detected => stats.detected += 1,
            Outcome::Corrected => stats.corrected += 1,
            Outcome::Miscorrected => stats.miscorrected += 1,
            Outcome::Silent => stats.silent += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::presets;
    use muse_faultsim::muse_msed;

    #[test]
    fn naive_and_fast_estimates_agree_statistically() {
        // Different RNG streams, same distribution: the two estimators must
        // land within Monte-Carlo error of each other.
        let code = presets::muse_144_132();
        let config = MsedConfig {
            trials: 4_000,
            ..MsedConfig::default()
        };
        let naive = naive_msed(&code, config);
        let fast = muse_msed(&code, config);
        assert_eq!(naive.total(), fast.total());
        let delta = (naive.detection_rate() - fast.detection_rate()).abs();
        assert!(
            delta < 3.0,
            "naive {} vs fast {}",
            naive.detection_rate(),
            fast.detection_rate()
        );
    }

    #[test]
    fn naive_single_device_all_corrected() {
        let stats = naive_msed(
            &presets::muse_80_69(),
            MsedConfig {
                failing_devices: 1,
                trials: 200,
                ..MsedConfig::default()
            },
        );
        assert_eq!(stats.corrected, 200);
    }
}
