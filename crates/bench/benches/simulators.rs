//! Simulator throughput: the Monte-Carlo MSED engine, the memory-system
//! model, and the retention sweep — the iteration speed of every
//! table/figure harness.

use criterion::{criterion_group, criterion_main, Criterion};
use muse_core::presets;
use muse_faultsim::{muse_msed, simulate_retention, MsedConfig, RetentionModel};
use muse_memsim::{spec2017_profiles, System, SystemConfig, Workload};
use std::hint::black_box;

fn msed(c: &mut Criterion) {
    let code = presets::muse_144_132();
    let mut group = c.benchmark_group("msed");
    group.sample_size(20);
    group.bench_function("muse_144_132/500_trials", |b| {
        b.iter(|| {
            black_box(muse_msed(
                &code,
                MsedConfig {
                    trials: 500,
                    ..MsedConfig::default()
                },
            ))
        })
    });
    group.finish();
}

fn memsim(c: &mut Criterion) {
    let profile = spec2017_profiles()[8]; // lbm
    let mut group = c.benchmark_group("memsim");
    group.sample_size(20);
    group.bench_function("lbm/10k_mem_ops", |b| {
        b.iter(|| {
            let mut system = System::new(SystemConfig::default());
            let mut workload = Workload::new(profile, 1);
            black_box(system.run(&mut workload, 10_000))
        })
    });
    group.finish();
}

fn retention(c: &mut Criterion) {
    let code = presets::muse_80_67();
    let model = RetentionModel {
        weak_fraction: 1e-3,
        ..RetentionModel::default()
    };
    let mut group = c.benchmark_group("retention");
    group.sample_size(20);
    group.bench_function("muse_80_67/500_words", |b| {
        b.iter(|| black_box(simulate_retention(&code, &model, 1024.0, 500, 1)))
    });
    group.finish();
}

criterion_group!(benches, msed, memsim, retention);
criterion_main!(benches);
