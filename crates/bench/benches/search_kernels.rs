//! Kernels of the offline tooling: multiplier validation (the inner loop of
//! Algorithm 1), error-value enumeration, fast modulo vs long division, and
//! Booth recoding.

use criterion::{criterion_group, criterion_main, Criterion};
use muse_core::{
    enumerate_error_values, validate_multiplier_over, Direction, ErrorModel, FastMod, SymbolMap,
    Word,
};
use std::hint::black_box;

fn enumeration(c: &mut Criterion) {
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let map144 = SymbolMap::sequential(144, 4).expect("layout");
    c.bench_function("enumerate/144b_c4b", |b| {
        b.iter(|| black_box(enumerate_error_values(black_box(&map144), &model)))
    });
    let map80 = SymbolMap::interleaved(80, 10).expect("layout");
    let asym = ErrorModel::symbol(Direction::OneToZero);
    c.bench_function("enumerate/80b_c8a_shuffled", |b| {
        b.iter(|| black_box(enumerate_error_values(black_box(&map80), &asym)))
    });
}

fn validation(c: &mut Criterion) {
    let model = ErrorModel::symbol(Direction::Bidirectional);
    let map = SymbolMap::sequential(144, 4).expect("layout");
    let values = enumerate_error_values(&map, &model);
    c.bench_function("validate/144b_good_multiplier", |b| {
        b.iter(|| black_box(validate_multiplier_over(black_box(&values), 4065)))
    });
    c.bench_function("validate/144b_bad_multiplier", |b| {
        b.iter(|| black_box(validate_multiplier_over(black_box(&values), 4067)))
    });
}

fn modulo(c: &mut Criterion) {
    let fm = FastMod::minimal(4065, 144).expect("constants");
    let x = Word::mask(144) ^ (Word::from(0xABCDEFu64) << 60);
    c.bench_function("modulo/lemire_fastmod_144b", |b| {
        b.iter(|| black_box(fm.rem(black_box(&x))))
    });
    c.bench_function("modulo/horner_division_144b", |b| {
        b.iter(|| black_box(black_box(&x).rem_u64(4065)))
    });
}

fn booth(c: &mut Criterion) {
    let inverse = *FastMod::minimal(4065, 144).expect("constants").inverse();
    c.bench_function("booth/recode_145bit_inverse", |b| {
        b.iter(|| black_box(muse_hw::BoothEncoding::of(black_box(&inverse))))
    });
}

criterion_group!(benches, enumeration, validation, modulo, booth);
criterion_main!(benches);
