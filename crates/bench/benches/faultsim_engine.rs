//! The fault-simulation engine against its pre-engine baseline.
//!
//! Three rungs at equal trial count on the Table IV workload
//! (MUSE(144,132), two failing devices):
//!
//! * `naive_serial` — the seed implementation: one RNG stream, a full
//!   wide-word encode + decode per trial.
//! * `engine_1_thread` — the residue-space kernel on a single worker. The
//!   PR's acceptance target: ≥10× `naive_serial`.
//! * `engine_all_threads` — the same kernel across all CPUs; should scale
//!   near-linearly on top.

use criterion::{criterion_group, criterion_main, Criterion};
use muse_bench::naive_msed;
use muse_core::presets;
use muse_faultsim::{muse_msed, simulate_retention_threaded, MsedConfig, RetentionModel};
use std::hint::black_box;

const TRIALS: u64 = 20_000;

fn msed_engine(c: &mut Criterion) {
    let code = presets::muse_144_132();
    let config = |threads| MsedConfig {
        trials: TRIALS,
        threads,
        ..MsedConfig::default()
    };
    let mut group = c.benchmark_group("msed_20k_trials");
    group.sample_size(10);
    group.bench_function("naive_serial", |b| {
        b.iter(|| black_box(naive_msed(&code, config(1))))
    });
    group.bench_function("engine_1_thread", |b| {
        b.iter(|| black_box(muse_msed(&code, config(1))))
    });
    group.bench_function("engine_all_threads", |b| {
        b.iter(|| black_box(muse_msed(&code, config(0))))
    });
    group.finish();
}

fn retention_engine(c: &mut Criterion) {
    let code = presets::muse_80_67();
    let model = RetentionModel {
        weak_fraction: 1e-3,
        ..RetentionModel::default()
    };
    let mut group = c.benchmark_group("retention_5k_words");
    group.sample_size(10);
    group.bench_function("engine_1_thread", |b| {
        b.iter(|| {
            black_box(simulate_retention_threaded(
                &code, &model, 1024.0, 5_000, 1, 1,
            ))
        })
    });
    group.bench_function("engine_all_threads", |b| {
        b.iter(|| {
            black_box(simulate_retention_threaded(
                &code, &model, 1024.0, 5_000, 1, 0,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, msed_engine, retention_engine);
criterion_main!(benches);
