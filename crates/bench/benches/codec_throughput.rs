//! Encoder/decoder throughput for every Table I code and the RS baselines.
//!
//! The software counterpart of Table V: how expensive each code's
//! encode / clean-decode / correct paths are per 64-byte-line-equivalent.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use muse_core::{presets, Word};
use muse_rs::RsMemoryCode;
use std::hint::black_box;

fn muse_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("muse");
    for code in [
        presets::muse_144_132(),
        presets::muse_80_69(),
        presets::muse_80_67(),
        presets::muse_80_70(),
        presets::muse_268_256(),
    ] {
        let payload = Word::mask(code.k_bits()) ^ (Word::from(0x5A5Au64) << 7);
        let cw = code.encode(&payload);
        let corrupted = cw ^ *code.symbol_map().mask(1);
        group.bench_function(format!("{}/encode", code.name()), |b| {
            b.iter(|| black_box(code.encode(black_box(&payload))))
        });
        group.bench_function(format!("{}/decode_clean", code.name()), |b| {
            b.iter(|| black_box(code.decode(black_box(&cw))))
        });
        group.bench_function(format!("{}/decode_correct", code.name()), |b| {
            b.iter(|| black_box(code.decode(black_box(&corrupted))))
        });
    }
    group.finish();
}

fn rs_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs");
    for (s, n) in [(8u32, 144u32), (8, 80), (5, 144)] {
        let code = RsMemoryCode::new(s, n, 1).expect("geometry");
        let payload = Word::mask(code.data_bits());
        let cw = code.encode(&payload);
        let corrupted = cw ^ (Word::from(0x3u64) << 40);
        group.bench_function(format!("{}/encode", code.name()), |b| {
            b.iter(|| black_box(code.encode(black_box(&payload))))
        });
        group.bench_function(format!("{}/decode_clean", code.name()), |b| {
            b.iter(|| black_box(code.decode(black_box(&cw))))
        });
        group.bench_function(format!("{}/decode_correct", code.name()), |b| {
            b.iter(|| black_box(code.decode(black_box(&corrupted))))
        });
    }
    group.finish();
}

fn erasure_recovery(c: &mut Criterion) {
    let code = presets::muse_80_69();
    let payload = Word::from(0x0123_4567_89ABu64);
    let cw = code.encode(&payload);
    let corrupted = cw ^ *code.symbol_map().mask(4) ^ *code.symbol_map().mask(5);
    c.bench_function("muse/erasure_pair_recovery", |b| {
        b.iter_batched(
            || corrupted,
            |w| black_box(code.recover_erasures(&w, &[4, 5])),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, muse_codecs, rs_codecs, erasure_recovery);
criterion_main!(benches);
