//! Property tests: `WideUint<2>` against `u128` as a reference model, plus
//! width-independent algebraic laws on `WideUint<5>`.

use muse_wideint::{SignedWide, U128, U320};
use proptest::prelude::*;

fn to_u128(x: U128) -> u128 {
    x.to_u128().expect("U128 always fits u128")
}

proptest! {
    #[test]
    fn add_matches_u128(a: u128, b: u128) {
        let (wide, overflow) = U128::from(a).overflowing_add(&U128::from(b));
        let (reference, ref_overflow) = a.overflowing_add(b);
        prop_assert_eq!(to_u128(wide), reference);
        prop_assert_eq!(overflow, ref_overflow);
    }

    #[test]
    fn sub_matches_u128(a: u128, b: u128) {
        let (wide, borrow) = U128::from(a).overflowing_sub(&U128::from(b));
        let (reference, ref_borrow) = a.overflowing_sub(b);
        prop_assert_eq!(to_u128(wide), reference);
        prop_assert_eq!(borrow, ref_borrow);
    }

    #[test]
    fn mul_matches_u128(a: u128, b: u128) {
        let wide = U128::from(a).wrapping_mul(&U128::from(b));
        prop_assert_eq!(to_u128(wide), a.wrapping_mul(b));
    }

    #[test]
    fn widening_mul_matches_u64_squares(a: u64, b: u64) {
        let (lo, hi) = U128::from(a).widening_mul(&U128::from(b));
        prop_assert_eq!(to_u128(lo), a as u128 * b as u128);
        prop_assert!(hi.is_zero());
    }

    #[test]
    fn shifts_match_u128(a: u128, n in 0u32..128) {
        prop_assert_eq!(to_u128(U128::from(a) << n), a << n);
        prop_assert_eq!(to_u128(U128::from(a) >> n), a >> n);
    }

    #[test]
    fn div_rem_matches_u128(a: u128, b in 1u64..) {
        let (q, r) = U128::from(a).div_rem_u64(b);
        prop_assert_eq!(to_u128(q), a / b as u128);
        prop_assert_eq!(r as u128, a % b as u128);
        prop_assert_eq!(U128::from(a).rem_u64(b) as u128, a % b as u128);
    }

    #[test]
    fn cmp_matches_u128(a: u128, b: u128) {
        prop_assert_eq!(U128::from(a).cmp(&U128::from(b)), a.cmp(&b));
    }

    #[test]
    fn bitops_match_u128(a: u128, b: u128) {
        prop_assert_eq!(to_u128(U128::from(a) & U128::from(b)), a & b);
        prop_assert_eq!(to_u128(U128::from(a) | U128::from(b)), a | b);
        prop_assert_eq!(to_u128(U128::from(a) ^ U128::from(b)), a ^ b);
        prop_assert_eq!(to_u128(!U128::from(a)), !a);
    }

    #[test]
    fn bit_len_counts(a: u128) {
        prop_assert_eq!(U128::from(a).bit_len(), 128 - a.leading_zeros());
        prop_assert_eq!(U128::from(a).count_ones(), a.count_ones());
    }

    #[test]
    fn decimal_roundtrip(a: u128) {
        let x = U128::from(a);
        let s = x.to_decimal_string();
        prop_assert_eq!(s.parse::<U128>().unwrap(), x);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn hex_roundtrip(limbs: [u64; 5]) {
        let x = U320::from_limbs(limbs);
        let s = format!("{x:x}");
        prop_assert_eq!(U320::from_str_radix(&s, 16).unwrap(), x);
    }

    // --- Width-independent laws on 320-bit values ---

    #[test]
    fn add_commutes_320(a: [u64; 5], b: [u64; 5]) {
        let (a, b) = (U320::from_limbs(a), U320::from_limbs(b));
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_distributes_320(a: [u64; 5], b: [u64; 5], c: [u64; 5]) {
        let (a, b, c) = (U320::from_limbs(a), U320::from_limbs(b), U320::from_limbs(c));
        let left = a.wrapping_mul(&b.wrapping_add(&c));
        let right = a.wrapping_mul(&b).wrapping_add(&a.wrapping_mul(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn div_rem_reconstructs_320(a: [u64; 5], b: [u64; 5]) {
        let (a, b) = (U320::from_limbs(a), U320::from_limbs(b));
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(&b).wrapping_add(&r), a);
    }

    #[test]
    fn widening_mul_shift_consistency(a: [u64; 5], k in 0u32..320) {
        // a * 2^k == (a << k) when no overflow occurs.
        let a = U320::from_limbs(a);
        let (lo, hi) = a.widening_mul(&U320::pow2(k));
        if hi.is_zero() {
            prop_assert_eq!(lo, a << k);
        } else {
            // Overflow must be consistent with bit length.
            prop_assert!(a.bit_len() + k > 320);
        }
    }

    #[test]
    fn signed_add_matches_i128(a in -(1i128 << 100)..(1i128 << 100),
                               b in -(1i128 << 100)..(1i128 << 100)) {
        let sa = signed_from_i128(a);
        let sb = signed_from_i128(b);
        prop_assert_eq!((sa + sb).to_i128(), Some(a + b));
        prop_assert_eq!((sa - sb).to_i128(), Some(a - b));
    }

    #[test]
    fn signed_rem_euclid_matches(a in -(1i128 << 100)..(1i128 << 100), m in 1u64..1 << 40) {
        let sa = signed_from_i128(a);
        prop_assert_eq!(sa.rem_euclid_u64(m) as i128, a.rem_euclid(m as i128));
    }

    #[test]
    fn signed_apply_unapply(word: [u64; 5], e in -(1i128 << 90)..(1i128 << 90)) {
        let w = U320::from_limbs(word);
        let se = signed_from_i128(e);
        prop_assert_eq!(se.unapply_from(&se.apply_to(&w)), w);
    }
}

fn signed_from_i128(v: i128) -> SignedWide<5> {
    SignedWide::new(U320::from(v.unsigned_abs()), v < 0)
}
