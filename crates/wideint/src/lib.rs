//! Fixed-width wide integers used throughout the MUSE ECC reproduction.
//!
//! Codewords in the paper are 80–268 bits and the Lemire fast-modulo inverse
//! constants are up to ~157 bits, with intermediate products up to ~600 bits,
//! so `u128` is insufficient. [`WideUint`] is a little-endian array of `u64`
//! limbs with value semantics (`Copy`), full arithmetic, shifting, bit
//! manipulation, and radix-10/16 conversion. [`SignedWide`] is a
//! sign-magnitude wrapper used for error values, which are signed sums of
//! powers of two.
//!
//! # Examples
//!
//! ```
//! use muse_wideint::U320;
//!
//! let m = U320::from(4065u64);
//! let x = U320::from(123_456_789u64);
//! let (q, r) = x.div_rem_u64(4065);
//! assert_eq!(q * m + U320::from(r), x);
//! ```

mod fmt;
mod parse;
mod signed;
mod uint;

pub use parse::ParseWideUintError;
pub use signed::SignedWide;
pub use uint::{TryFromWideUintError, WideUint};

/// 128-bit wide integer (2 limbs); mostly used in tests against `u128`.
pub type U128 = WideUint<2>;
/// 192-bit wide integer (3 limbs).
pub type U192 = WideUint<3>;
/// 320-bit wide integer (5 limbs): the default codeword/constant carrier.
///
/// Large enough for the 268-bit PIM codeword and every Table III inverse.
pub type U320 = WideUint<5>;
/// 640-bit wide integer (10 limbs): holds any `U320 × U320` product.
pub type U640 = WideUint<10>;

/// Signed 320-bit value: the default error-value carrier.
pub type I320 = SignedWide<5>;
