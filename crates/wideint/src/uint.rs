//! The [`WideUint`] fixed-width unsigned integer.

use core::cmp::Ordering;
use core::ops::{Add, BitAnd, BitOr, BitXor, Mul, Not, Shl, Shr, Sub};

/// A fixed-width unsigned integer of `L × 64` bits, stored as little-endian
/// `u64` limbs.
///
/// Arithmetic follows the conventions of the primitive unsigned integers:
/// the `Add`/`Sub`/`Mul` operators panic on overflow (in all build profiles),
/// while `wrapping_*`, `checked_*`, and `overflowing_*` methods provide the
/// usual explicit alternatives.
///
/// # Examples
///
/// ```
/// use muse_wideint::WideUint;
///
/// let a: WideUint<4> = WideUint::from(7u64);
/// let b = a << 130; // beyond u128 range
/// assert_eq!(b >> 130, a);
/// assert_eq!(b.bit_len(), 133);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideUint<const L: usize> {
    pub(crate) limbs: [u64; L],
}

impl<const L: usize> Default for WideUint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> WideUint<L> {
    /// The value `0`.
    pub const ZERO: Self = Self { limbs: [0; L] };

    /// The value `1`.
    pub const ONE: Self = {
        let mut limbs = [0; L];
        limbs[0] = 1;
        Self { limbs }
    };

    /// The largest representable value (all bits set).
    pub const MAX: Self = Self {
        limbs: [u64::MAX; L],
    };

    /// Total number of bits in the representation.
    pub const BITS: u32 = 64 * L as u32;

    /// Creates a value from raw little-endian limbs.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_wideint::WideUint;
    /// let x = WideUint::from_limbs([3, 1]);
    /// assert_eq!(x, (WideUint::<2>::ONE << 64) | WideUint::from(3u64));
    /// ```
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        Self { limbs }
    }

    /// Returns the raw little-endian limbs.
    pub const fn to_limbs(self) -> [u64; L] {
        self.limbs
    }

    /// Returns `2^i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BITS`.
    pub fn pow2(i: u32) -> Self {
        assert!(i < Self::BITS, "pow2 exponent {i} out of range");
        let mut out = Self::ZERO;
        out.limbs[(i / 64) as usize] = 1u64 << (i % 64);
        out
    }

    /// Returns a mask with the low `n` bits set.
    ///
    /// # Panics
    ///
    /// Panics if `n > Self::BITS`.
    pub fn mask(n: u32) -> Self {
        assert!(n <= Self::BITS, "mask width {n} out of range");
        if n == Self::BITS {
            return Self::MAX;
        }
        let mut out = Self::ZERO;
        let full = (n / 64) as usize;
        for limb in out.limbs.iter_mut().take(full) {
            *limb = u64::MAX;
        }
        if !n.is_multiple_of(64) {
            out.limbs[full] = (1u64 << (n % 64)) - 1;
        }
        out
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Value of bit `i` (`false` when out of range).
    pub fn bit(&self, i: u32) -> bool {
        if i >= Self::BITS {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BITS`.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        assert!(i < Self::BITS, "bit index {i} out of range");
        let limb = &mut self.limbs[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BITS`.
    pub fn toggle_bit(&mut self, i: u32) {
        assert!(i < Self::BITS, "bit index {i} out of range");
        self.limbs[(i / 64) as usize] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// Number of leading zero bits.
    pub fn leading_zeros(&self) -> u32 {
        let mut zeros = 0;
        for &limb in self.limbs.iter().rev() {
            if limb == 0 {
                zeros += 64;
            } else {
                return zeros + limb.leading_zeros();
            }
        }
        zeros
    }

    /// Number of trailing zero bits (`Self::BITS` for zero).
    pub fn trailing_zeros(&self) -> u32 {
        let mut zeros = 0;
        for &limb in self.limbs.iter() {
            if limb == 0 {
                zeros += 64;
            } else {
                return zeros + limb.trailing_zeros();
            }
        }
        zeros
    }

    /// Position of the highest set bit plus one (`0` for zero).
    pub fn bit_len(&self) -> u32 {
        Self::BITS - self.leading_zeros()
    }

    /// Addition reporting overflow.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        let mut out = Self::ZERO;
        let mut carry = false;
        for i in 0..L {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out.limbs[i] = s2;
            carry = c1 | c2;
        }
        (out, carry)
    }

    /// Subtraction reporting borrow.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        let mut out = Self::ZERO;
        let mut borrow = false;
        for i in 0..L {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out.limbs[i] = d2;
            borrow = b1 | b2;
        }
        (out, borrow)
    }

    /// Wrapping (modulo `2^BITS`) addition.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping (modulo `2^BITS`) subtraction.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition (`None` on overflow).
    pub fn checked_add(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction (`None` on underflow).
    pub fn checked_sub(&self, rhs: &Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full-width multiplication: returns `(low, high)` halves of the
    /// `2 × BITS`-bit product.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_wideint::U128;
    /// let a = U128::from(u64::MAX);
    /// let (lo, hi) = a.widening_mul(&a);
    /// assert_eq!(lo.to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    /// assert!(hi.is_zero());
    /// ```
    pub fn widening_mul(&self, rhs: &Self) -> (Self, Self) {
        let mut lo = Self::ZERO;
        let mut hi = Self::ZERO;
        for i in 0..L {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for j in 0..L {
                let pos = i + j;
                let p = self.limbs[i] as u128 * rhs.limbs[j] as u128;
                let cur =
                    Self::get2(&lo, &hi, pos) as u128 + (p & 0xFFFF_FFFF_FFFF_FFFF) + carry as u128;
                Self::set2(&mut lo, &mut hi, pos, cur as u64);
                carry = ((p >> 64) + (cur >> 64)) as u64;
            }
            // Propagate the final carry into limb i + L.
            let mut pos = i + L;
            while carry != 0 && pos < 2 * L {
                let cur = Self::get2(&lo, &hi, pos) as u128 + carry as u128;
                Self::set2(&mut lo, &mut hi, pos, cur as u64);
                carry = (cur >> 64) as u64;
                pos += 1;
            }
        }
        (lo, hi)
    }

    fn get2(lo: &Self, hi: &Self, pos: usize) -> u64 {
        if pos < L {
            lo.limbs[pos]
        } else {
            hi.limbs[pos - L]
        }
    }

    fn set2(lo: &mut Self, hi: &mut Self, pos: usize, v: u64) {
        if pos < L {
            lo.limbs[pos] = v;
        } else {
            hi.limbs[pos - L] = v;
        }
    }

    /// Wrapping multiplication (low half of the full product).
    pub fn wrapping_mul(&self, rhs: &Self) -> Self {
        self.widening_mul(rhs).0
    }

    /// Checked multiplication (`None` if the product overflows).
    pub fn checked_mul(&self, rhs: &Self) -> Option<Self> {
        let (lo, hi) = self.widening_mul(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Multiplies by a single 64-bit limb, reporting the carried-out limb.
    pub fn overflowing_mul_u64(&self, rhs: u64) -> (Self, u64) {
        let mut out = Self::ZERO;
        let mut carry: u64 = 0;
        for i in 0..L {
            let p = self.limbs[i] as u128 * rhs as u128 + carry as u128;
            out.limbs[i] = p as u64;
            carry = (p >> 64) as u64;
        }
        (out, carry)
    }

    /// Shift left; bits shifted past the top are discarded.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Self::BITS` (like primitive shifts).
    pub fn shl(&self, n: u32) -> Self {
        assert!(n < Self::BITS, "shift amount {n} out of range");
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = Self::ZERO;
        for i in (limb_shift..L).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift != 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Shift right.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Self::BITS` (like primitive shifts).
    pub fn shr(&self, n: u32) -> Self {
        assert!(n < Self::BITS, "shift amount {n} out of range");
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = Self::ZERO;
        for i in 0..L - limb_shift {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift != 0 && i + limb_shift + 1 < L {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Quotient and remainder of division by a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_wideint::U320;
    /// let x = U320::pow2(156);
    /// let (q, r) = x.div_rem_u64(4065);
    /// assert_eq!(
    ///     q.to_string(),
    ///     "22470812382086453231913973442747278899998962"
    /// );
    /// assert_eq!(r, 3406);
    /// ```
    pub fn div_rem_u64(&self, rhs: u64) -> (Self, u64) {
        assert!(rhs != 0, "division by zero");
        let mut out = Self::ZERO;
        let mut rem: u64 = 0;
        for i in (0..L).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            out.limbs[i] = (cur / rhs as u128) as u64;
            rem = (cur % rhs as u128) as u64;
        }
        (out, rem)
    }

    /// Remainder of division by a `u64` (Horner over limbs).
    ///
    /// # Panics
    ///
    /// Panics if `rhs == 0`.
    pub fn rem_u64(&self, rhs: u64) -> u64 {
        assert!(rhs != 0, "division by zero");
        let mut rem: u64 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((((rem as u128) << 64) | limb as u128) % rhs as u128) as u64;
        }
        rem
    }

    /// Quotient and remainder of division by another wide integer
    /// (simple shift-subtract long division).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Self) -> (Self, Self) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (Self::ZERO, *self);
        }
        if let Some(small) = rhs.to_u64() {
            let (q, r) = self.div_rem_u64(small);
            return (q, Self::from_u64(r));
        }
        let mut quotient = Self::ZERO;
        let mut remainder = Self::ZERO;
        for i in (0..self.bit_len()).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder.limbs[0] |= 1;
            }
            if remainder >= *rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient.set_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    /// Converts from `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0; L];
        limbs[0] = v;
        Self { limbs }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if L >= 2 && self.limbs[2..].iter().any(|&l| l != 0) {
            return None;
        }
        let hi = if L >= 2 { self.limbs[1] } else { 0 };
        Some(((hi as u128) << 64) | self.limbs[0] as u128)
    }

    /// Re-sizes into a different limb count, returning `None` if the value
    /// does not fit in the target width.
    pub fn resize<const M: usize>(&self) -> Option<WideUint<M>> {
        let mut out = WideUint::<M>::ZERO;
        for i in 0..L {
            if i < M {
                out.limbs[i] = self.limbs[i];
            } else if self.limbs[i] != 0 {
                return None;
            }
        }
        Some(out)
    }
}

impl<const L: usize> Ord for WideUint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const L: usize> PartialOrd for WideUint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> From<u64> for WideUint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl<const L: usize> From<u32> for WideUint<L> {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

/// Error converting a [`WideUint`] into a narrower primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryFromWideUintError(pub(crate) ());

impl core::fmt::Display for TryFromWideUintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "wide integer too large for the target type")
    }
}

impl std::error::Error for TryFromWideUintError {}

impl<const L: usize> TryFrom<WideUint<L>> for u64 {
    type Error = TryFromWideUintError;

    fn try_from(v: WideUint<L>) -> Result<Self, Self::Error> {
        v.to_u64().ok_or(TryFromWideUintError(()))
    }
}

impl<const L: usize> TryFrom<WideUint<L>> for u128 {
    type Error = TryFromWideUintError;

    fn try_from(v: WideUint<L>) -> Result<Self, Self::Error> {
        v.to_u128().ok_or(TryFromWideUintError(()))
    }
}

impl<const L: usize> From<u128> for WideUint<L> {
    /// # Panics
    ///
    /// Panics if `L < 2` and the value does not fit.
    fn from(v: u128) -> Self {
        let mut out = Self::ZERO;
        out.limbs[0] = v as u64;
        let hi = (v >> 64) as u64;
        if hi != 0 {
            assert!(L >= 2, "u128 value does not fit in one limb");
            out.limbs[1] = hi;
        }
        out
    }
}

impl<const L: usize> Add for WideUint<L> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(&rhs).expect("WideUint add overflow")
    }
}

impl<const L: usize> Sub for WideUint<L> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.checked_sub(&rhs).expect("WideUint sub underflow")
    }
}

impl<const L: usize> Mul for WideUint<L> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul(&rhs).expect("WideUint mul overflow")
    }
}

impl<const L: usize> Shl<u32> for WideUint<L> {
    type Output = Self;
    fn shl(self, n: u32) -> Self {
        WideUint::shl(&self, n)
    }
}

impl<const L: usize> Shr<u32> for WideUint<L> {
    type Output = Self;
    fn shr(self, n: u32) -> Self {
        WideUint::shr(&self, n)
    }
}

impl<const L: usize> BitAnd for WideUint<L> {
    type Output = Self;
    fn bitand(mut self, rhs: Self) -> Self {
        for i in 0..L {
            self.limbs[i] &= rhs.limbs[i];
        }
        self
    }
}

impl<const L: usize> BitOr for WideUint<L> {
    type Output = Self;
    fn bitor(mut self, rhs: Self) -> Self {
        for i in 0..L {
            self.limbs[i] |= rhs.limbs[i];
        }
        self
    }
}

impl<const L: usize> BitXor for WideUint<L> {
    type Output = Self;
    fn bitxor(mut self, rhs: Self) -> Self {
        for i in 0..L {
            self.limbs[i] ^= rhs.limbs[i];
        }
        self
    }
}

impl<const L: usize> Not for WideUint<L> {
    type Output = Self;
    fn not(mut self) -> Self {
        for limb in self.limbs.iter_mut() {
            *limb = !*limb;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{U128, U320};

    #[test]
    fn constants() {
        assert!(U320::ZERO.is_zero());
        assert_eq!(U320::ONE.to_u64(), Some(1));
        assert_eq!(U320::MAX.count_ones(), 320);
        assert_eq!(U320::BITS, 320);
    }

    #[test]
    fn pow2_and_mask() {
        assert_eq!(U320::pow2(0), U320::ONE);
        assert_eq!(U320::pow2(200).bit_len(), 201);
        assert_eq!(U320::mask(0), U320::ZERO);
        assert_eq!(U320::mask(64).to_u128(), Some(u64::MAX as u128));
        assert_eq!(U320::mask(320), U320::MAX);
        assert_eq!(U320::mask(80).count_ones(), 80);
    }

    #[test]
    fn bit_manipulation() {
        let mut x = U320::ZERO;
        x.set_bit(131, true);
        assert!(x.bit(131));
        assert_eq!(x, U320::pow2(131));
        x.toggle_bit(131);
        assert!(x.is_zero());
        assert!(!U320::ONE.bit(1000)); // out of range reads as false
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U320::from(0xDEAD_BEEF_u64);
        let b = U320::pow2(255);
        assert_eq!((a + b) - b, a);
        assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }

    #[test]
    fn overflow_reported() {
        assert!(U320::MAX.checked_add(&U320::ONE).is_none());
        assert!(U320::ZERO.checked_sub(&U320::ONE).is_none());
        assert_eq!(U320::MAX.wrapping_add(&U320::ONE), U320::ZERO);
    }

    #[test]
    #[should_panic(expected = "add overflow")]
    fn add_panics_on_overflow() {
        let _ = U320::MAX + U320::ONE;
    }

    #[test]
    fn widening_mul_matches_u128() {
        let a = U128::from(u64::MAX as u128);
        let b = U128::from(12345u64);
        let (lo, _hi) = a.widening_mul(&b);
        assert_eq!(lo.to_u128(), Some(u64::MAX as u128 * 12345));
    }

    #[test]
    fn widening_mul_high_half() {
        // (2^100)^2 = 2^200
        let a = U320::pow2(100);
        let (lo, hi) = a.widening_mul(&a);
        assert_eq!(lo, U320::pow2(200));
        assert!(hi.is_zero());
        // (2^200)^2 = 2^400 -> bit 80 of the high half
        let b = U320::pow2(200);
        let (lo, hi) = b.widening_mul(&b);
        assert!(lo.is_zero());
        assert_eq!(hi, U320::pow2(80));
    }

    #[test]
    fn mul_u64_carry() {
        let a = U128::from(u64::MAX);
        let (lo, carry) = a.overflowing_mul_u64(u64::MAX);
        let expect = u64::MAX as u128 * u64::MAX as u128;
        assert_eq!(lo.to_u128(), Some(expect));
        assert_eq!(carry, 0);
        let b = U128::MAX;
        let (_, carry) = b.overflowing_mul_u64(2);
        assert_eq!(carry, 1);
    }

    #[test]
    fn shifts() {
        let x = U320::from(0b1011u64);
        assert_eq!(x.shl(70).shr(70), x);
        assert_eq!(x.shl(1).to_u64(), Some(0b10110));
        // Bits shifted past the top are discarded.
        assert_eq!(U320::pow2(319).shl(1), U320::ZERO);
    }

    #[test]
    fn div_rem_u64_basics() {
        let x = U320::from(1_000_003u64);
        let (q, r) = x.div_rem_u64(4065);
        assert_eq!(q.to_u64(), Some(1_000_003 / 4065));
        assert_eq!(r, 1_000_003 % 4065);
        assert_eq!(x.rem_u64(4065), r);
    }

    #[test]
    fn div_rem_wide() {
        let x = U320::pow2(300) + U320::from(987654321u64);
        let d = U320::pow2(100) + U320::from(17u64);
        let (q, r) = x.div_rem(&d);
        assert!(r < d);
        assert_eq!(q * d + r, x);
    }

    #[test]
    fn div_rem_small_divisor_fallback() {
        let x = U320::pow2(250);
        let (q, r) = x.div_rem(&U320::from(4065u64));
        let (q2, r2) = x.div_rem_u64(4065);
        assert_eq!(q, q2);
        assert_eq!(r.to_u64(), Some(r2));
    }

    #[test]
    fn ordering() {
        assert!(U320::pow2(200) > U320::pow2(199));
        assert!(U320::from(5u64) < U320::from(6u64));
        assert_eq!(U320::from(5u64).cmp(&U320::from(5u64)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(U320::from(7u32).to_u64(), Some(7));
        assert_eq!(U320::pow2(64).to_u64(), None);
        assert_eq!(U320::pow2(127).to_u128(), Some(1u128 << 127));
        assert_eq!(U320::pow2(128).to_u128(), None);
        let x = U320::pow2(150);
        let y: Option<crate::U192> = x.resize();
        assert_eq!(y.unwrap().bit_len(), 151);
        let z: Option<U128> = x.resize();
        assert!(z.is_none());
    }

    #[test]
    fn try_from_conversions() {
        assert_eq!(u64::try_from(U320::from(7u64)), Ok(7));
        assert!(u64::try_from(U320::pow2(64)).is_err());
        assert_eq!(u128::try_from(U320::pow2(100)), Ok(1u128 << 100));
        assert!(u128::try_from(U320::pow2(128)).is_err());
        let e = u64::try_from(U320::MAX).unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn leading_trailing() {
        assert_eq!(U320::ZERO.leading_zeros(), 320);
        assert_eq!(U320::ZERO.trailing_zeros(), 320);
        assert_eq!(U320::pow2(131).trailing_zeros(), 131);
        assert_eq!(U320::pow2(131).leading_zeros(), 320 - 132);
        assert_eq!(U320::ZERO.bit_len(), 0);
    }

    #[test]
    fn bitwise_ops() {
        let a = U320::mask(100);
        let b = U320::mask(50);
        assert_eq!(a & b, b);
        assert_eq!(a | b, a);
        assert_eq!((a ^ b).count_ones(), 50);
        assert_eq!(!U320::ZERO, U320::MAX);
    }
}
