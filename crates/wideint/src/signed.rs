//! Sign-magnitude signed wide integers.

use core::cmp::Ordering;
use core::ops::{Add, Neg, Sub};

use crate::WideUint;

/// A signed value stored as sign + magnitude, used for ECC error values
/// (`e = Σ ±2^i`).
///
/// Zero is canonical: its sign is always positive, so `Eq`/`Hash` behave as
/// expected.
///
/// # Examples
///
/// ```
/// use muse_wideint::{SignedWide, WideUint};
///
/// type I = SignedWide<5>;
/// let a = I::from_bit(3, true);  // +8  (a 0->1 flip of bit 3)
/// let b = I::from_bit(1, false); // -2  (a 1->0 flip of bit 1)
/// assert_eq!((a + b).to_i128(), Some(6));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SignedWide<const L: usize> {
    magnitude: WideUint<L>,
    negative: bool,
}

impl<const L: usize> SignedWide<L> {
    /// The value `0`.
    pub const ZERO: Self = Self {
        magnitude: WideUint::ZERO,
        negative: false,
    };

    /// Creates a value from a magnitude and sign, normalizing zero.
    pub fn new(magnitude: WideUint<L>, negative: bool) -> Self {
        Self {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// The signed value of a single bit flip at position `i`:
    /// `+2^i` for a 0→1 flip (`rising = true`), `-2^i` for a 1→0 flip.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WideUint::<L>::BITS`.
    pub fn from_bit(i: u32, rising: bool) -> Self {
        Self::new(WideUint::pow2(i), !rising)
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &WideUint<L> {
        &self.magnitude
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// Mathematical remainder in `[0, m)` (i.e. `((self mod m) + m) mod m`).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn rem_euclid_u64(&self, m: u64) -> u64 {
        let r = self.magnitude.rem_u64(m);
        if self.negative && r != 0 {
            m - r
        } else {
            r
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        if self.negative {
            if mag > i128::MAX as u128 + 1 {
                None
            } else if mag == i128::MAX as u128 + 1 {
                Some(i128::MIN)
            } else {
                Some(-(mag as i128))
            }
        } else if mag > i128::MAX as u128 {
            None
        } else {
            Some(mag as i128)
        }
    }

    /// Applies this value as an additive error to `word`, wrapping modulo
    /// `2^BITS`: returns `word + self`.
    pub fn apply_to(&self, word: &WideUint<L>) -> WideUint<L> {
        if self.negative {
            word.wrapping_sub(&self.magnitude)
        } else {
            word.wrapping_add(&self.magnitude)
        }
    }

    /// Removes this value from `word` (inverse of [`Self::apply_to`]):
    /// returns `word - self`.
    pub fn unapply_from(&self, word: &WideUint<L>) -> WideUint<L> {
        if self.negative {
            word.wrapping_add(&self.magnitude)
        } else {
            word.wrapping_sub(&self.magnitude)
        }
    }
}

impl<const L: usize> From<i64> for SignedWide<L> {
    fn from(v: i64) -> Self {
        Self::new(WideUint::from(v.unsigned_abs()), v < 0)
    }
}

impl<const L: usize> Neg for SignedWide<L> {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(self.magnitude, !self.negative)
    }
}

impl<const L: usize> Add for SignedWide<L> {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if the magnitude overflows the fixed width.
    fn add(self, rhs: Self) -> Self {
        if self.negative == rhs.negative {
            Self::new(
                self.magnitude
                    .checked_add(&rhs.magnitude)
                    .expect("SignedWide add overflow"),
                self.negative,
            )
        } else {
            match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => Self::ZERO,
                Ordering::Greater => {
                    Self::new(self.magnitude.wrapping_sub(&rhs.magnitude), self.negative)
                }
                Ordering::Less => {
                    Self::new(rhs.magnitude.wrapping_sub(&self.magnitude), rhs.negative)
                }
            }
        }
    }
}

impl<const L: usize> Sub for SignedWide<L> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl<const L: usize> Ord for SignedWide<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl<const L: usize> PartialOrd for SignedWide<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {

    use crate::{I320, U320};

    #[test]
    fn zero_is_canonical() {
        let z1 = I320::new(U320::ZERO, true);
        let z2 = I320::ZERO;
        assert_eq!(z1, z2);
        assert!(!z1.is_negative());
    }

    #[test]
    fn from_bit_signs() {
        assert_eq!(I320::from_bit(4, true).to_i128(), Some(16));
        assert_eq!(I320::from_bit(4, false).to_i128(), Some(-16));
    }

    #[test]
    fn add_mixed_signs() {
        let a = I320::from(100);
        let b = I320::from(-30);
        assert_eq!((a + b).to_i128(), Some(70));
        assert_eq!((b + a).to_i128(), Some(70));
        assert_eq!((a + (-a)).to_i128(), Some(0));
        assert_eq!((b + b).to_i128(), Some(-60));
    }

    #[test]
    fn sub_and_neg() {
        let a = I320::from(5);
        let b = I320::from(9);
        assert_eq!((a - b).to_i128(), Some(-4));
        assert_eq!((-(a - b)).to_i128(), Some(4));
    }

    #[test]
    fn rem_euclid() {
        assert_eq!(I320::from(-2).rem_euclid_u64(4065), 4063);
        assert_eq!(I320::from(2).rem_euclid_u64(4065), 2);
        assert_eq!(I320::from(-4065).rem_euclid_u64(4065), 0);
        assert_eq!(I320::ZERO.rem_euclid_u64(7), 0);
    }

    #[test]
    fn apply_roundtrip() {
        let w = U320::from(0b1111_0011u64); // 243, the paper's Section II example
        let e = I320::from(-2); // bit 1 flips 1 -> 0
        let corrupted = e.apply_to(&w);
        assert_eq!(corrupted.to_u64(), Some(241));
        assert_eq!(e.unapply_from(&corrupted), w);
    }

    #[test]
    fn apply_positive_error() {
        let w = U320::from(972u64);
        let e = I320::from(2);
        assert_eq!(e.apply_to(&w).to_u64(), Some(974));
    }

    #[test]
    fn ordering() {
        let vals = [-10i64, -1, 0, 1, 10];
        for (i, &a) in vals.iter().enumerate() {
            for (j, &b) in vals.iter().enumerate() {
                assert_eq!(I320::from(a).cmp(&I320::from(b)), i.cmp(&j), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn i128_bounds() {
        let big = I320::new(U320::pow2(200), true);
        assert_eq!(big.to_i128(), None);
        assert_eq!(I320::new(U320::pow2(127), true).to_i128(), Some(i128::MIN));
    }
}
