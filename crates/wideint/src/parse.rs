//! Radix conversion for [`WideUint`].

use core::fmt;
use core::str::FromStr;

use crate::WideUint;

/// Error parsing a [`WideUint`] from a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseWideUintError {
    /// The input was empty.
    Empty,
    /// A character was not a digit of the requested radix.
    InvalidDigit(char),
    /// The value does not fit in the fixed width.
    Overflow,
}

impl fmt::Display for ParseWideUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot parse integer from empty string"),
            Self::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
            Self::Overflow => write!(f, "integer literal too large for the fixed width"),
        }
    }
}

impl std::error::Error for ParseWideUintError {}

impl<const L: usize> WideUint<L> {
    /// Parses a value from `s` in the given radix (2, 10, or 16).
    ///
    /// Underscores are accepted as digit separators. A `0x`/`0b` prefix is
    /// accepted when it matches the radix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseWideUintError`] for empty input, foreign characters, or
    /// values exceeding the fixed width.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is not 2, 10, or 16.
    ///
    /// # Examples
    ///
    /// ```
    /// use muse_wideint::U320;
    ///
    /// # fn main() -> Result<(), muse_wideint::ParseWideUintError> {
    /// let inverse = U320::from_str_radix(
    ///     "22470812382086453231913973442747278899998963", 10)?;
    /// assert_eq!(inverse.bit_len(), 145);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_str_radix(s: &str, radix: u32) -> Result<Self, ParseWideUintError> {
        assert!(
            matches!(radix, 2 | 10 | 16),
            "unsupported radix {radix} (expected 2, 10, or 16)"
        );
        let s = match radix {
            16 => s
                .strip_prefix("0x")
                .or_else(|| s.strip_prefix("0X"))
                .unwrap_or(s),
            2 => s
                .strip_prefix("0b")
                .or_else(|| s.strip_prefix("0B"))
                .unwrap_or(s),
            _ => s,
        };
        let mut out = Self::ZERO;
        let mut any = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let digit = c
                .to_digit(radix)
                .ok_or(ParseWideUintError::InvalidDigit(c))?;
            any = true;
            let (scaled, carry) = out.overflowing_mul_u64(radix as u64);
            if carry != 0 {
                return Err(ParseWideUintError::Overflow);
            }
            out = scaled
                .checked_add(&Self::from_u64(digit as u64))
                .ok_or(ParseWideUintError::Overflow)?;
        }
        if !any {
            return Err(ParseWideUintError::Empty);
        }
        Ok(out)
    }

    /// Formats the value in decimal.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = *self;
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.last().expect("nonzero value has chunks").to_string();
        for &chunk in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{chunk:019}"));
        }
        out
    }
}

impl<const L: usize> FromStr for WideUint<L> {
    type Err = ParseWideUintError;

    /// Parses a decimal literal (or hex with an explicit `0x` prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            Self::from_str_radix(s, 16)
        } else {
            Self::from_str_radix(s, 10)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::U320;

    #[test]
    fn parse_decimal() {
        let x: U320 = "123456789012345678901234567890".parse().unwrap();
        assert_eq!(x.to_decimal_string(), "123456789012345678901234567890");
    }

    #[test]
    fn parse_hex_and_binary() {
        assert_eq!(
            U320::from_str_radix("0xff", 16).unwrap().to_u64(),
            Some(255)
        );
        assert_eq!(
            U320::from_str_radix("0b1011", 2).unwrap().to_u64(),
            Some(11)
        );
        assert_eq!(
            U320::from_str_radix("dead_beef", 16).unwrap().to_u64(),
            Some(0xDEAD_BEEF)
        );
    }

    #[test]
    fn parse_errors() {
        assert_eq!(U320::from_str_radix("", 10), Err(ParseWideUintError::Empty));
        assert_eq!(
            U320::from_str_radix("12a", 10),
            Err(ParseWideUintError::InvalidDigit('a'))
        );
        assert_eq!(
            U320::from_str_radix("_", 10),
            Err(ParseWideUintError::Empty)
        );
        // 2^320 needs 97 decimal digits; a 100-digit number must overflow.
        let too_big = "9".repeat(100);
        assert_eq!(
            U320::from_str_radix(&too_big, 10),
            Err(ParseWideUintError::Overflow)
        );
    }

    #[test]
    fn table3_constants_roundtrip() {
        // The four inverse values of Table III must survive parse/print.
        for s in [
            "22470812382086453231913973442747278899998963",
            "77178306688614730355307",
            "1761878725188230243585305",
            "753922070210341214920295",
        ] {
            let x: U320 = s.parse().unwrap();
            assert_eq!(x.to_decimal_string(), s);
        }
    }

    #[test]
    fn zero_roundtrip() {
        assert_eq!(U320::ZERO.to_decimal_string(), "0");
        assert_eq!("0".parse::<U320>().unwrap(), U320::ZERO);
    }

    #[test]
    fn decimal_chunk_padding() {
        // A value whose low chunk has leading zeros exercises the padding.
        let x = U320::pow2(64); // 18446744073709551616
        assert_eq!(x.to_decimal_string(), "18446744073709551616");
    }
}
