//! `Display`/`Debug`/numeric formatting for the wide integer types.

use core::fmt;

use crate::{SignedWide, WideUint};

impl<const L: usize> fmt::Display for WideUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl<const L: usize> fmt::Debug for WideUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideUint<{L}>({self:#x})")
    }
}

impl<const L: usize> fmt::LowerHex for WideUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut started = false;
        for &limb in self.limbs.iter().rev() {
            if started {
                s.push_str(&format!("{limb:016x}"));
            } else if limb != 0 {
                s.push_str(&format!("{limb:x}"));
                started = true;
            }
        }
        if !started {
            s.push('0');
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl<const L: usize> fmt::UpperHex for WideUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:x}").to_uppercase();
        f.pad_integral(true, "0x", &s)
    }
}

impl<const L: usize> fmt::Binary for WideUint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut started = false;
        for &limb in self.limbs.iter().rev() {
            if started {
                s.push_str(&format!("{limb:064b}"));
            } else if limb != 0 {
                s.push_str(&format!("{limb:b}"));
                started = true;
            }
        }
        if !started {
            s.push('0');
        }
        f.pad_integral(true, "0b", &s)
    }
}

impl<const L: usize> fmt::Display for SignedWide<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(
            !self.is_negative(),
            "",
            &self.magnitude().to_decimal_string(),
        )
    }
}

impl<const L: usize> fmt::Debug for SignedWide<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignedWide<{L}>({self})")
    }
}

#[cfg(test)]
mod tests {
    use crate::{I320, U320};

    #[test]
    fn display_decimal() {
        assert_eq!(U320::from(4065u64).to_string(), "4065");
        assert_eq!(
            format!("{}", U320::pow2(87).div_rem_u64(2005).0 + U320::ONE),
            "77178306688614730355307"
        );
    }

    #[test]
    fn hex_and_binary() {
        let x = U320::from(0xABCDu64);
        assert_eq!(format!("{x:x}"), "abcd");
        assert_eq!(format!("{x:#x}"), "0xabcd");
        assert_eq!(format!("{x:X}"), "ABCD");
        assert_eq!(format!("{x:b}"), "1010101111001101");
        assert_eq!(format!("{:x}", U320::ZERO), "0");
        assert_eq!(format!("{:b}", U320::ZERO), "0");
    }

    #[test]
    fn hex_multi_limb_padding() {
        let x = U320::pow2(64) + U320::ONE;
        assert_eq!(format!("{x:x}"), "10000000000000001");
    }

    #[test]
    fn signed_display() {
        assert_eq!(I320::from(-42).to_string(), "-42");
        assert_eq!(I320::from(42).to_string(), "42");
        assert_eq!(I320::ZERO.to_string(), "0");
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", U320::ZERO).is_empty());
        assert!(!format!("{:?}", I320::ZERO).is_empty());
    }
}
