//! The memory-channel (bit-level) view of a Reed-Solomon code.

use muse_wideint::U320;

use crate::{RsCode, RsDecoded, RsError};

/// Bit-level codeword carrier, shared with the MUSE crates.
pub type Word = U320;

/// A Reed-Solomon code mapped onto an `n_bits`-wide memory channel.
///
/// The channel is carved into `s`-bit symbols starting at bit 0; when `s`
/// does not divide `n_bits`, the top symbol is partial (its unused high bits
/// are fixed at zero — a *shortened* code). Parity symbols occupy the low
/// `2t·s` bits, data the rest, so `data_bits = n_bits − 2t·s`.
///
/// # Examples
///
/// ```
/// use muse_rs::RsMemoryCode;
/// use muse_wideint::U320;
///
/// # fn main() -> Result<(), muse_rs::RsError> {
/// // The paper's RS(144,128) ChipKill baseline: 8-bit symbols, t = 1.
/// let rs = RsMemoryCode::new(8, 144, 1)?;
/// assert_eq!(rs.data_bits(), 128);
///
/// let payload = U320::from(0xFEED_F00D_u64);
/// let mut cw = rs.encode(&payload);
/// cw = cw ^ (U320::from(0xFFu64) << 40); // one full symbol fails
/// assert_eq!(rs.decode(&cw).payload(), Some(payload));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RsMemoryCode {
    rs: RsCode,
    symbol_bits: u32,
    n_bits: u32,
    data_bits: u32,
    top_symbol_bits: u32,
    /// The incremental-syndrome table, in the log domain:
    /// `log α^(l·p) = l·p mod (2^s − 1)` for symbol position `p` and
    /// syndrome index `l ∈ [0, 2t)`, flattened as
    /// `err_pow_logs[p · 2t + l]`. Because the code is linear, the
    /// syndromes of a corrupted codeword equal the syndromes of its error
    /// pattern alone, `S_l = Σ_p e_p · α^(l·p)` — and with the powers'
    /// logs precomputed, each term is a single antilog lookup
    /// (`S_l ^= α^(err_pow_logs[...] + log e_p)`) instead of a full
    /// table multiply.
    err_pow_logs: Vec<u16>,
}

/// Outcome of syndrome-domain single-symbol location (t = 1 codes): the
/// error-value view of [`RsMemoryCode::decode`] that never touches a
/// codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsFastLocate {
    /// All syndromes zero: the word reads back as-is.
    Clean,
    /// Detected-but-uncorrectable.
    Detected,
    /// The decoder would XOR `value` onto `symbol`.
    Correct {
        /// Located symbol position.
        symbol: usize,
        /// Error value the decoder removes.
        value: u16,
    },
}

/// Outcome of bit-level RS decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsMemoryDecoded {
    /// No error observed.
    Clean {
        /// The recovered payload.
        payload: Word,
    },
    /// Symbol errors corrected.
    Corrected {
        /// The recovered payload.
        payload: Word,
        /// `(symbol index, error value)` pairs.
        errors: Vec<(usize, u16)>,
    },
    /// Detected-but-uncorrectable error.
    Detected,
}

impl RsMemoryDecoded {
    /// The payload, if the word was clean or corrected.
    pub fn payload(&self) -> Option<Word> {
        match self {
            Self::Clean { payload } | Self::Corrected { payload, .. } => Some(*payload),
            Self::Detected => None,
        }
    }
}

impl RsMemoryCode {
    /// Builds the channel code: `s`-bit symbols over an `n_bits` channel,
    /// correcting up to `t` symbols.
    ///
    /// # Errors
    ///
    /// Propagates [`RsError`] for unsupported geometries.
    pub fn new(symbol_bits: u32, n_bits: u32, t: usize) -> Result<Self, RsError> {
        let n_sym = n_bits.div_ceil(symbol_bits) as usize;
        let k_sym = n_sym - 2 * t;
        let rs = RsCode::new(symbol_bits, n_sym, k_sym)?;
        let rem = n_bits % symbol_bits;
        let gf = rs.field();
        let err_pow_logs = (0..n_sym)
            .flat_map(|p| (0..2 * t).map(move |l| (p, l)))
            .map(|(p, l)| {
                let pow = gf.alpha_pow((l * p) as i64);
                gf.log(pow).expect("powers of α are nonzero") as u16
            })
            .collect();
        Ok(Self {
            rs,
            symbol_bits,
            n_bits,
            data_bits: n_bits - 2 * t as u32 * symbol_bits,
            top_symbol_bits: if rem == 0 { symbol_bits } else { rem },
            err_pow_logs,
        })
    }

    /// Channel width in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Payload width in bits.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Redundancy in bits (`2t·s`).
    pub fn parity_bits(&self) -> u32 {
        self.n_bits - self.data_bits
    }

    /// Symbol width in bits.
    pub fn symbol_bits(&self) -> u32 {
        self.symbol_bits
    }

    /// Number of symbols on the channel (including a partial top symbol).
    pub fn n_symbols(&self) -> usize {
        self.rs.n_symbols()
    }

    /// Width of the top symbol (less than `symbol_bits` for shortened fits).
    pub fn top_symbol_bits(&self) -> u32 {
        self.top_symbol_bits
    }

    /// The symbol-domain code underneath.
    pub fn inner(&self) -> &RsCode {
        &self.rs
    }

    /// `RS(n,k)` display name in bits, e.g. `RS(144,128)`.
    pub fn name(&self) -> String {
        format!("RS({},{})", self.n_bits, self.data_bits)
    }

    /// Splits a channel word into symbol values.
    pub fn to_symbols(&self, word: &Word) -> Vec<u16> {
        (0..self.rs.n_symbols())
            .map(|i| {
                let lo = i as u32 * self.symbol_bits;
                let width = self.width_of(i);
                ((*word >> lo) & Word::mask(width))
                    .to_u64()
                    .expect("symbol fits") as u16
            })
            .collect()
    }

    /// Packs symbol values back into a channel word.
    ///
    /// # Panics
    ///
    /// Panics if a symbol exceeds its slot width.
    pub fn from_symbols(&self, symbols: &[u16]) -> Word {
        assert_eq!(symbols.len(), self.rs.n_symbols());
        let mut word = Word::ZERO;
        for (i, &s) in symbols.iter().enumerate() {
            let width = self.width_of(i);
            assert!(
                (s as u64) < (1u64 << width),
                "symbol {i} value {s:#x} exceeds {width} bits"
            );
            word = word | (Word::from(s as u64) << (i as u32 * self.symbol_bits));
        }
        word
    }

    fn width_of(&self, i: usize) -> u32 {
        if i + 1 == self.rs.n_symbols() {
            self.top_symbol_bits
        } else {
            self.symbol_bits
        }
    }

    /// Encodes a payload of `data_bits` into an `n_bits` codeword.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `data_bits`.
    pub fn encode(&self, payload: &Word) -> Word {
        assert!(
            payload.bit_len() <= self.data_bits,
            "payload wider than the {}-bit data field",
            self.data_bits
        );
        let r = 2 * self.rs.t();
        // Scatter payload bits into the data symbol slots.
        let mut data = vec![0u16; self.rs.k_symbols()];
        let mut consumed = 0u32;
        for (i, slot) in data.iter_mut().enumerate() {
            let width = self.width_of(i + r);
            *slot = ((*payload >> consumed) & Word::mask(width))
                .to_u64()
                .expect("symbol fits") as u16;
            consumed += width;
        }
        debug_assert_eq!(consumed, self.data_bits);
        let cw = self.rs.encode(&data);
        self.from_symbols(&cw)
    }

    /// Extracts the payload of a codeword assumed error-free.
    pub fn payload_of(&self, codeword: &Word) -> Word {
        let r = 2 * self.rs.t();
        let symbols = self.to_symbols(codeword);
        let mut payload = Word::ZERO;
        let mut placed = 0u32;
        for (i, &s) in symbols.iter().enumerate().skip(r) {
            payload = payload | (Word::from(s as u64) << placed);
            placed += self.width_of(i);
        }
        payload
    }

    /// Incremental error-domain syndromes: the `2t` syndromes of any
    /// codeword corrupted by exactly `errors` (`(symbol, xor-value)` pairs,
    /// zero values allowed), computed from the `α^(l·p)` table without
    /// materializing — or even knowing — the codeword. Unused entries of
    /// the returned array stay zero.
    ///
    /// Linear-code identity: `syndromes(cw ⊕ e) = syndromes(e)` since
    /// `syndromes(cw) = 0`; cross-checked against
    /// [`RsCode::syndromes`](crate::RsCode::syndromes) by property tests.
    #[inline]
    pub fn error_syndromes(&self, errors: &[(usize, u16)]) -> [u16; 4] {
        let gf = self.rs.field();
        let r = 2 * self.rs.t();
        let mut synd = [0u16; 4];
        for &(sym, value) in errors {
            if value == 0 {
                continue;
            }
            let lv = gf.log(value).expect("nonzero value");
            let logs = &self.err_pow_logs[sym * r..(sym + 1) * r];
            for (s, &lp) in synd[..r].iter_mut().zip(logs) {
                *s ^= gf.exp_sum(lv, lp as u32);
            }
        }
        synd
    }

    /// Syndrome-domain single-symbol location for `t = 1` codes — the
    /// hot-loop form of [`Self::decode`]: same Clean / Detected / Correct
    /// decision (including the out-of-range rejection of shortened codes),
    /// with the caller applying the shortened-top-symbol content check.
    ///
    /// # Panics
    ///
    /// Panics if the code has `t ≠ 1`.
    #[inline]
    pub fn locate_single(&self, s0: u16, s1: u16) -> RsFastLocate {
        assert_eq!(self.rs.t(), 1, "locate_single is for t = 1 codes");
        if s0 == 0 && s1 == 0 {
            return RsFastLocate::Clean;
        }
        // A true single error e at position j has S0 = e ≠ 0 and
        // S1 = e·α^j ≠ 0; anything else is uncorrectable.
        if s0 == 0 || s1 == 0 {
            return RsFastLocate::Detected;
        }
        let gf = self.rs.field();
        let pos = gf.log(gf.div(s1, s0)).expect("nonzero ratio") as usize;
        if pos >= self.rs.n_symbols() {
            return RsFastLocate::Detected;
        }
        RsFastLocate::Correct {
            symbol: pos,
            value: s0,
        }
    }

    /// Decodes a channel word, correcting up to `t` symbol errors.
    ///
    /// A correction that sets bits beyond the partial top symbol's width is
    /// impossible in a shortened code and is reported as `Detected`.
    pub fn decode(&self, codeword: &Word) -> RsMemoryDecoded {
        let symbols = self.to_symbols(codeword);
        match self.rs.decode(&symbols) {
            RsDecoded::Clean { .. } => RsMemoryDecoded::Clean {
                payload: self.payload_of(codeword),
            },
            RsDecoded::Detected => RsMemoryDecoded::Detected,
            RsDecoded::Corrected { data, errors } => {
                // Shortened-code check: the top symbol may only hold
                // top_symbol_bits; corrections outside that range reveal a
                // multi-symbol error.
                let top = self.rs.n_symbols() - 1;
                for &(pos, val) in &errors {
                    let fixed = symbols[pos] ^ val;
                    if pos == top && (fixed as u64) >= (1u64 << self.top_symbol_bits) {
                        return RsMemoryDecoded::Detected;
                    }
                }
                let r = 2 * self.rs.t();
                let mut payload = Word::ZERO;
                let mut placed = 0u32;
                for (i, &s) in data.iter().enumerate() {
                    payload = payload | (Word::from(s as u64) << placed);
                    placed += self.width_of(i + r);
                }
                RsMemoryDecoded::Corrected { payload, errors }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        // Table IV row: RS over a 144-bit channel with s = 8, 7, 6, 5.
        for (s, data_bits, n_sym, top) in [
            (8u32, 128u32, 18usize, 8u32),
            (7, 130, 21, 4),
            (6, 132, 24, 6),
            (5, 134, 29, 4),
        ] {
            let rs = RsMemoryCode::new(s, 144, 1).unwrap();
            assert_eq!(rs.data_bits(), data_bits, "s={s}");
            assert_eq!(rs.n_symbols(), n_sym, "s={s}");
            assert_eq!(rs.top_symbol_bits(), top, "s={s}");
        }
        // The paper's DDR5 baseline RS(80,64) with x8 symbols.
        let rs = RsMemoryCode::new(8, 80, 1).unwrap();
        assert_eq!(rs.data_bits(), 64);
        assert_eq!(rs.name(), "RS(80,64)");
    }

    #[test]
    fn encode_roundtrip_all_geometries() {
        for s in [5u32, 6, 7, 8] {
            let rs = RsMemoryCode::new(s, 144, 1).unwrap();
            let payload = Word::mask(rs.data_bits());
            let cw = rs.encode(&payload);
            assert!(cw.bit_len() <= 144);
            assert_eq!(rs.payload_of(&cw), payload);
            assert_eq!(rs.decode(&cw).payload(), Some(payload), "s={s}");
        }
    }

    #[test]
    fn symbol_pack_unpack() {
        let rs = RsMemoryCode::new(5, 144, 1).unwrap();
        let word = Word::mask(144);
        let symbols = rs.to_symbols(&word);
        assert_eq!(symbols.len(), 29);
        assert_eq!(symbols[28], 0xF); // 4-bit top symbol
        assert_eq!(rs.from_symbols(&symbols), word);
    }

    #[test]
    fn corrects_full_symbol_failures() {
        let rs = RsMemoryCode::new(8, 144, 1).unwrap();
        let payload = Word::from(0x0123_4567_89AB_CDEFu64) | (Word::from(0x55AAu64) << 64);
        let cw = rs.encode(&payload);
        for sym in 0..18u32 {
            let corrupted = cw ^ (Word::from(0xFFu64) << (8 * sym));
            match rs.decode(&corrupted) {
                RsMemoryDecoded::Corrected { payload: p, errors } => {
                    assert_eq!(p, payload, "sym {sym}");
                    assert_eq!(errors, vec![(sym as usize, 0xFF)]);
                }
                other => panic!("sym {sym}: {other:?}"),
            }
        }
    }

    #[test]
    fn partial_top_symbol_errors_correct() {
        let rs = RsMemoryCode::new(5, 144, 1).unwrap();
        let payload = Word::mask(134) ^ (Word::from(0b1010u64) << 90);
        let cw = rs.encode(&payload);
        // Corrupt bits inside the 4-bit top symbol (bits 140..144).
        let corrupted = cw ^ (Word::from(0b1001u64) << 140);
        assert_eq!(rs.decode(&corrupted).payload(), Some(payload));
    }

    #[test]
    fn nibble_misalignment_breaks_chipkill_for_5bit_symbols() {
        // Section VII-A: with 5-bit RS symbols over x4 devices, a single
        // device (nibble) failure can span two RS symbols and defeat
        // single-symbol correction. Find such a nibble and demonstrate.
        let rs = RsMemoryCode::new(5, 144, 1).unwrap();
        let payload = Word::from(0x1357_9BDF_2468_ACE0u64);
        let cw = rs.encode(&payload);
        // Device 1 holds bits 4..8: bit 4 is in symbol 0, bits 5..8 in symbol 1.
        let corrupted = cw ^ (Word::from(0xFu64) << 4);
        match rs.decode(&corrupted) {
            RsMemoryDecoded::Clean { .. } => panic!("spanning error read clean"),
            RsMemoryDecoded::Corrected { payload: p, .. } => {
                assert_ne!(p, payload, "chipkill would require the right payload back")
            }
            RsMemoryDecoded::Detected => {}
        }
    }

    #[test]
    fn t2_memory_code() {
        let rs = RsMemoryCode::new(8, 144, 2).unwrap();
        assert_eq!(rs.data_bits(), 112);
        let payload = Word::from(0xDEAD_BEEFu64);
        let cw = rs.encode(&payload);
        let corrupted = cw ^ (Word::from(0x3Cu64) << 16) ^ (Word::from(0xA5u64) << 96);
        assert_eq!(rs.decode(&corrupted).payload(), Some(payload));
    }

    #[test]
    #[should_panic(expected = "payload wider")]
    fn oversized_payload_panics() {
        let rs = RsMemoryCode::new(8, 80, 1).unwrap();
        let _ = rs.encode(&Word::mask(65));
    }

    #[test]
    fn error_syndromes_match_wide_syndromes() {
        // Linear-code identity: syndromes(cw ⊕ e) == error_syndromes(e),
        // for every geometry and random payloads/errors.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (s, t) in [(8u32, 1usize), (5, 1), (8, 2)] {
            let rs = RsMemoryCode::new(s, 144, t).unwrap();
            for _ in 0..200 {
                let payload =
                    (Word::from(next()) | (Word::from(next()) << 64)) & Word::mask(rs.data_bits());
                let cw = rs.encode(&payload);
                let mut symbols = rs.to_symbols(&cw);
                let k = 1 + (next() % 3) as usize;
                let mut errors = Vec::new();
                for _ in 0..k {
                    let sym = (next() % rs.n_symbols() as u64) as usize;
                    if errors.iter().any(|&(e, _)| e == sym) {
                        continue;
                    }
                    let width = if sym + 1 == rs.n_symbols() {
                        rs.top_symbol_bits()
                    } else {
                        rs.symbol_bits()
                    };
                    let value = (next() & ((1 << width) - 1)) as u16;
                    symbols[sym] ^= value;
                    errors.push((sym, value));
                }
                let corrupted = rs.from_symbols(&symbols);
                let wide = rs.inner().syndromes(&rs.to_symbols(&corrupted));
                let fast = rs.error_syndromes(&errors);
                assert_eq!(&fast[..2 * t], wide.as_slice(), "s={s} t={t}");
            }
        }
    }

    #[test]
    fn locate_single_matches_wide_decode() {
        let rs = RsMemoryCode::new(8, 144, 1).unwrap();
        let payload = Word::from(0xA5A5_5A5A_DEAD_BEEFu64) | (Word::from(0x42u64) << 100);
        let cw = rs.encode(&payload);
        let mut state = 0xFACEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        for trial in 0..500 {
            let k = 1 + (trial % 3) as usize;
            let mut errors: Vec<(usize, u16)> = Vec::new();
            for _ in 0..k {
                let sym = (next() % 18) as usize;
                if errors.iter().any(|&(e, _)| e == sym) {
                    continue;
                }
                let value = 1 + (next() % 255) as u16;
                errors.push((sym, value));
            }
            let mut symbols = rs.to_symbols(&cw);
            for &(sym, value) in &errors {
                symbols[sym] ^= value;
            }
            let corrupted = rs.from_symbols(&symbols);
            let synd = rs.error_syndromes(&errors);
            let fast = rs.locate_single(synd[0], synd[1]);
            match (fast, rs.decode(&corrupted)) {
                (RsFastLocate::Clean, RsMemoryDecoded::Clean { .. }) => {}
                (RsFastLocate::Detected, RsMemoryDecoded::Detected) => {}
                (RsFastLocate::Correct { symbol, value }, wide) => {
                    // The wide decoder applies the same correction, except
                    // when the shortened-top-symbol check rejects it.
                    match wide {
                        RsMemoryDecoded::Corrected { errors: we, .. } => {
                            assert_eq!(we, vec![(symbol, value)], "trial {trial}");
                        }
                        RsMemoryDecoded::Detected => {
                            let fixed = symbols[symbol] ^ value;
                            assert!(
                                symbol == 17 && fixed >= 1 << rs.top_symbol_bits(),
                                "trial {trial}: only the top-symbol range check \
                                 may turn Correct into Detected"
                            );
                        }
                        other => panic!("trial {trial}: {fast:?} vs {other:?}"),
                    }
                }
                (fast, wide) => panic!("trial {trial}: fast {fast:?} vs wide {wide:?}"),
            }
        }
    }
}
