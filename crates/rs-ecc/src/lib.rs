//! Reed-Solomon baseline codes (the paper's comparator in Tables IV & V and
//! Figures 6 & 7).
//!
//! Two layers are provided:
//!
//! * [`RsCode`] — a classic systematic Reed-Solomon code over GF(2^s) with
//!   `2t` parity symbols and a PGZ decoder correcting up to `t ∈ {1, 2}`
//!   symbol errors (single-symbol correction is what commercial ChipKill
//!   uses; `t = 2` covers IBM-style double-device tolerance).
//! * [`RsMemoryCode`] — the memory-channel view: an `n_bits`-wide codeword
//!   (e.g. 144 or 80 bits) carved into `s`-bit symbols, with a possibly
//!   partial top symbol when `s ∤ n_bits` (exactly the misalignment the
//!   paper exploits to show 5/6/7-bit-symbol RS codes lose ChipKill).
//!
//! For Monte-Carlo hot loops, [`RsMemoryCode::error_syndromes`] and
//! [`RsMemoryCode::locate_single`] run the whole decode decision in the
//! error-value domain (GF syndromes of the corruption alone, one table
//! multiply per touched symbol) without materializing a codeword.

#![deny(missing_docs)]

mod memory;
mod rs;

pub use memory::{RsFastLocate, RsMemoryCode, RsMemoryDecoded};
pub use rs::{RsCode, RsDecoded, RsError};
