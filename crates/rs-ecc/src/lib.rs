//! Reed-Solomon baseline codes (the paper's comparator in Tables IV & V and
//! Figures 6 & 7).
//!
//! Two layers are provided:
//!
//! * [`RsCode`] — a classic systematic Reed-Solomon code over GF(2^s) with
//!   `2t` parity symbols and a PGZ decoder correcting up to `t ∈ {1, 2}`
//!   symbol errors (single-symbol correction is what commercial ChipKill
//!   uses; `t = 2` covers IBM-style double-device tolerance).
//! * [`RsMemoryCode`] — the memory-channel view: an `n_bits`-wide codeword
//!   (e.g. 144 or 80 bits) carved into `s`-bit symbols, with a possibly
//!   partial top symbol when `s ∤ n_bits` (exactly the misalignment the
//!   paper exploits to show 5/6/7-bit-symbol RS codes lose ChipKill).
//!
//! For Monte-Carlo hot loops, [`RsMemoryCode::error_syndromes`] and
//! [`RsCode::locate_errors_fixed`] run the whole decode decision for both
//! `t` values in the error-value domain (GF syndromes of the corruption alone, one
//! table multiply per touched symbol) without materializing a codeword;
//! [`RsCode::decode_combined`] adds Forney-style combined
//! error-and-erasure decoding (`ν` erasures + `e` errors, `2e + ν ≤ 2t`)
//! for degraded (known-failed-chip) operation, and [`RsClassifier`]
//! packages it all as the workspace's unified `muse_core::Classifier`
//! backend.

#![deny(missing_docs)]

mod classifier;
mod memory;
mod rs;

pub use classifier::{RsClassifier, RsContext};
pub use memory::{RsFastLocate, RsMemoryCode, RsMemoryDecoded};
pub use rs::{CombinedContext, RsCode, RsCorrections, RsDecoded, RsError, RsLocated};
